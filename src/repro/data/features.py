"""Per-car feature engineering (Table I plus the Fig. 7 context/shift features).

The entry point is :func:`build_race_features`, which converts one
:class:`repro.simulation.RaceTelemetry` into a list of
:class:`CarFeatureSeries` — one aligned set of target and covariate arrays
per car.  All transformations are pure NumPy on lap-indexed arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..simulation.telemetry import CarLaps, RaceTelemetry
from .schema import ALL_COVARIATES

__all__ = [
    "CarFeatureSeries",
    "accumulate_age",
    "caution_laps_since_pit",
    "leader_pit_count",
    "total_pit_count",
    "shift_forward",
    "build_car_features",
    "build_race_features",
]


@dataclass
class CarFeatureSeries:
    """Aligned per-lap arrays for one car in one race."""

    race_id: str
    event: str
    year: int
    car_id: int
    laps: np.ndarray
    rank: np.ndarray
    lap_time: np.ndarray
    time_behind_leader: np.ndarray
    covariates: np.ndarray  # (num_laps, len(ALL_COVARIATES))

    def __len__(self) -> int:
        return int(self.laps.size)

    def covariate(self, name: str) -> np.ndarray:
        return self.covariates[:, ALL_COVARIATES.index(name)]

    @property
    def is_pit(self) -> np.ndarray:
        return self.covariate("lap_status") > 0.5

    @property
    def is_caution(self) -> np.ndarray:
        return self.covariate("track_status") > 0.5


# ----------------------------------------------------------------------
# elementary transforms
# ----------------------------------------------------------------------
def accumulate_age(pit_flags: np.ndarray) -> np.ndarray:
    """Laps since the previous pit stop (``PitAge`` in Table I).

    The counter is 0 on the pit lap itself and increases by one on every
    following lap; before the first stop it counts laps since the start.
    """
    pit_flags = np.asarray(pit_flags, dtype=bool)
    age = np.zeros(pit_flags.size, dtype=np.float64)
    counter = 0.0
    for i, is_pit in enumerate(pit_flags):
        if is_pit:
            counter = 0.0
        age[i] = counter
        counter += 1.0
    return age


def caution_laps_since_pit(pit_flags: np.ndarray, caution_flags: np.ndarray) -> np.ndarray:
    """Count of caution laps since the car's last pit stop (``CautionLaps``)."""
    pit_flags = np.asarray(pit_flags, dtype=bool)
    caution_flags = np.asarray(caution_flags, dtype=bool)
    if pit_flags.shape != caution_flags.shape:
        raise ValueError("pit and caution flags must have the same shape")
    out = np.zeros(pit_flags.size, dtype=np.float64)
    counter = 0.0
    for i in range(pit_flags.size):
        if pit_flags[i]:
            counter = 0.0
        out[i] = counter
        if caution_flags[i]:
            counter += 1.0
    return out


def total_pit_count(race: RaceTelemetry) -> Dict[int, float]:
    """Number of cars pitting on each lap (``TotalPitCount``)."""
    counts: Dict[int, float] = {}
    for lap in np.unique(race.lap):
        mask = race.lap == lap
        counts[int(lap)] = float(np.count_nonzero(race.is_pit[mask]))
    return counts


def leader_pit_count(race: RaceTelemetry, lookback: int = 2, top_k: int = 10) -> Dict[int, float]:
    """Number of *leading* cars pitting on each lap (``LeaderPitCount``).

    "Leading" is judged by the rank position ``lookback`` laps earlier
    (Fig. 7 step 3 uses lap A-2), restricted to the top ``top_k`` cars.
    """
    counts: Dict[int, float] = {}
    for lap in np.unique(race.lap):
        lap = int(lap)
        ref_lap = lap - lookback
        mask = race.lap == lap
        pitting = set(race.car_id[mask][race.is_pit[mask]].tolist())
        if not pitting or ref_lap < 1:
            counts[lap] = 0.0
            continue
        ranks_ref = race.ranks_at_lap(ref_lap)
        leaders = {car for car, rank in ranks_ref.items() if rank <= top_k}
        counts[lap] = float(len(pitting & leaders))
    return counts


def shift_forward(values: np.ndarray, lag: int, fill: float = 0.0) -> np.ndarray:
    """Shift a series so position ``i`` holds the value at ``i + lag``.

    Used for the "shift features" of Fig. 7 step 4 (e.g. the race status two
    laps into the future); the tail is padded with ``fill``.
    """
    values = np.asarray(values, dtype=np.float64)
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if lag == 0:
        return values.copy()
    out = np.full(values.shape, fill, dtype=np.float64)
    if lag < values.size:
        out[:-lag] = values[lag:]
    return out


# ----------------------------------------------------------------------
# per-car / per-race builders
# ----------------------------------------------------------------------
def build_car_features(
    race: RaceTelemetry,
    car_laps: CarLaps,
    total_pits: Optional[Dict[int, float]] = None,
    leader_pits: Optional[Dict[int, float]] = None,
    shift_lag: int = 2,
) -> CarFeatureSeries:
    """Build the full covariate matrix for one car."""
    total_pits = total_pits if total_pits is not None else total_pit_count(race)
    leader_pits = leader_pits if leader_pits is not None else leader_pit_count(race)

    pit = car_laps.is_pit.astype(np.float64)
    caution = car_laps.is_caution.astype(np.float64)
    pit_age = accumulate_age(car_laps.is_pit)
    caution_laps = caution_laps_since_pit(car_laps.is_pit, car_laps.is_caution)
    tp = np.array([total_pits.get(int(lap), 0.0) for lap in car_laps.laps])
    lp = np.array([leader_pits.get(int(lap), 0.0) for lap in car_laps.laps])

    columns = {
        "track_status": caution,
        "lap_status": pit,
        "caution_laps": caution_laps,
        "pit_age": pit_age,
        "leader_pit_count": lp,
        "total_pit_count": tp,
        "shift_track_status": shift_forward(caution, shift_lag),
        "shift_lap_status": shift_forward(pit, shift_lag),
        "shift_total_pit_count": shift_forward(tp, shift_lag),
    }
    covariates = np.column_stack([columns[name] for name in ALL_COVARIATES])
    return CarFeatureSeries(
        race_id=race.race_id,
        event=race.event,
        year=race.year,
        car_id=car_laps.car_id,
        laps=car_laps.laps.astype(np.int64),
        rank=car_laps.rank.astype(np.float64),
        lap_time=car_laps.lap_time.astype(np.float64),
        time_behind_leader=car_laps.time_behind_leader.astype(np.float64),
        covariates=covariates,
    )


def build_race_features(
    race: RaceTelemetry, shift_lag: int = 2, min_laps: int = 10
) -> List[CarFeatureSeries]:
    """Feature series for every car in a race with at least ``min_laps`` laps."""
    total_pits = total_pit_count(race)
    leader_pits = leader_pit_count(race)
    series = []
    for car in race.car_ids():
        cl = race.car_laps(car)
        if len(cl) < min_laps:
            continue
        series.append(
            build_car_features(
                race, cl, total_pits=total_pits, leader_pits=leader_pits, shift_lag=shift_lag
            )
        )
    return series
