"""Per-car feature engineering (Table I plus the Fig. 7 context/shift features).

The entry point is :func:`build_race_features`, which converts one
:class:`repro.simulation.RaceTelemetry` into a list of
:class:`CarFeatureSeries` — one aligned set of target and covariate arrays
per car.  All transformations are pure NumPy on lap-indexed arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..simulation.telemetry import CarLaps, RaceTelemetry
from .schema import ALL_COVARIATES

__all__ = [
    "CarFeatureSeries",
    "DEFAULT_MIN_LAPS",
    "DEFAULT_SHIFT_LAG",
    "LiveFeatureBuilder",
    "accumulate_age",
    "caution_laps_since_pit",
    "leader_pit_count",
    "total_pit_count",
    "shift_forward",
    "build_car_features",
    "build_race_features",
]

#: cars with fewer laps than this are dropped from a race's feature set
DEFAULT_MIN_LAPS = 10

#: how far the Fig. 7 "shift features" look ahead — also the number of laps
#: a live session must hold back before an origin's covariates are final
DEFAULT_SHIFT_LAG = 2


@dataclass
class CarFeatureSeries:
    """Aligned per-lap arrays for one car in one race."""

    race_id: str
    event: str
    year: int
    car_id: int
    laps: np.ndarray
    rank: np.ndarray
    lap_time: np.ndarray
    time_behind_leader: np.ndarray
    covariates: np.ndarray  # (num_laps, len(ALL_COVARIATES))

    def __len__(self) -> int:
        return int(self.laps.size)

    def covariate(self, name: str) -> np.ndarray:
        return self.covariates[:, ALL_COVARIATES.index(name)]

    @property
    def is_pit(self) -> np.ndarray:
        return self.covariate("lap_status") > 0.5

    @property
    def is_caution(self) -> np.ndarray:
        return self.covariate("track_status") > 0.5


# ----------------------------------------------------------------------
# elementary transforms
# ----------------------------------------------------------------------
def accumulate_age(pit_flags: np.ndarray) -> np.ndarray:
    """Laps since the previous pit stop (``PitAge`` in Table I).

    The counter is 0 on the pit lap itself and increases by one on every
    following lap; before the first stop it counts laps since the start.
    """
    pit_flags = np.asarray(pit_flags, dtype=bool)
    age = np.zeros(pit_flags.size, dtype=np.float64)
    counter = 0.0
    for i, is_pit in enumerate(pit_flags):
        if is_pit:
            counter = 0.0
        age[i] = counter
        counter += 1.0
    return age


def caution_laps_since_pit(pit_flags: np.ndarray, caution_flags: np.ndarray) -> np.ndarray:
    """Count of caution laps since the car's last pit stop (``CautionLaps``)."""
    pit_flags = np.asarray(pit_flags, dtype=bool)
    caution_flags = np.asarray(caution_flags, dtype=bool)
    if pit_flags.shape != caution_flags.shape:
        raise ValueError("pit and caution flags must have the same shape")
    out = np.zeros(pit_flags.size, dtype=np.float64)
    counter = 0.0
    for i in range(pit_flags.size):
        if pit_flags[i]:
            counter = 0.0
        out[i] = counter
        if caution_flags[i]:
            counter += 1.0
    return out


def total_pit_count(race: RaceTelemetry) -> Dict[int, float]:
    """Number of cars pitting on each lap (``TotalPitCount``)."""
    counts: Dict[int, float] = {}
    for lap in np.unique(race.lap):
        mask = race.lap == lap
        counts[int(lap)] = float(np.count_nonzero(race.is_pit[mask]))
    return counts


def leader_pit_count(race: RaceTelemetry, lookback: int = 2, top_k: int = 10) -> Dict[int, float]:
    """Number of *leading* cars pitting on each lap (``LeaderPitCount``).

    "Leading" is judged by the rank position ``lookback`` laps earlier
    (Fig. 7 step 3 uses lap A-2), restricted to the top ``top_k`` cars.
    """
    counts: Dict[int, float] = {}
    for lap in np.unique(race.lap):
        lap = int(lap)
        ref_lap = lap - lookback
        mask = race.lap == lap
        pitting = set(race.car_id[mask][race.is_pit[mask]].tolist())
        if not pitting or ref_lap < 1:
            counts[lap] = 0.0
            continue
        ranks_ref = race.ranks_at_lap(ref_lap)
        leaders = {car for car, rank in ranks_ref.items() if rank <= top_k}
        counts[lap] = float(len(pitting & leaders))
    return counts


def shift_forward(values: np.ndarray, lag: int, fill: float = 0.0) -> np.ndarray:
    """Shift a series so position ``i`` holds the value at ``i + lag``.

    Used for the "shift features" of Fig. 7 step 4 (e.g. the race status two
    laps into the future); the tail is padded with ``fill``.
    """
    values = np.asarray(values, dtype=np.float64)
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if lag == 0:
        return values.copy()
    out = np.full(values.shape, fill, dtype=np.float64)
    if lag < values.size:
        out[:-lag] = values[lag:]
    return out


# ----------------------------------------------------------------------
# per-car / per-race builders
# ----------------------------------------------------------------------
def build_car_features(
    race: RaceTelemetry,
    car_laps: CarLaps,
    total_pits: Optional[Dict[int, float]] = None,
    leader_pits: Optional[Dict[int, float]] = None,
    shift_lag: int = DEFAULT_SHIFT_LAG,
) -> CarFeatureSeries:
    """Build the full covariate matrix for one car."""
    total_pits = total_pits if total_pits is not None else total_pit_count(race)
    leader_pits = leader_pits if leader_pits is not None else leader_pit_count(race)

    pit = car_laps.is_pit.astype(np.float64)
    caution = car_laps.is_caution.astype(np.float64)
    pit_age = accumulate_age(car_laps.is_pit)
    caution_laps = caution_laps_since_pit(car_laps.is_pit, car_laps.is_caution)
    tp = np.array([total_pits.get(int(lap), 0.0) for lap in car_laps.laps])
    lp = np.array([leader_pits.get(int(lap), 0.0) for lap in car_laps.laps])

    columns = {
        "track_status": caution,
        "lap_status": pit,
        "caution_laps": caution_laps,
        "pit_age": pit_age,
        "leader_pit_count": lp,
        "total_pit_count": tp,
        "shift_track_status": shift_forward(caution, shift_lag),
        "shift_lap_status": shift_forward(pit, shift_lag),
        "shift_total_pit_count": shift_forward(tp, shift_lag),
    }
    covariates = np.column_stack([columns[name] for name in ALL_COVARIATES])
    return CarFeatureSeries(
        race_id=race.race_id,
        event=race.event,
        year=race.year,
        car_id=car_laps.car_id,
        laps=car_laps.laps.astype(np.int64),
        rank=car_laps.rank.astype(np.float64),
        lap_time=car_laps.lap_time.astype(np.float64),
        time_behind_leader=car_laps.time_behind_leader.astype(np.float64),
        covariates=covariates,
    )


def build_race_features(
    race: RaceTelemetry, shift_lag: int = DEFAULT_SHIFT_LAG, min_laps: int = DEFAULT_MIN_LAPS
) -> List[CarFeatureSeries]:
    """Feature series for every car in a race with at least ``min_laps`` laps."""
    total_pits = total_pit_count(race)
    leader_pits = leader_pit_count(race)
    series = []
    for car in race.car_ids():
        cl = race.car_laps(car)
        if len(cl) < min_laps:
            continue
        series.append(
            build_car_features(
                race, cl, total_pits=total_pits, leader_pits=leader_pits, shift_lag=shift_lag
            )
        )
    return series


# ----------------------------------------------------------------------
# streaming (lap-by-lap) feature building
# ----------------------------------------------------------------------
def _record_field(record, *names, default=None):
    """Read one field from a lap record given as a mapping or an object."""
    for name in names:
        if isinstance(record, dict):
            if name in record:
                return record[name]
        elif hasattr(record, name):
            return getattr(record, name)
    if default is not None:
        return default
    raise ValueError(f"lap record is missing {names[0]!r} (tried {names})")


def _record_flag(record, canonical: str, status_field: str, status_true: str) -> bool:
    """Boolean pit/caution flag, accepting bools or the textual log status."""
    value = _record_field(record, f"is_{canonical}", canonical, status_field, default="")
    if isinstance(value, str):
        return value == status_true
    return bool(value)


class _LiveCarState:
    """Growing per-car column lists plus the running feature counters."""

    __slots__ = (
        "laps", "rank", "lap_time", "time_behind_leader",
        "pit", "caution", "pit_age", "caution_laps", "total_pits", "leader_pits",
        "shift_caution", "shift_pit", "shift_total_pits",
        "_age_counter", "_caution_counter",
    )

    def __init__(self) -> None:
        for name in self.__slots__[:-2]:
            setattr(self, name, [])
        self._age_counter = 0.0
        self._caution_counter = 0.0

    def append(self, lap, record, tp, lp, shift_lag, shift_fill) -> None:
        pit = _record_flag(record, "pit", "lap_status", "P")
        caution = _record_flag(record, "caution", "track_status", "Y")
        self.laps.append(int(lap))
        self.rank.append(float(_record_field(record, "rank")))
        self.lap_time.append(float(_record_field(record, "lap_time")))
        self.time_behind_leader.append(float(_record_field(record, "time_behind_leader")))
        self.pit.append(1.0 if pit else 0.0)
        self.caution.append(1.0 if caution else 0.0)
        # the same counter arithmetic as accumulate_age / caution_laps_since_pit
        if pit:
            self._age_counter = 0.0
            self._caution_counter = 0.0
        self.pit_age.append(self._age_counter)
        self._age_counter += 1.0
        self.caution_laps.append(self._caution_counter)
        if caution:
            self._caution_counter += 1.0
        self.total_pits.append(tp)
        self.leader_pits.append(lp)
        # shift features hold the value ``shift_lag`` positions ahead: pad the
        # new tail position with the fill, back-fill the one it finalises
        k = len(self.laps) - 1
        for shifted, source in (
            (self.shift_caution, self.caution),
            (self.shift_pit, self.pit),
            (self.shift_total_pits, self.total_pits),
        ):
            shifted.append(shift_fill)
            if shift_lag and k >= shift_lag:
                shifted[k - shift_lag] = source[k]
            elif not shift_lag:
                shifted[k] = source[k]


class LiveFeatureBuilder:
    """Incremental :func:`build_race_features` over a streamed timing feed.

    Laps are observed in increasing order (:meth:`observe_lap`), one batch
    of per-car records per lap; :meth:`series` materialises the same
    :class:`CarFeatureSeries` list :func:`build_race_features` would build
    from the telemetry observed so far — byte-identical, including the
    cross-car features (``TotalPitCount``, ``LeaderPitCount``) and the
    forward-shift features of Fig. 7.  Because a shift feature at position
    ``k`` holds the value at ``k + shift_lag``, every entry at positions
    ``<= latest - shift_lag`` is *final*: it will never change as more laps
    arrive, which is what lets a live session forecast origin ``O`` as soon
    as lap ``O + 1 + shift_lag`` has been observed and still match a
    whole-race replay bit for bit.

    Records are duck-typed: :class:`~repro.simulation.telemetry.LapRecord`
    objects, plain dicts from the wire protocol (``car_id``, ``rank``,
    ``lap_time``, ``time_behind_leader``, ``pit``/``is_pit``,
    ``caution``/``is_caution``), or the textual log statuses
    (``lap_status``/``track_status``) are all accepted.
    """

    def __init__(
        self,
        race_id: str = "live",
        event: str = "live",
        year: int = 0,
        shift_lag: int = DEFAULT_SHIFT_LAG,
        min_laps: int = DEFAULT_MIN_LAPS,
        leader_lookback: int = 2,
        leader_top_k: int = 10,
        shift_fill: float = 0.0,
    ) -> None:
        self.race_id = str(race_id)
        self.event = str(event)
        self.year = int(year)
        self.shift_lag = int(shift_lag)
        self.min_laps = int(min_laps)
        self.leader_lookback = int(leader_lookback)
        self.leader_top_k = int(leader_top_k)
        self.shift_fill = float(shift_fill)
        self.latest_lap = 0
        self._cars: Dict[int, _LiveCarState] = {}
        self._ranks_at: Dict[int, Dict[int, int]] = {}
        self._series_cache: Optional[List[CarFeatureSeries]] = None

    def observe_lap(self, lap: int, records) -> None:
        """Ingest every car's record for one lap (laps strictly increasing).

        A car's records must be contiguous: once a car misses a lap it is
        considered retired and may not reappear.  This is what keeps a
        car's array position equal to its lap position — the alignment the
        whole feature pipeline (and the origin indexing of the
        forecasters) relies on; a feed with a mid-race gap would otherwise
        silently forecast from misaligned, non-final covariates.
        """
        lap = int(lap)
        if lap <= self.latest_lap:
            raise ValueError(
                f"laps must arrive in increasing order: got lap {lap} after "
                f"lap {self.latest_lap}"
            )
        records = list(records)
        ranks: Dict[int, int] = {}
        pitting = set()
        for record in records:
            car = int(_record_field(record, "car_id"))
            state = self._cars.get(car)
            if state is not None and state.laps[-1] != lap - 1:
                raise ValueError(
                    f"gap in car {car}'s lap records: last saw lap "
                    f"{state.laps[-1]}, got lap {lap}; a car that misses a "
                    "lap is retired and cannot rejoin the feed"
                )
            ranks[car] = int(_record_field(record, "rank"))
            if _record_flag(record, "pit", "lap_status", "P"):
                pitting.add(car)
        # cross-car per-lap features, same arithmetic as total_pit_count /
        # leader_pit_count over a complete race
        tp = float(len(pitting))
        ref_lap = lap - self.leader_lookback
        if not pitting or ref_lap < 1:
            lp = 0.0
        else:
            reference = self._ranks_at.get(ref_lap, {})
            leaders = {car for car, rank in reference.items() if rank <= self.leader_top_k}
            lp = float(len(pitting & leaders))
        for record in records:
            car = int(_record_field(record, "car_id"))
            state = self._cars.get(car)
            if state is None:
                state = self._cars[car] = _LiveCarState()
            state.append(lap, record, tp, lp, self.shift_lag, self.shift_fill)
        self._ranks_at[lap] = ranks
        self.latest_lap = lap
        self._series_cache = None

    @property
    def num_cars(self) -> int:
        return len(self._cars)

    def series(self) -> List[CarFeatureSeries]:
        """The feature series of every car observed for >= ``min_laps`` laps.

        Materialised arrays are cached until the next observed lap, so
        repeated reads between laps (a multi-origin drain, an external
        monitor) cost nothing.
        """
        if self._series_cache is not None:
            return self._series_cache
        out = []
        for car in sorted(self._cars):
            state = self._cars[car]
            if len(state.laps) < self.min_laps:
                continue
            columns = {
                "track_status": state.caution,
                "lap_status": state.pit,
                "caution_laps": state.caution_laps,
                "pit_age": state.pit_age,
                "leader_pit_count": state.leader_pits,
                "total_pit_count": state.total_pits,
                "shift_track_status": state.shift_caution,
                "shift_lap_status": state.shift_pit,
                "shift_total_pit_count": state.shift_total_pits,
            }
            covariates = np.column_stack(
                [np.asarray(columns[name], dtype=np.float64) for name in ALL_COVARIATES]
            )
            out.append(
                CarFeatureSeries(
                    race_id=self.race_id,
                    event=self.event,
                    year=self.year,
                    car_id=car,
                    laps=np.asarray(state.laps, dtype=np.int64),
                    rank=np.asarray(state.rank, dtype=np.float64),
                    lap_time=np.asarray(state.lap_time, dtype=np.float64),
                    time_behind_leader=np.asarray(state.time_behind_leader, dtype=np.float64),
                    covariates=covariates,
                )
            )
        self._series_cache = out
        return out
