"""Feature engineering and dataset construction for the forecasting models."""

from .features import (
    CarFeatureSeries,
    accumulate_age,
    build_car_features,
    build_race_features,
    caution_laps_since_pit,
    leader_pit_count,
    shift_forward,
    total_pit_count,
)
from .loader import BatchLoader
from .scaling import MeanScaler, StandardScaler
from .schema import (
    ALL_COVARIATES,
    BASE_COVARIATES,
    CONTEXT_COVARIATES,
    SHIFT_COVARIATES,
    FeatureSpec,
    TARGET_RANK,
)
from .stints import Stint, extract_stints, next_pit_targets, pit_statistics, stint_rank_changes
from .windows import WindowDataset, extract_window, make_windows

__all__ = [
    "CarFeatureSeries",
    "accumulate_age",
    "build_car_features",
    "build_race_features",
    "caution_laps_since_pit",
    "leader_pit_count",
    "shift_forward",
    "total_pit_count",
    "BatchLoader",
    "MeanScaler",
    "StandardScaler",
    "ALL_COVARIATES",
    "BASE_COVARIATES",
    "CONTEXT_COVARIATES",
    "SHIFT_COVARIATES",
    "FeatureSpec",
    "TARGET_RANK",
    "Stint",
    "extract_stints",
    "next_pit_targets",
    "pit_statistics",
    "stint_rank_changes",
    "WindowDataset",
    "extract_window",
    "make_windows",
]
