"""Stint extraction and pit-stop statistics.

A *stint* is the run of laps between two consecutive pit stops.  Stints
drive two parts of the reproduction:

* the pit-stop analysis of Fig. 4 (stint-distance distributions / CDF,
  where pits happen, how much rank is lost at normal vs. caution pits);
* TaskB — forecasting the change of rank position between two consecutive
  pit stops (Table VI) — whose ground-truth targets come from
  :func:`stint_rank_changes`;
* the PitModel training set (``laps until the next pit stop`` given the
  race-status features at the current lap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .features import CarFeatureSeries

__all__ = [
    "Stint",
    "extract_stints",
    "stint_rank_changes",
    "pit_statistics",
    "next_pit_targets",
]


@dataclass(frozen=True)
class Stint:
    """Laps between two consecutive pit stops of one car."""

    race_id: str
    car_id: int
    start_index: int          # index (into the car's lap arrays) right after the previous pit
    end_index: int            # index of the pit lap that ends the stint
    length: int               # number of laps in the stint
    ends_under_caution: bool  # the closing pit stop happened on a caution lap
    rank_at_start: int
    rank_at_end: int
    rank_after_pit: Optional[int]  # rank a couple of laps after the stop (None near race end)

    @property
    def rank_change(self) -> int:
        """Rank change across the stint (negative = positions gained)."""
        return int(self.rank_at_end - self.rank_at_start)


def extract_stints(series: CarFeatureSeries, settle_laps: int = 3) -> List[Stint]:
    """Split one car's race into stints ending at each pit stop."""
    pit_idx = np.where(series.is_pit)[0]
    stints: List[Stint] = []
    prev_end = -1
    for idx in pit_idx:
        start = prev_end + 1
        if idx <= start:
            prev_end = idx
            continue
        after = idx + settle_laps
        rank_after = int(series.rank[after]) if after < len(series) else None
        stints.append(
            Stint(
                race_id=series.race_id,
                car_id=series.car_id,
                start_index=start,
                end_index=int(idx),
                length=int(idx - start),
                ends_under_caution=bool(series.is_caution[idx]),
                rank_at_start=int(series.rank[start]),
                rank_at_end=int(series.rank[idx]),
                rank_after_pit=rank_after,
            )
        )
        prev_end = int(idx)
    return stints


def stint_rank_changes(
    all_series: Sequence[CarFeatureSeries], settle_laps: int = 3
) -> List[Stint]:
    """All stints of a collection of cars (TaskB population)."""
    stints: List[Stint] = []
    for series in all_series:
        stints.extend(extract_stints(series, settle_laps=settle_laps))
    return stints


def pit_statistics(all_series: Sequence[CarFeatureSeries]) -> dict:
    """Aggregate pit-stop statistics reproducing the panels of Fig. 4.

    Returns a dict with, separately for normal pits and caution pits:
    stint-length samples, the laps on which the pits occurred and the rank
    change caused by the stop (rank a few laps after the stop minus rank
    just before it).
    """
    normal_stints: List[int] = []
    caution_stints: List[int] = []
    normal_pit_laps: List[int] = []
    caution_pit_laps: List[int] = []
    normal_rank_changes: List[int] = []
    caution_rank_changes: List[int] = []
    for series in all_series:
        for stint in extract_stints(series):
            pit_lap = int(series.laps[stint.end_index])
            # rank cost of the stop: position a few laps after the stop vs the
            # position on the lap just before entering the pit lane
            before_idx = max(stint.end_index - 1, 0)
            before = int(series.rank[before_idx])
            after = stint.rank_after_pit
            change = None if after is None else int(after - before)
            if stint.ends_under_caution:
                caution_stints.append(stint.length)
                caution_pit_laps.append(pit_lap)
                if change is not None:
                    caution_rank_changes.append(change)
            else:
                normal_stints.append(stint.length)
                normal_pit_laps.append(pit_lap)
                if change is not None:
                    normal_rank_changes.append(change)
    return {
        "normal": {
            "stint_lengths": np.array(normal_stints, dtype=np.int64),
            "pit_laps": np.array(normal_pit_laps, dtype=np.int64),
            "rank_changes": np.array(normal_rank_changes, dtype=np.int64),
        },
        "caution": {
            "stint_lengths": np.array(caution_stints, dtype=np.int64),
            "pit_laps": np.array(caution_pit_laps, dtype=np.int64),
            "rank_changes": np.array(caution_rank_changes, dtype=np.int64),
        },
    }


def next_pit_targets(
    series: CarFeatureSeries, max_horizon: int = 60
) -> List[dict]:
    """PitModel training instances for one car.

    For every lap that is not itself a pit lap, the target is the number of
    laps until the car's next pit stop (clipped to ``max_horizon``); laps
    after the final stop (no next pit observed) are skipped.  Features are
    the pit-stop-related covariates of Table I.
    """
    pit_positions = np.where(series.is_pit)[0]
    instances: List[dict] = []
    if pit_positions.size == 0:
        return instances
    for i in range(len(series)):
        future_pits = pit_positions[pit_positions > i]
        if future_pits.size == 0:
            break
        laps_to_pit = int(future_pits[0] - i)
        if laps_to_pit > max_horizon:
            laps_to_pit = max_horizon
        instances.append(
            {
                "race_id": series.race_id,
                "car_id": series.car_id,
                "lap_index": i,
                "features": np.array(
                    [
                        series.covariate("caution_laps")[i],
                        series.covariate("pit_age")[i],
                        series.covariate("track_status")[i],
                        series.rank[i],
                        series.covariate("total_pit_count")[i],
                    ],
                    dtype=np.float64,
                ),
                "target": float(laps_to_pit),
            }
        )
    return instances
