"""Feature scaling utilities."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "MeanScaler"]


class StandardScaler:
    """Per-feature standardisation ``(x - mean) / std`` over the last axis."""

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = float(eps)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1]) if x.ndim > 1 else x.reshape(-1, 1)
        self.mean_ = flat.mean(axis=0)
        self.std_ = flat.std(axis=0)
        self.std_ = np.where(self.std_ < self.eps, 1.0, self.std_)
        return self

    def _check(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fit before use")

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return (x - self.mean_[0]) / self.std_[0]
        return (x - self.mean_) / self.std_

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return x * self.std_[0] + self.mean_[0]
        return x * self.std_ + self.mean_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class MeanScaler:
    """DeepAR-style per-instance mean scaling of the target series.

    Each window is divided by the mean absolute value of its encoder part
    (plus one), which keeps series of different magnitude comparable without
    leaking future information.
    """

    def __init__(self, offset: float = 1.0) -> None:
        self.offset = float(offset)

    def scale_factors(self, encoder_target: np.ndarray) -> np.ndarray:
        """``(N,)`` scale factor per window from its encoder span ``(N, L0)``."""
        encoder_target = np.asarray(encoder_target, dtype=np.float64)
        return np.abs(encoder_target).mean(axis=-1) + self.offset

    def scale(self, target: np.ndarray, factors: np.ndarray) -> np.ndarray:
        return target / factors[..., None]

    def unscale(self, target: np.ndarray, factors: np.ndarray) -> np.ndarray:
        return target * factors[..., None]
