"""Mini-batch iteration over :class:`repro.data.windows.WindowDataset`."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from .schema import FeatureSpec
from .windows import WindowDataset

__all__ = ["BatchLoader"]


class BatchLoader:
    """Yields dict batches ready for the deep models / :class:`repro.nn.Trainer`.

    Each batch contains

    * ``target`` — ``(B, L0 + k)`` rank values,
    * ``covariates`` — ``(B, L0 + k, F)`` covariates selected by ``spec``,
    * ``car_index`` — ``(B,)`` embedding indices,
    * ``weight`` — ``(B,)`` per-instance loss weights.
    """

    def __init__(
        self,
        dataset: WindowDataset,
        batch_size: int = 64,
        shuffle: bool = True,
        spec: Optional[FeatureSpec] = None,
        rng: np.random.Generator | int | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.spec = spec or FeatureSpec()
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.drop_last = bool(drop_last)
        self._covariates = dataset.select_covariates(self.spec)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and idx.size < self.batch_size:
                break
            yield {
                "target": self.dataset.target[idx],
                "covariates": self._covariates[idx],
                "car_index": self.dataset.car_index[idx],
                "weight": self.dataset.weight[idx],
            }

    def batches(self) -> Iterator[Dict[str, np.ndarray]]:
        """Alias so the loader can be passed as ``Trainer.fit(loader.batches)``."""
        return iter(self)
