"""Mini-batch iteration over :class:`repro.data.windows.WindowDataset`."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from .schema import FeatureSpec
from .windows import WindowDataset

__all__ = ["BatchLoader"]


class BatchLoader:
    """Yields dict batches ready for the deep models / :class:`repro.nn.Trainer`.

    Each batch contains

    * ``target`` — ``(B, L0 + k)`` rank values,
    * ``covariates`` — ``(B, L0 + k, F)`` covariates selected by ``spec``,
    * ``car_index`` — ``(B,)`` embedding indices,
    * ``weight`` — ``(B,)`` per-instance loss weights.

    Two throughput options support the fused training engine:

    * ``bucket_by_length`` groups windows by their observed (un-padded)
      history length, so every batch is homogeneous: short, left-padded
      windows never share a batch with full windows.  Shuffling then
      happens within each bucket and over the bucket order, so epochs stay
      randomised.
    * ``preallocate`` reuses persistent batch buffers across iterations
      (``np.take(..., out=...)``) instead of allocating fresh gather copies
      per batch.  The yielded arrays are views into those buffers — valid
      until the next batch is drawn, which is exactly the lifetime the
      training loop needs.
    """

    def __init__(
        self,
        dataset: WindowDataset,
        batch_size: int = 64,
        shuffle: bool = True,
        spec: Optional[FeatureSpec] = None,
        rng: np.random.Generator | int | None = None,
        drop_last: bool = False,
        bucket_by_length: bool = False,
        preallocate: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.spec = spec or FeatureSpec()
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.drop_last = bool(drop_last)
        self.bucket_by_length = bool(bucket_by_length)
        self.preallocate = bool(preallocate)
        self._covariates = dataset.select_covariates(self.spec)
        self._history_lengths = self._observed_lengths() if self.bucket_by_length else None
        self._buffers: Optional[Dict[str, np.ndarray]] = None

    def _observed_lengths(self) -> np.ndarray:
        """Per-window observed length (total length minus the left padding).

        Windows cut near the start of a race are left-padded with zero
        targets and zero covariates (:func:`repro.data.windows.
        extract_window`); the first lap with any non-zero target or
        covariate marks the start of real history.
        """
        target = self.dataset.target
        observed = (target != 0.0) | self.dataset.covariates.any(axis=2)
        total = target.shape[1]
        first = np.where(observed.any(axis=1), observed.argmax(axis=1), total)
        return (total - first).astype(np.int64)

    def __len__(self) -> int:
        n = len(self.dataset)
        if not self.bucket_by_length:
            if self.drop_last:
                return n // self.batch_size
            return (n + self.batch_size - 1) // self.batch_size
        return sum(
            count // self.batch_size
            if self.drop_last
            else (count + self.batch_size - 1) // self.batch_size
            for count in np.bincount(self._history_lengths)
            if count
        )

    def _batch_index_order(self) -> Iterator[np.ndarray]:
        """Yield per-batch index arrays honouring bucketing and shuffling."""
        n = len(self.dataset)
        if not self.bucket_by_length:
            order = np.arange(n)
            if self.shuffle:
                self.rng.shuffle(order)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                if self.drop_last and idx.size < self.batch_size:
                    return
                yield idx
            return
        lengths = self._history_lengths
        buckets = [np.flatnonzero(lengths == value) for value in np.unique(lengths)]
        batches = []
        for bucket in buckets:
            if self.shuffle:
                self.rng.shuffle(bucket)
            for start in range(0, bucket.size, self.batch_size):
                idx = bucket[start : start + self.batch_size]
                if self.drop_last and idx.size < self.batch_size:
                    continue
                batches.append(idx)
        if self.shuffle and batches:
            batch_order = self.rng.permutation(len(batches))
            batches = [batches[i] for i in batch_order]
        yield from batches

    def _gather(self, idx: np.ndarray) -> Dict[str, np.ndarray]:
        if not self.preallocate:
            return {
                "target": self.dataset.target[idx],
                "covariates": self._covariates[idx],
                "car_index": self.dataset.car_index[idx],
                "weight": self.dataset.weight[idx],
            }
        if self._buffers is None:
            b = self.batch_size
            self._buffers = {
                "target": np.empty((b,) + self.dataset.target.shape[1:], dtype=np.float64),
                "covariates": np.empty((b,) + self._covariates.shape[1:], dtype=np.float64),
                "car_index": np.empty((b,), dtype=self.dataset.car_index.dtype),
                "weight": np.empty((b,), dtype=np.float64),
            }
        rows = idx.size
        batch: Dict[str, np.ndarray] = {}
        sources = {
            "target": self.dataset.target,
            "covariates": self._covariates,
            "car_index": self.dataset.car_index,
            "weight": self.dataset.weight,
        }
        for name, source in sources.items():
            out = self._buffers[name][:rows]
            np.take(source, idx, axis=0, out=out)
            batch[name] = out
        return batch

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        for idx in self._batch_index_order():
            yield self._gather(idx)

    def batches(self) -> Iterator[Dict[str, np.ndarray]]:
        """Alias so the loader can be passed as ``Trainer.fit(loader.batches)``."""
        return iter(self)
