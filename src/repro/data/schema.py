"""Feature schema (Table I of the paper).

The RankNet model consumes two groups of per-lap variables:

* **race status** ``X_i`` — covariates describing the state of the race:
  ``TrackStatus`` (caution lap or not), ``LapStatus`` (pit lap or not),
  ``CautionLaps`` (caution laps since the car's last pit stop) and
  ``PitAge`` (laps since the last pit stop); the model-optimisation steps of
  Fig. 7 add race-level context features (``LeaderPitCount``,
  ``TotalPitCount``) and shifted ("future") copies of the status features;
* **rank** ``Z_i`` — the target series: ``Rank``, plus auxiliary series
  ``LapTime`` and ``TimeBehindLeader``.

This module centralises the feature names and their column order so the
feature builder, the window datasets and the deep models stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "TARGET_RANK",
    "TARGET_LAPTIME",
    "BASE_COVARIATES",
    "CONTEXT_COVARIATES",
    "SHIFT_COVARIATES",
    "ALL_COVARIATES",
    "FeatureSpec",
    "covariate_indices",
]

# target series (Z in Table I)
TARGET_RANK = "rank"
TARGET_LAPTIME = "lap_time"
TARGET_TIME_BEHIND_LEADER = "time_behind_leader"

# race-status covariates (X in Table I)
BASE_COVARIATES: List[str] = [
    "track_status",   # 1 when the lap runs under caution
    "lap_status",     # 1 when the car crosses the line in the pit lane
    "caution_laps",   # caution laps since the last pit stop
    "pit_age",        # laps since the last pit stop
]

# race-level context features added in Fig. 7 step 3
CONTEXT_COVARIATES: List[str] = [
    "leader_pit_count",  # leading cars (by rank two laps earlier) pitting this lap
    "total_pit_count",   # cars pitting this lap
]

# shifted ("future") status features added in Fig. 7 step 4
SHIFT_COVARIATES: List[str] = [
    "shift_track_status",
    "shift_lap_status",
    "shift_total_pit_count",
]

ALL_COVARIATES: List[str] = BASE_COVARIATES + CONTEXT_COVARIATES + SHIFT_COVARIATES


@dataclass(frozen=True)
class FeatureSpec:
    """Selects which covariate groups a model consumes.

    ``use_context``/``use_shift`` mirror the optimisation steps of Fig. 7;
    ``use_race_status=False`` reproduces the plain DeepAR baseline (no
    TrackStatus / LapStatus covariates).
    """

    use_race_status: bool = True
    use_context: bool = True
    use_shift: bool = True
    shift_lag: int = 2

    def covariate_names(self) -> List[str]:
        names: List[str] = []
        if self.use_race_status:
            names.extend(BASE_COVARIATES)
        if self.use_context:
            names.extend(CONTEXT_COVARIATES)
        if self.use_shift:
            names.extend(SHIFT_COVARIATES)
        return names

    @property
    def num_covariates(self) -> int:
        return len(self.covariate_names())


def covariate_indices(names: List[str]) -> Tuple[int, ...]:
    """Column indices of ``names`` inside the full covariate matrix."""
    return tuple(ALL_COVARIATES.index(n) for n in names)
