"""Sliding-window datasets for the sequence-to-sequence forecasters.

Training follows the DeepAR recipe (Algorithm 1): each training instance is
a window ``[z_{1:L0+k}, x_{1:L0+k}]`` cut from one car's race, where ``L0``
is the encoder (context) length and ``k`` the prediction length.  The loss
is evaluated on the decoder part only; instances whose rank changes inside
the decoder window can be up-weighted (Fig. 7 step 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .features import CarFeatureSeries
from .schema import ALL_COVARIATES, FeatureSpec

__all__ = ["WindowDataset", "extract_window", "make_windows", "rank_change_weight"]


def rank_change_weight(anchor: float, target_future: np.ndarray, weight: float) -> float:
    """Instance weight: ``weight`` when the rank changes inside the decoder span.

    ``anchor`` is the last observed (encoder) rank; an instance counts as a
    "rank change" instance when any decoder-step rank differs from it.
    """
    target_future = np.asarray(target_future, dtype=np.float64)
    changed = bool(np.any(np.abs(target_future - float(anchor)) > 0.5))
    return float(weight) if changed else 1.0


@dataclass
class WindowDataset:
    """Columnar collection of forecast windows.

    Attributes
    ----------
    target:
        ``(N, L0 + k)`` rank values.
    covariates:
        ``(N, L0 + k, F)`` full covariate matrix (all of
        :data:`repro.data.schema.ALL_COVARIATES`); models select the columns
        they need via a :class:`FeatureSpec`.
    car_index:
        ``(N,)`` integer index of the car (for embeddings), see
        ``car_vocabulary``.
    weight:
        ``(N,)`` per-instance loss weights.
    meta:
        per-window provenance ``(race_id, car_id, origin_lap_index)``.
    """

    encoder_length: int
    decoder_length: int
    target: np.ndarray
    covariates: np.ndarray
    car_index: np.ndarray
    weight: np.ndarray
    meta: List[Tuple[str, int, int]]
    car_vocabulary: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.target.shape[0])

    @property
    def total_length(self) -> int:
        return self.encoder_length + self.decoder_length

    @property
    def num_covariates(self) -> int:
        return int(self.covariates.shape[-1])

    def select_covariates(self, spec: FeatureSpec) -> np.ndarray:
        """Covariate sub-matrix for a model's :class:`FeatureSpec`."""
        names = spec.covariate_names()
        if not names:
            return np.zeros(self.covariates.shape[:2] + (0,), dtype=np.float64)
        idx = [ALL_COVARIATES.index(n) for n in names]
        return self.covariates[:, :, idx]

    def subset(self, indices: Sequence[int]) -> "WindowDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return WindowDataset(
            encoder_length=self.encoder_length,
            decoder_length=self.decoder_length,
            target=self.target[indices],
            covariates=self.covariates[indices],
            car_index=self.car_index[indices],
            weight=self.weight[indices],
            meta=[self.meta[i] for i in indices],
            car_vocabulary=self.car_vocabulary,
        )


def extract_window(
    series: CarFeatureSeries,
    origin: int,
    encoder_length: int,
    decoder_length: int,
    pad_value: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cut one window ending its encoder at index ``origin`` (inclusive).

    The window covers indices ``origin - encoder_length + 1 .. origin +
    decoder_length``.  If the car's history is shorter than the encoder
    length the window is left-padded with ``pad_value`` (targets) and zeros
    (covariates).  Raises ``IndexError`` when the decoder part would run past
    the end of the series.
    """
    total = encoder_length + decoder_length
    end = origin + decoder_length
    if end >= len(series):
        raise IndexError(
            f"window decoder end {end} out of range for series of length {len(series)}"
        )
    start = origin - encoder_length + 1
    target = np.full(total, pad_value, dtype=np.float64)
    covariates = np.zeros((total, len(ALL_COVARIATES)), dtype=np.float64)
    src_start = max(start, 0)
    dst_start = src_start - start
    target[dst_start:] = series.rank[src_start : end + 1]
    covariates[dst_start:] = series.covariates[src_start : end + 1]
    return target, covariates


def make_windows(
    all_series: Iterable[CarFeatureSeries],
    encoder_length: int = 60,
    decoder_length: int = 2,
    stride: int = 1,
    min_history: Optional[int] = None,
    rank_change_loss_weight: float = 1.0,
    car_vocabulary: Optional[Dict[Tuple[str, int], int]] = None,
) -> WindowDataset:
    """Build a :class:`WindowDataset` from many car series.

    Parameters
    ----------
    min_history:
        Minimum number of observed laps before the first forecast origin
        (defaults to the encoder length, i.e. full windows only; smaller
        values produce left-padded windows).
    rank_change_loss_weight:
        Weight given to instances whose rank changes inside the decoder span
        (Fig. 7 step 1; the paper's optimum is 9).
    car_vocabulary:
        Optional pre-existing mapping ``(event, car_id) -> index`` so train
        and test datasets share embedding indices.
    """
    if min_history is None:
        min_history = encoder_length
    min_history = max(int(min_history), 1)
    vocab: Dict[Tuple[str, int], int] = car_vocabulary if car_vocabulary is not None else {}

    targets: List[np.ndarray] = []
    covariates: List[np.ndarray] = []
    car_index: List[int] = []
    weights: List[float] = []
    meta: List[Tuple[str, int, int]] = []

    for series in all_series:
        key = (series.event, series.car_id)
        if key not in vocab:
            vocab[key] = len(vocab)
        first_origin = min_history - 1
        last_origin = len(series) - decoder_length - 1
        for origin in range(first_origin, last_origin + 1, stride):
            target, cov = extract_window(series, origin, encoder_length, decoder_length)
            targets.append(target)
            covariates.append(cov)
            car_index.append(vocab[key])
            future = target[encoder_length:]
            anchor = target[encoder_length - 1]
            weights.append(rank_change_weight(anchor, future, rank_change_loss_weight))
            meta.append((series.race_id, series.car_id, origin))

    if not targets:
        empty_t = np.zeros((0, encoder_length + decoder_length))
        empty_c = np.zeros((0, encoder_length + decoder_length, len(ALL_COVARIATES)))
        return WindowDataset(
            encoder_length=encoder_length,
            decoder_length=decoder_length,
            target=empty_t,
            covariates=empty_c,
            car_index=np.zeros(0, dtype=np.int64),
            weight=np.zeros(0),
            meta=[],
            car_vocabulary=vocab,
        )

    return WindowDataset(
        encoder_length=encoder_length,
        decoder_length=decoder_length,
        target=np.stack(targets),
        covariates=np.stack(covariates),
        car_index=np.array(car_index, dtype=np.int64),
        weight=np.array(weights, dtype=np.float64),
        meta=meta,
        car_vocabulary=vocab,
    )
