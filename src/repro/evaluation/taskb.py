"""TaskB — rank-position change between consecutive pit stops (Table VI).

For every stint of a test car (the laps between two consecutive pit stops),
the model forecasts from the lap of the first stop to the lap of the next
one; the quantity of interest is the *change of rank position* across the
stint.  Metrics: SignAcc (direction of the change), MAE of the change, and
the 50%/90% quantile risks of the change distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..data.features import CarFeatureSeries
from ..data.stints import Stint, extract_stints
from ..models.base import RankForecaster
from .metrics import mae, quantile_risk, sign_accuracy

__all__ = ["StintForecastRecord", "TaskBResult", "StintEvaluator"]


@dataclass
class StintForecastRecord:
    """One evaluated stint forecast."""

    race_id: str
    car_id: int
    origin: int
    horizon: int
    true_change: float
    point_change: float
    q50_change: float
    q90_change: float


@dataclass
class TaskBResult:
    metrics: Dict[str, float] = field(default_factory=dict)
    num_stints: int = 0

    def as_row(self) -> Dict[str, float]:
        return dict(self.metrics)


class StintEvaluator:
    """Runs TaskB for one model over a collection of test series."""

    def __init__(
        self,
        n_samples: int = 100,
        min_stint_length: int = 3,
        max_stint_length: int = 45,
        min_history: int = 10,
    ) -> None:
        self.n_samples = int(n_samples)
        self.min_stint_length = int(min_stint_length)
        self.max_stint_length = int(max_stint_length)
        self.min_history = int(min_history)

    # ------------------------------------------------------------------
    def stint_tasks(self, series: CarFeatureSeries) -> List[Stint]:
        """Stints usable as forecast tasks (enough history, bounded horizon)."""
        tasks = []
        for stint in extract_stints(series):
            if stint.start_index - 1 < self.min_history:
                continue
            if not self.min_stint_length <= stint.length <= self.max_stint_length:
                continue
            tasks.append(stint)
        return tasks

    def collect(
        self, model: RankForecaster, test_series: Sequence[CarFeatureSeries]
    ) -> List[StintForecastRecord]:
        tasks = []
        for series in test_series:
            for stint in self.stint_tasks(series):
                origin = stint.start_index - 1  # the pit lap that started the stint
                tasks.append((series, origin, stint.end_index - origin))
        forecasts = model.forecast_fleet(tasks, n_samples=self.n_samples)
        records: List[StintForecastRecord] = []
        for (series, origin, horizon), forecast in zip(tasks, forecasts):
            end_index = origin + horizon
            current = float(series.rank[origin])
            true_change = float(series.rank[end_index] - current)
            change_samples = forecast.samples[:, -1] - current
            records.append(
                StintForecastRecord(
                    race_id=series.race_id,
                    car_id=series.car_id,
                    origin=origin,
                    horizon=horizon,
                    true_change=true_change,
                    point_change=float(np.median(change_samples)),
                    q50_change=float(np.quantile(change_samples, 0.5)),
                    q90_change=float(np.quantile(change_samples, 0.9)),
                )
            )
        return records

    def aggregate(self, records: List[StintForecastRecord]) -> TaskBResult:
        if not records:
            return TaskBResult(metrics={
                "sign_acc": float("nan"), "mae": float("nan"),
                "risk50": float("nan"), "risk90": float("nan"),
            }, num_stints=0)
        true = np.array([r.true_change for r in records])
        point = np.array([r.point_change for r in records])
        q50 = np.array([r.q50_change for r in records])
        q90 = np.array([r.q90_change for r in records])
        return TaskBResult(
            metrics={
                "sign_acc": sign_accuracy(point, true),
                "mae": mae(point, true),
                "risk50": quantile_risk(q50, true, 0.5),
                "risk90": quantile_risk(q90, true, 0.9),
            },
            num_stints=len(records),
        )

    def evaluate(
        self, model: RankForecaster, test_series: Sequence[CarFeatureSeries]
    ) -> TaskBResult:
        return self.aggregate(self.collect(model, test_series))
