"""Plain-text table formatting for the experiment harness and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_metric"]


def format_metric(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    try:
        if value != value:  # NaN
            return "nan"
        if float(value).is_integer() and abs(value) >= 1000:
            return str(int(value))
        return f"{float(value):.{digits}f}"
    except (TypeError, ValueError):
        return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append(
            [
                format_metric(row.get(c), digits)
                if isinstance(row.get(c), (int, float)) and not isinstance(row.get(c), bool)
                else str(row.get(c, "-"))
                for c in columns
            ]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(r.ljust(w) for r, w in zip(rendered[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
