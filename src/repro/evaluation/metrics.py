"""Forecast accuracy metrics (§IV-D of the paper).

* ``mae`` — mean absolute error of the point forecast;
* ``top1_accuracy`` — fraction of laps where the predicted leader (the car
  forecast to have rank 1) is the true leader (TaskA);
* ``sign_accuracy`` — fraction of stints where the *sign* of the predicted
  rank change matches the sign of the true change (TaskB);
* ``quantile_risk`` — the ρ-risk of Seeger et al.: for a quantile forecast
  Ẑρ of the true value Z, the loss is ``2 (Ẑρ − Z) (1[Z < Ẑρ] − ρ)``,
  normalised by ``Σ Z`` over the evaluation set.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["mae", "top1_accuracy", "sign_accuracy", "quantile_risk"]


def mae(predictions: np.ndarray, targets: np.ndarray) -> float:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if predictions.size == 0:
        return float("nan")
    return float(np.mean(np.abs(predictions - targets)))


def top1_accuracy(predicted_leaders: Sequence[int], true_leaders: Sequence[int]) -> float:
    predicted_leaders = np.asarray(predicted_leaders)
    true_leaders = np.asarray(true_leaders)
    if predicted_leaders.shape != true_leaders.shape:
        raise ValueError("leader arrays must have the same shape")
    if predicted_leaders.size == 0:
        return float("nan")
    return float(np.mean(predicted_leaders == true_leaders))


def sign_accuracy(predicted_changes: np.ndarray, true_changes: np.ndarray) -> float:
    """Accuracy of the *direction* of the rank change (gain / loss / no change)."""
    predicted_changes = np.asarray(predicted_changes, dtype=np.float64)
    true_changes = np.asarray(true_changes, dtype=np.float64)
    if predicted_changes.shape != true_changes.shape:
        raise ValueError("change arrays must have the same shape")
    if predicted_changes.size == 0:
        return float("nan")
    # a prediction within +-0.5 of zero counts as "no change"
    pred_sign = np.sign(np.where(np.abs(predicted_changes) < 0.5, 0.0, predicted_changes))
    true_sign = np.sign(true_changes)
    return float(np.mean(pred_sign == true_sign))


def quantile_risk(quantile_forecasts: np.ndarray, targets: np.ndarray, rho: float) -> float:
    """ρ-risk normalised by the sum of the targets.

    ``quantile_forecasts`` holds the ρ-quantile of each predictive
    distribution (e.g. the empirical quantile of the Monte-Carlo samples).
    """
    if not 0.0 < rho < 1.0:
        raise ValueError("rho must be in (0, 1)")
    q = np.asarray(quantile_forecasts, dtype=np.float64)
    z = np.asarray(targets, dtype=np.float64)
    if q.shape != z.shape:
        raise ValueError("quantile forecasts and targets must have the same shape")
    if q.size == 0:
        return float("nan")
    indicator = (z < q).astype(np.float64)
    loss = 2.0 * (q - z) * (indicator - rho)
    denom = float(np.abs(z).sum())
    if denom <= 0:
        denom = 1.0
    return float(loss.sum() / denom)
