"""Evaluation harness: metrics, lap sets, TaskA (short term) and TaskB (stints)."""

from .lapsets import LapSet, classify_window, windows_by_lapset
from .metrics import mae, quantile_risk, sign_accuracy, top1_accuracy
from .report import format_metric, format_table
from .taska import ForecastRecord, ShortTermEvaluator, TaskAResult
from .taskb import StintEvaluator, StintForecastRecord, TaskBResult

__all__ = [
    "LapSet",
    "classify_window",
    "windows_by_lapset",
    "mae",
    "quantile_risk",
    "sign_accuracy",
    "top1_accuracy",
    "format_metric",
    "format_table",
    "ForecastRecord",
    "ShortTermEvaluator",
    "TaskAResult",
    "StintEvaluator",
    "StintForecastRecord",
    "TaskBResult",
]
