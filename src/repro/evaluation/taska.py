"""TaskA — short-term rank position forecasting (Table V, Fig. 9).

For every forecast origin in the test races, every car's rank is forecast
``horizon`` laps ahead; the evaluator aggregates

* MAE and the 50%/90% quantile risks over all (car, origin, step) triples,
* Top1Acc: for each (origin, step) the car with the lowest forecast rank is
  the predicted leader, compared with the true leader of that lap,

separately for the All / Normal / PitStop-covered lap sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..data.features import CarFeatureSeries
from ..models.base import DEFAULT_FIELD_SIZE, RankForecaster, clip_rank
from .lapsets import LapSet, classify_window
from .metrics import mae, quantile_risk, top1_accuracy

__all__ = ["ForecastRecord", "TaskAResult", "ShortTermEvaluator"]


@dataclass
class ForecastRecord:
    """One evaluated (car, origin) forecast."""

    race_id: str
    car_id: int
    origin: int
    lapset: LapSet
    point: np.ndarray      # (horizon,)
    q50: np.ndarray        # (horizon,)
    q90: np.ndarray        # (horizon,)
    target: np.ndarray     # (horizon,)


@dataclass
class TaskAResult:
    """Aggregated TaskA metrics per lap set."""

    horizon: int
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    num_windows: Dict[str, int] = field(default_factory=dict)

    def metric(self, lapset: str, name: str) -> float:
        return self.metrics[lapset][name]

    def as_row(self, lapset: str = "all") -> Dict[str, float]:
        return dict(self.metrics[lapset])


class ShortTermEvaluator:
    """Runs TaskA for one model over a collection of test series."""

    def __init__(
        self,
        horizon: int = 2,
        n_samples: int = 100,
        origin_stride: int = 1,
        min_history: int = 10,
        margin: int = 1,
        field_size: int = DEFAULT_FIELD_SIZE,
    ) -> None:
        self.horizon = int(horizon)
        self.n_samples = int(n_samples)
        self.origin_stride = int(origin_stride)
        self.min_history = int(min_history)
        self.margin = int(margin)
        # shared with the strategy optimizer: one field-size constant
        # bounds every rank the evaluation aggregates
        self.field_size = int(field_size)

    # ------------------------------------------------------------------
    def _origins(self, series: CarFeatureSeries) -> List[int]:
        last = len(series) - self.horizon - 1
        return list(range(self.min_history, last + 1, self.origin_stride))

    def collect(
        self, model: RankForecaster, test_series: Sequence[CarFeatureSeries]
    ) -> List[ForecastRecord]:
        """Produce one :class:`ForecastRecord` per (car, origin).

        All (car, origin) pairs are submitted as one fleet so batched
        forecasters advance the whole field together; plain models fall
        back to the per-forecast loop inside ``forecast_fleet``.
        """
        tasks = [
            (series, origin, self.horizon)
            for series in test_series
            for origin in self._origins(series)
        ]
        forecasts = model.forecast_fleet(tasks, n_samples=self.n_samples)
        # forecasters clip their samples already; re-clipping to the shared
        # field size is a no-op for them and a guard for ad-hoc models
        field = self.field_size
        records: List[ForecastRecord] = []
        for (series, origin, _), forecast in zip(tasks, forecasts):
            target = series.rank[origin + 1 : origin + 1 + self.horizon]
            records.append(
                ForecastRecord(
                    race_id=series.race_id,
                    car_id=series.car_id,
                    origin=origin,
                    lapset=classify_window(series, origin, self.horizon, self.margin),
                    point=clip_rank(forecast.point(), field),
                    q50=clip_rank(forecast.quantile(0.5), field),
                    q90=clip_rank(forecast.quantile(0.9), field),
                    target=np.asarray(target, dtype=np.float64),
                )
            )
        return records

    # ------------------------------------------------------------------
    @staticmethod
    def _leader_pairs(records: List[ForecastRecord]) -> tuple:
        """Predicted vs true leader for every (race, origin, step)."""
        predicted: List[int] = []
        true: List[int] = []
        by_key: Dict[tuple, List[ForecastRecord]] = {}
        for rec in records:
            by_key.setdefault((rec.race_id, rec.origin), []).append(rec)
        for (_, _), recs in sorted(by_key.items()):
            horizon = recs[0].point.shape[0]
            for step in range(horizon):
                cars = [r.car_id for r in recs]
                pred_ranks = np.array([r.point[step] for r in recs])
                true_ranks = np.array([r.target[step] for r in recs])
                predicted.append(cars[int(np.argmin(pred_ranks))])
                true.append(cars[int(np.argmin(true_ranks))])
        return np.array(predicted), np.array(true)

    def aggregate(self, records: List[ForecastRecord]) -> TaskAResult:
        result = TaskAResult(horizon=self.horizon)
        subsets = {
            LapSet.ALL.value: records,
            LapSet.NORMAL.value: [r for r in records if r.lapset is LapSet.NORMAL],
            LapSet.PIT_COVERED.value: [r for r in records if r.lapset is LapSet.PIT_COVERED],
        }
        for name, recs in subsets.items():
            result.num_windows[name] = len(recs)
            if not recs:
                result.metrics[name] = {
                    "top1_acc": float("nan"),
                    "mae": float("nan"),
                    "risk50": float("nan"),
                    "risk90": float("nan"),
                }
                continue
            points = np.concatenate([r.point for r in recs])
            targets = np.concatenate([r.target for r in recs])
            q50 = np.concatenate([r.q50 for r in recs])
            q90 = np.concatenate([r.q90 for r in recs])
            pred_leader, true_leader = self._leader_pairs(recs)
            result.metrics[name] = {
                "top1_acc": top1_accuracy(pred_leader, true_leader),
                "mae": mae(points, targets),
                "risk50": quantile_risk(q50, targets, 0.5),
                "risk90": quantile_risk(q90, targets, 0.9),
            }
        return result

    def evaluate(
        self, model: RankForecaster, test_series: Sequence[CarFeatureSeries]
    ) -> TaskAResult:
        return self.aggregate(self.collect(model, test_series))
