"""Lap-set classification for Table V (All / Normal / PitStop-covered laps).

Table V breaks the short-term results down by where the forecast window
falls: *PitStop Covered Laps* are windows "where pit stop occurs at least
once in one lap distance" (a stop by the forecast car inside or immediately
around the window); *Normal Laps* are windows with neither pits nor caution
laps nearby; *All Laps* is the union.
"""

from __future__ import annotations

from enum import Enum
from typing import List


from ..data.features import CarFeatureSeries

__all__ = ["LapSet", "classify_window", "windows_by_lapset"]


class LapSet(str, Enum):
    ALL = "all"
    NORMAL = "normal"
    PIT_COVERED = "pit_covered"


def classify_window(
    series: CarFeatureSeries, origin: int, horizon: int, margin: int = 1
) -> LapSet:
    """Classify the forecast window starting after ``origin``.

    The window is *pit-covered* when the car pits anywhere in
    ``[origin - margin, origin + horizon]``; otherwise, it is *normal* when
    it also contains no caution laps; windows under caution but without a
    pit fall back to ``ALL`` only (they are excluded from the normal set but
    are not pit-covered).
    """
    lo = max(origin - margin, 0)
    hi = min(origin + horizon, len(series) - 1)
    window_pit = bool(series.is_pit[lo : hi + 1].any())
    if window_pit:
        return LapSet.PIT_COVERED
    window_caution = bool(series.is_caution[lo : hi + 1].any())
    if not window_caution:
        return LapSet.NORMAL
    return LapSet.ALL


def windows_by_lapset(
    series: CarFeatureSeries, origins: List[int], horizon: int, margin: int = 1
) -> dict:
    """Map each lap-set name to the origins that fall into it."""
    result = {LapSet.ALL: list(origins), LapSet.NORMAL: [], LapSet.PIT_COVERED: []}
    for origin in origins:
        kind = classify_window(series, origin, horizon, margin=margin)
        if kind is LapSet.NORMAL:
            result[LapSet.NORMAL].append(origin)
        elif kind is LapSet.PIT_COVERED:
            result[LapSet.PIT_COVERED].append(origin)
    return result
