"""Point-wise ML baselines (RandomForest / SVM / XGBoost).

Following the approach of Tulabandhula & Rudin (refs. [30], [31] in the
paper), the classical ML baselines do not model the whole sequence; they
regress the *change of rank position* over a forecast horizon from features
of the observed history:

    rank(t + h) - rank(t)  ~  g(features(t), h)

One regressor is shared across horizons (the horizon is a feature), which
lets the same fitted model serve both the 2-lap task (Table V) and the
variable-length stint task (Table VI).  The forecast is deterministic; the
"samples" of the returned :class:`ProbabilisticForecast` are identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...data.features import CarFeatureSeries
from ...nn.checkpoint import restore_rng, rng_state
from ..base import ProbabilisticForecast, RankForecaster, clip_rank
from .forest import RandomForestRegressor
from .gbm import GradientBoostingRegressor
from .svr import SVR

__all__ = [
    "build_pointwise_features",
    "PointwiseMLForecaster",
    "RandomForestForecaster",
    "SVRForecaster",
    "XGBoostForecaster",
]

#: horizons sampled when building the training set (covers the 2-lap task
#: and typical stint lengths)
DEFAULT_TRAIN_HORIZONS = (1, 2, 3, 5, 8, 13, 21, 34)


def build_pointwise_features(series: CarFeatureSeries, origin: int, horizon: int) -> np.ndarray:
    """Feature vector describing the history of ``series`` up to ``origin``."""
    rank = series.rank
    r0 = rank[origin]
    lag1 = rank[origin - 1] if origin >= 1 else r0
    lag2 = rank[origin - 2] if origin >= 2 else lag1
    lag5 = rank[origin - 5] if origin >= 5 else rank[0]
    return np.array(
        [
            r0,
            r0 - lag1,
            r0 - lag2,
            r0 - lag5,
            series.covariate("pit_age")[origin],
            series.covariate("caution_laps")[origin],
            series.covariate("track_status")[origin],
            series.covariate("lap_status")[origin],
            series.covariate("total_pit_count")[origin],
            series.time_behind_leader[origin],
            float(horizon),
        ],
        dtype=np.float64,
    )


class PointwiseMLForecaster(RankForecaster):
    """Wraps a point regressor of rank change into the forecaster interface."""

    supports_uncertainty = False
    uses_race_status = False

    def __init__(
        self,
        regressor,
        name: str = "ML",
        train_horizons: Sequence[int] = DEFAULT_TRAIN_HORIZONS,
        origin_stride: int = 2,
        min_history: int = 10,
        max_instances: int = 20000,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.regressor = regressor
        self.name = name
        self.train_horizons = tuple(int(h) for h in train_horizons)
        self.origin_stride = int(origin_stride)
        self.min_history = int(min_history)
        self.max_instances = int(max_instances)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.fitted_ = False

    # ------------------------------------------------------------------
    def _build_training_set(
        self, series_list: Sequence[CarFeatureSeries]
    ) -> tuple[np.ndarray, np.ndarray]:
        feats: List[np.ndarray] = []
        targets: List[float] = []
        for series in series_list:
            n = len(series)
            for origin in range(self.min_history, n - 1, self.origin_stride):
                for h in self.train_horizons:
                    if origin + h >= n:
                        continue
                    feats.append(build_pointwise_features(series, origin, h))
                    targets.append(float(series.rank[origin + h] - series.rank[origin]))
        if not feats:
            raise ValueError("no training instances could be built")
        X = np.stack(feats)
        y = np.array(targets)
        if X.shape[0] > self.max_instances:
            idx = self.rng.choice(X.shape[0], size=self.max_instances, replace=False)
            X, y = X[idx], y[idx]
        return X, y

    def fit(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
    ) -> "PointwiseMLForecaster":
        X, y = self._build_training_set(train_series)
        self.regressor.fit(X, y)
        self.fitted_ = True
        return self

    # ------------------------------------------------------------------
    # artifact protocol (shared by the three regressor wrappers)
    # ------------------------------------------------------------------
    def _base_artifact_config(self) -> dict:
        return {
            "train_horizons": list(self.train_horizons),
            "origin_stride": self.origin_stride,
            "min_history": self.min_history,
            "max_instances": self.max_instances,
        }

    def _artifact_state(self):
        if not self.fitted_:
            raise RuntimeError(f"{self.name} must be fit before creating an artifact")
        reg_meta, reg_arrays = self.regressor.artifact_state()
        state = {"regressor": reg_meta, "rng": rng_state(self.rng)}
        arrays = {f"regressor/{key}": value for key, value in reg_arrays.items()}
        return state, arrays

    def _load_artifact_state(self, state, arrays) -> None:
        prefix = "regressor/"
        reg_arrays = {
            key[len(prefix) :]: value for key, value in arrays.items() if key.startswith(prefix)
        }
        self.regressor.load_artifact_state(state["regressor"], reg_arrays)
        restore_rng(self.rng, state["rng"])
        self.fitted_ = True

    def forecast(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        n_samples: int = 100,
    ) -> ProbabilisticForecast:
        if not self.fitted_:
            raise RuntimeError(f"{self.name} must be fit before forecasting")
        if origin < 0 or origin >= len(series):
            raise IndexError(f"origin {origin} out of range")
        current = float(series.rank[origin])
        X = np.stack(
            [build_pointwise_features(series, origin, h) for h in range(1, horizon + 1)]
        )
        change = self.regressor.predict(X)
        point = clip_rank(current + change)
        samples = np.tile(point[None, :], (n_samples, 1))
        return ProbabilisticForecast(
            samples=samples, origin=origin, race_id=series.race_id, car_id=series.car_id
        )


class RandomForestForecaster(PointwiseMLForecaster):
    """RandomForest baseline of Table V / VI."""

    def __init__(self, n_estimators: int = 40, max_depth: int = 10, seed: int = 0, **kwargs) -> None:
        super().__init__(
            RandomForestRegressor(
                n_estimators=n_estimators, max_depth=max_depth, rng=seed
            ),
            name="RandomForest",
            rng=seed,
            **kwargs,
        )
        self.seed = int(seed)

    def _artifact_config(self) -> dict:
        return {
            "n_estimators": self.regressor.n_estimators,
            "max_depth": self.regressor.max_depth,
            "seed": self.seed,
            **self._base_artifact_config(),
        }


class SVRForecaster(PointwiseMLForecaster):
    """SVM (epsilon-SVR) baseline of Table V / VI."""

    def __init__(self, C: float = 2.0, epsilon: float = 0.3, seed: int = 0, **kwargs) -> None:
        super().__init__(
            SVR(C=C, epsilon=epsilon, rng=seed),
            name="SVM",
            rng=seed,
            **kwargs,
        )
        self.seed = int(seed)

    def _artifact_config(self) -> dict:
        return {
            "C": self.regressor.C,
            "epsilon": self.regressor.epsilon,
            "seed": self.seed,
            **self._base_artifact_config(),
        }


class XGBoostForecaster(PointwiseMLForecaster):
    """Gradient-boosted-trees baseline (the paper's XGBoost entry)."""

    def __init__(
        self, n_estimators: int = 120, learning_rate: float = 0.1, max_depth: int = 4,
        seed: int = 0, **kwargs,
    ) -> None:
        super().__init__(
            GradientBoostingRegressor(
                n_estimators=n_estimators, learning_rate=learning_rate,
                max_depth=max_depth, rng=seed,
            ),
            name="XGBoost",
            rng=seed,
            **kwargs,
        )
        self.seed = int(seed)

    def _artifact_config(self) -> dict:
        return {
            "n_estimators": self.regressor.n_estimators,
            "learning_rate": self.regressor.learning_rate,
            "max_depth": self.regressor.max_depth,
            "seed": self.seed,
            **self._base_artifact_config(),
        }
