"""CART regression tree (the building block of the forest and GBM baselines).

The splitter minimises the within-node variance (equivalently maximises the
variance reduction) using a vectorised scan over sorted feature values, so
growing a tree on a few thousand instances stays fast in pure NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Binary regression tree trained with the squared-error criterion."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
        max_features: Optional[float] = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.root_: Optional[_Node] = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self.n_features_ = X.shape[1]
        self.root_ = self._grow(X, y, depth=0)
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if isinstance(self.max_features, float) and 0 < self.max_features <= 1:
            return max(1, int(round(self.max_features * self.n_features_)))
        return max(1, min(int(self.max_features), self.n_features_))

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()), n_samples=y.size)
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node
        feature, threshold, gain = self._best_split(X, y)
        if feature < 0 or gain <= 1e-12:
            return node
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple:
        n = y.size
        total_sum = y.sum()
        total_sq = float(np.sum(y * y))
        base_impurity = total_sq - total_sum * total_sum / n
        best = (-1, 0.0, 0.0)
        features = np.arange(self.n_features_)
        k = self._n_candidate_features()
        if k < self.n_features_:
            features = self.rng.choice(features, size=k, replace=False)
        for f in features:
            order = np.argsort(X[:, f], kind="mergesort")
            xs = X[order, f]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            # candidate split after position i (left = [0..i])
            idx = np.arange(self.min_samples_leaf - 1, n - self.min_samples_leaf)
            if idx.size == 0:
                continue
            # skip positions where the next value is identical (no valid threshold)
            distinct = xs[idx] < xs[idx + 1]
            idx = idx[distinct]
            if idx.size == 0:
                continue
            n_left = idx + 1.0
            n_right = n - n_left
            left_imp = csq[idx] - csum[idx] ** 2 / n_left
            right_sum = total_sum - csum[idx]
            right_sq = total_sq - csq[idx]
            right_imp = right_sq - right_sum ** 2 / n_right
            gain = base_impurity - (left_imp + right_imp)
            j = int(np.argmax(gain))
            if gain[j] > best[2]:
                threshold = 0.5 * (xs[idx[j]] + xs[idx[j] + 1])
                best = (int(f), float(threshold), float(gain[j]))
        return best

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("tree must be fit before predicting")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"expected X with {self.n_features_} features")
        out = np.empty(X.shape[0], dtype=np.float64)
        # iterative per-sample descent (trees are shallow, loop cost is fine)
        for i in range(X.shape[0]):
            node = self.root_
            while not node.is_leaf:
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # ------------------------------------------------------------------
    # array (de)serialisation — used by the model-artifact layer
    # ------------------------------------------------------------------
    def to_node_array(self) -> np.ndarray:
        """Flatten the fitted tree to a ``(n_nodes, 6)`` float table.

        Rows are ``[feature, threshold, left, right, value, n_samples]`` in
        pre-order; ``left``/``right`` are row indices (-1 for leaves).  The
        table rebuilds the exact same tree via :meth:`load_node_array`, so
        predictions round-trip bit-identically.
        """
        if self.root_ is None:
            raise RuntimeError("tree must be fit before serialising")
        rows: list = []

        def visit(node: _Node) -> int:
            index = len(rows)
            rows.append(
                [float(node.feature), node.threshold, -1.0, -1.0, node.value, float(node.n_samples)]
            )
            if not node.is_leaf:
                rows[index][2] = float(visit(node.left))
                rows[index][3] = float(visit(node.right))
            return index

        visit(self.root_)
        return np.asarray(rows, dtype=np.float64)

    def load_node_array(self, nodes: np.ndarray, n_features: int) -> "DecisionTreeRegressor":
        """Restore the fitted tree from a :meth:`to_node_array` table."""
        nodes = np.asarray(nodes, dtype=np.float64)
        if nodes.ndim != 2 or nodes.shape[1] != 6 or nodes.shape[0] < 1:
            raise ValueError(f"expected an (n_nodes, 6) node table, got {nodes.shape}")

        def build(index: int) -> _Node:
            feature, threshold, left, right, value, n_samples = nodes[index]
            node = _Node(
                feature=int(feature),
                threshold=float(threshold),
                value=float(value),
                n_samples=int(n_samples),
            )
            if left >= 0:
                node.left = build(int(left))
                node.right = build(int(right))
            return node

        self.root_ = build(0)
        self.n_features_ = int(n_features)
        return self

    def depth(self) -> int:
        def _d(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        return _d(self.root_)

    def num_leaves(self) -> int:
        def _c(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return _c(node.left) + _c(node.right)

        return _c(self.root_)
