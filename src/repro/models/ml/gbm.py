"""Gradient-boosted regression trees (the "XGBoost" baseline of the paper).

Classical stage-wise boosting with squared-error loss: each stage fits a
shallow CART tree to the current residuals and is added with a shrinkage
factor.  Supports early stopping on a validation split.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Shrinkage-regularised boosted trees for regression."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        early_stopping_rounds: Optional[int] = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.early_stopping_rounds = early_stopping_rounds
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.init_: float = 0.0
        self.trees_: List[DecisionTreeRegressor] = []
        self.train_scores_: List[float] = []
        self.val_scores_: List[float] = []

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.init_ = float(y.mean())
        self.trees_ = []
        self.train_scores_ = []
        self.val_scores_ = []
        pred = np.full(n, self.init_)
        if eval_set is not None:
            X_val, y_val = eval_set
            val_pred = np.full(X_val.shape[0], self.init_)
        best_val = np.inf
        rounds_since_best = 0
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                idx = self.rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=self.rng,
            )
            tree.fit(X[idx], residual[idx])
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.trees_.append(tree)
            self.train_scores_.append(float(np.mean((y - pred) ** 2)))
            if eval_set is not None:
                val_pred = val_pred + self.learning_rate * tree.predict(X_val)
                val_mse = float(np.mean((y_val - val_pred) ** 2))
                self.val_scores_.append(val_mse)
                if self.early_stopping_rounds is not None:
                    if val_mse < best_val - 1e-12:
                        best_val = val_mse
                        rounds_since_best = 0
                    else:
                        rounds_since_best += 1
                        if rounds_since_best >= self.early_stopping_rounds:
                            break
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model must be fit before predicting")
        X = np.asarray(X, dtype=np.float64)
        pred = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            pred += self.learning_rate * tree.predict(X)
        return pred

    @property
    def n_trees_(self) -> int:
        return len(self.trees_)

    # ------------------------------------------------------------------
    # artifact (de)serialisation
    # ------------------------------------------------------------------
    def artifact_state(self) -> tuple:
        """Fitted state as ``(json_safe_meta, named_arrays)``."""
        if not self.trees_:
            raise RuntimeError("model must be fit before serialising")
        arrays = {f"tree/{i}": tree.to_node_array() for i, tree in enumerate(self.trees_)}
        meta = {
            "n_trees": len(self.trees_),
            "n_features": self.trees_[0].n_features_,
            "init": self.init_,
        }
        return meta, arrays

    def load_artifact_state(self, meta: dict, arrays: dict) -> "GradientBoostingRegressor":
        n_features = int(meta["n_features"])
        self.init_ = float(meta["init"])
        self.trees_ = []
        for i in range(int(meta["n_trees"])):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=self.rng,
            )
            tree.load_node_array(arrays[f"tree/{i}"], n_features)
            self.trees_.append(tree)
        return self
