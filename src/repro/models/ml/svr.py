"""Kernel support vector regression.

Kernel SVR trained in the primal of the kernel expansion (representer
theorem): ``f(x) = sum_i alpha_i K(x_i, x) + b`` with the smooth
(squared) epsilon-insensitive loss

    J(alpha, b) = 0.5 * alpha^T K alpha + C * sum_i max(|y_i - f(x_i)| - eps, 0)^2

optimised with L-BFGS.  The squared epsilon-insensitive loss is the same
variant exposed by scikit-learn's ``LinearSVR(loss="squared_epsilon_
insensitive")``; it keeps the flat insensitivity tube of classical SVR while
making the objective differentiable, which lets a quasi-Newton solver reach
a good optimum in a handful of milliseconds for the training-set sizes used
by the pointwise rank-change baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize

__all__ = ["SVR", "rbf_kernel"]


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float) -> np.ndarray:
    """Radial basis function kernel matrix ``K[i, j] = exp(-gamma ||x_i - y_j||^2)``."""
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    d2 = np.maximum(x_sq + y_sq - 2.0 * X @ Y.T, 0.0)
    return np.exp(-gamma * d2)


class SVR:
    """Epsilon-insensitive kernel SVR (RBF or linear kernel)."""

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: Optional[float] = None,
        kernel: str = "rbf",
        max_iter: int = 200,
        max_train_size: int = 1500,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if kernel not in {"rbf", "linear"}:
            raise ValueError(f"unsupported kernel {kernel!r}")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.kernel = kernel
        self.max_iter = int(max_iter)
        self.max_train_size = int(max_train_size)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.X_: Optional[np.ndarray] = None
        self.alpha_: Optional[np.ndarray] = None
        self.b_: float = 0.0
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return X @ Y.T
        gamma = self.gamma if self.gamma is not None else 1.0 / X.shape[1]
        return rbf_kernel(X, Y, gamma)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] == 0:
            raise ValueError("cannot fit SVR on an empty dataset")
        if X.shape[0] > self.max_train_size:
            idx = self.rng.choice(X.shape[0], size=self.max_train_size, replace=False)
            X, y = X[idx], y[idx]
        # standardise inputs and target for a well-conditioned optimisation
        self._x_mean = X.mean(axis=0)
        self._x_std = np.where(X.std(axis=0) < 1e-9, 1.0, X.std(axis=0))
        Xs = (X - self._x_mean) / self._x_std
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_std

        n = Xs.shape[0]
        K = self._kernel(Xs, Xs)
        eps = self.epsilon / self._y_std
        C = self.C

        def objective(theta: np.ndarray):
            alpha, b = theta[:n], theta[n]
            f = K @ alpha + b
            err = f - ys
            slack = np.maximum(np.abs(err) - eps, 0.0)
            reg = K @ alpha
            value = 0.5 * float(alpha @ reg) + C * float(np.sum(slack * slack))
            dl_df = 2.0 * C * np.sign(err) * slack
            grad_alpha = reg + K @ dl_df
            grad_b = float(dl_df.sum())
            return value, np.concatenate([grad_alpha, [grad_b]])

        result = minimize(
            objective,
            np.zeros(n + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.X_ = Xs
        self.alpha_ = result.x[:n]
        self.b_ = float(result.x[n])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.X_ is None or self.alpha_ is None:
            raise RuntimeError("SVR must be fit before predicting")
        X = np.asarray(X, dtype=np.float64)
        Xs = (X - self._x_mean) / self._x_std
        K = self._kernel(Xs, self.X_)
        f = K @ self.alpha_ + self.b_
        return f * self._y_std + self._y_mean

    @property
    def support_fraction(self) -> float:
        """Fraction of training points with non-negligible coefficients."""
        if self.alpha_ is None:
            return 0.0
        return float(np.mean(np.abs(self.alpha_) > 1e-6))

    # ------------------------------------------------------------------
    # artifact (de)serialisation
    # ------------------------------------------------------------------
    def artifact_state(self) -> tuple:
        """Fitted state as ``(json_safe_meta, named_arrays)``."""
        if self.X_ is None or self.alpha_ is None:
            raise RuntimeError("SVR must be fit before serialising")
        arrays = {
            "X": self.X_,
            "alpha": self.alpha_,
            "x_mean": self._x_mean,
            "x_std": self._x_std,
        }
        meta = {"b": self.b_, "y_mean": self._y_mean, "y_std": self._y_std}
        return meta, arrays

    def load_artifact_state(self, meta: dict, arrays: dict) -> "SVR":
        self.X_ = np.asarray(arrays["X"], dtype=np.float64)
        self.alpha_ = np.asarray(arrays["alpha"], dtype=np.float64)
        self._x_mean = np.asarray(arrays["x_mean"], dtype=np.float64)
        self._x_std = np.asarray(arrays["x_std"], dtype=np.float64)
        self.b_ = float(meta["b"])
        self._y_mean = float(meta["y_mean"])
        self._y_std = float(meta["y_std"])
        return self
