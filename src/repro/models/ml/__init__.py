"""From-scratch classical ML regressors and their forecaster wrappers."""

from .forest import RandomForestRegressor
from .gbm import GradientBoostingRegressor
from .pointwise import (
    PointwiseMLForecaster,
    RandomForestForecaster,
    SVRForecaster,
    XGBoostForecaster,
    build_pointwise_features,
)
from .svr import SVR, rbf_kernel
from .tree import DecisionTreeRegressor

__all__ = [
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "PointwiseMLForecaster",
    "RandomForestForecaster",
    "SVRForecaster",
    "XGBoostForecaster",
    "build_pointwise_features",
    "SVR",
    "rbf_kernel",
    "DecisionTreeRegressor",
]
