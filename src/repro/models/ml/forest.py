"""Random forest regressor (bagged CART trees with feature sub-sampling)."""

from __future__ import annotations

from typing import List

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 10,
        min_samples_leaf: int = 3,
        max_features: float = 0.7,
        bootstrap: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.trees_: List[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        self.trees_ = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = self.rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self.rng,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest must be fit before predicting")
        preds = np.stack([tree.predict(X) for tree in self.trees_], axis=0)
        return preds.mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Across-tree standard deviation (a rough epistemic spread)."""
        if not self.trees_:
            raise RuntimeError("forest must be fit before predicting")
        preds = np.stack([tree.predict(X) for tree in self.trees_], axis=0)
        return preds.std(axis=0)

    # ------------------------------------------------------------------
    # artifact (de)serialisation
    # ------------------------------------------------------------------
    def artifact_state(self) -> tuple:
        """Fitted state as ``(json_safe_meta, named_arrays)``."""
        if not self.trees_:
            raise RuntimeError("forest must be fit before serialising")
        arrays = {f"tree/{i}": tree.to_node_array() for i, tree in enumerate(self.trees_)}
        return {"n_trees": len(self.trees_), "n_features": self.trees_[0].n_features_}, arrays

    def load_artifact_state(self, meta: dict, arrays: dict) -> "RandomForestRegressor":
        n_features = int(meta["n_features"])
        self.trees_ = []
        for i in range(int(meta["n_trees"])):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self.rng,
            )
            tree.load_node_array(arrays[f"tree/{i}"], n_features)
            self.trees_.append(tree)
        return self
