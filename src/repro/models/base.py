"""Common forecaster interface and forecast containers.

Every model in this package — the naive CurRank baseline, the statistical
and machine-learning regressors, DeepAR and the RankNet variants — exposes
the same two operations so the evaluation harness (TaskA, TaskB) and the
benchmark suite can treat them uniformly:

* ``fit(train_series, val_series)`` — learn from a list of
  :class:`repro.data.CarFeatureSeries`;
* ``forecast(series, origin, horizon, n_samples)`` — produce a Monte-Carlo
  sample matrix of the car's rank for the ``horizon`` laps following lap
  index ``origin`` of ``series``.

Point forecasts are taken as the median of the samples (as in the paper,
which draws 100 samples and sorts them); deterministic models simply return
identical samples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.features import CarFeatureSeries

__all__ = ["DEFAULT_FIELD_SIZE", "ProbabilisticForecast", "RankForecaster", "clip_rank"]

#: Indy500 field size (the paper's races start 33 cars).  The single shared
#: fallback for every rank clip in the code base — the evaluators and the
#: strategy optimizer import this instead of hard-coding 33, and prefer the
#: field size observed in the data (``RankForecaster.field_size``, recorded
#: at fit time) when one is available.
DEFAULT_FIELD_SIZE = 33


def clip_rank(values: np.ndarray, num_cars: int = DEFAULT_FIELD_SIZE) -> np.ndarray:
    """Clip forecasts into the physically valid rank range ``[1, num_cars]``."""
    return np.clip(values, 1.0, float(num_cars))


@dataclass
class ProbabilisticForecast:
    """Monte-Carlo forecast of one car's rank over ``horizon`` future laps."""

    samples: np.ndarray  # (n_samples, horizon)
    origin: int
    race_id: str = ""
    car_id: int = -1

    def __post_init__(self) -> None:
        self.samples = np.atleast_2d(np.asarray(self.samples, dtype=np.float64))

    @property
    def horizon(self) -> int:
        return int(self.samples.shape[1])

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[0])

    def median(self) -> np.ndarray:
        return np.median(self.samples, axis=0)

    def mean(self) -> np.ndarray:
        return self.samples.mean(axis=0)

    def quantile(self, q: float) -> np.ndarray:
        return np.quantile(self.samples, q, axis=0)

    def point(self) -> np.ndarray:
        """Point forecast used for MAE / accuracy metrics (the median)."""
        return self.median()


class RankForecaster(abc.ABC):
    """Abstract base class of all rank-position forecasters."""

    #: human-readable name used in result tables
    name: str = "forecaster"
    #: whether the model outputs a genuine predictive distribution
    supports_uncertainty: bool = False
    #: whether the model uses (or predicts) the race-status covariates
    uses_race_status: bool = False
    #: field size observed in the training data (``None`` until a fit
    #: records one); consumers fall back to :data:`DEFAULT_FIELD_SIZE`
    field_size: Optional[int] = None

    def record_field_size(self, train_series: Sequence[CarFeatureSeries]) -> None:
        """Remember the largest rank seen at fit time as the field size."""
        worst = max(
            (float(np.max(s.rank)) for s in train_series if len(s)), default=0.0
        )
        self.field_size = int(np.ceil(worst)) if worst > 0 else None

    @abc.abstractmethod
    def fit(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
    ) -> "RankForecaster":
        """Train the model on a collection of per-car series."""

    @abc.abstractmethod
    def forecast(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        n_samples: int = 100,
    ) -> ProbabilisticForecast:
        """Forecast ``horizon`` laps after lap index ``origin`` of ``series``."""

    # ------------------------------------------------------------------
    def forecast_fleet(
        self,
        tasks: Sequence[Tuple[CarFeatureSeries, int, int]],
        n_samples: int = 100,
    ) -> List[ProbabilisticForecast]:
        """Forecast many ``(series, origin, horizon)`` tasks in one call.

        The evaluation loops route through this entry point.  The default
        implementation simply loops :meth:`forecast`; the deep forecasters
        override it to dispatch the whole fleet to the batched inference
        engine (:class:`repro.serving.FleetForecaster`), which is an order
        of magnitude faster for rolling-origin workloads.
        """
        return [
            self.forecast(series, int(origin), int(horizon), n_samples=n_samples)
            for series, origin, horizon in tasks
        ]

    def forecast_many(
        self,
        series: CarFeatureSeries,
        origins: Sequence[int],
        horizon: int,
        n_samples: int = 100,
    ) -> List[ProbabilisticForecast]:
        """Forecasts for several origins of the same series (convenience)."""
        return self.forecast_fleet(
            [(series, int(o), int(horizon)) for o in origins], n_samples=n_samples
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r})"
