"""Common forecaster interface and forecast containers.

Every model in this package — the naive CurRank baseline, the statistical
and machine-learning regressors, DeepAR and the RankNet variants — exposes
the same two operations so the evaluation harness (TaskA, TaskB) and the
benchmark suite can treat them uniformly:

* ``fit(train_series, val_series)`` — learn from a list of
  :class:`repro.data.CarFeatureSeries`;
* ``forecast(series, origin, horizon, n_samples)`` — produce a Monte-Carlo
  sample matrix of the car's rank for the ``horizon`` laps following lap
  index ``origin`` of ``series``.

Point forecasts are taken as the median of the samples (as in the paper,
which draws 100 samples and sorts them); deterministic models simply return
identical samples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.features import CarFeatureSeries
from ..nn.checkpoint import config_hash as _config_hash

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_FIELD_SIZE",
    "ModelArtifact",
    "ProbabilisticForecast",
    "RankForecaster",
    "clip_rank",
]

#: bump when the artifact layout of any forecaster family changes.
#: v2 added the low-precision payloads: ``state["precision"]`` plus, for
#: ``int8``, per-weight ``<name>::q`` / ``<name>::scale`` array pairs
#: (per-output-channel symmetric, see :mod:`repro.nn.precision`).  Plain
#: float64 artifacts still write schema version 1 — their layout is
#: unchanged, so older builds keep loading them; only artifacts actually
#: carrying a low-precision payload are stamped v2 and refused by stores
#: that predate the scheme.
ARTIFACT_SCHEMA_VERSION = 2

#: Indy500 field size (the paper's races start 33 cars).  The single shared
#: fallback for every rank clip in the code base — the evaluators and the
#: strategy optimizer import this instead of hard-coding 33, and prefer the
#: field size observed in the data (``RankForecaster.field_size``, recorded
#: at fit time) when one is available.
DEFAULT_FIELD_SIZE = 33


def clip_rank(values: np.ndarray, num_cars: int = DEFAULT_FIELD_SIZE) -> np.ndarray:
    """Clip forecasts into the physically valid rank range ``[1, num_cars]``."""
    return np.clip(values, 1.0, float(num_cars))


def _dequantized_f64(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Float64 view of an int8 payload, for exact staleness comparison."""
    from ..nn.precision import dequantize_int8

    return np.asarray(dequantize_int8(q, scale), dtype=np.float64)


@dataclass
class ModelArtifact:
    """Durable snapshot of a fitted forecaster.

    Every forecaster family serialises to the same three-part layout:

    * ``config`` — JSON-safe constructor arguments, sufficient to rebuild an
      *unfitted* twin of the model;
    * ``state`` — JSON-safe fitted metadata: ``field_size``, fitted flags,
      scaler statistics that are scalars, and the RNG stream snapshots that
      make a restored model's forecasts *byte-identical* to the original's;
    * ``arrays`` — the dense fitted state (network weights, tree tables,
      support vectors), keyed by slash-namespaced names.

    Artifacts are plain data: writing/reading them to disk is the job of
    :mod:`repro.artifacts`, which stores them through the shared npz+meta
    checkpoint format of :mod:`repro.nn.checkpoint`.
    """

    family: str
    config: dict
    state: dict
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    schema_version: int = ARTIFACT_SCHEMA_VERSION

    def config_hash(self) -> str:
        """Stable short hash of the constructor configuration.

        Delegates to :func:`repro.nn.checkpoint.config_hash`, the same
        convention the artifact store uses for its cache keys, so manifest
        records and ``--artifacts-dir`` keys can never drift apart.
        """
        return _config_hash(self.config)


@dataclass
class ProbabilisticForecast:
    """Monte-Carlo forecast of one car's rank over ``horizon`` future laps."""

    samples: np.ndarray  # (n_samples, horizon)
    origin: int
    race_id: str = ""
    car_id: int = -1

    def __post_init__(self) -> None:
        self.samples = np.atleast_2d(np.asarray(self.samples, dtype=np.float64))

    @property
    def horizon(self) -> int:
        return int(self.samples.shape[1])

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[0])

    def median(self) -> np.ndarray:
        return np.median(self.samples, axis=0)

    def mean(self) -> np.ndarray:
        return self.samples.mean(axis=0)

    def quantile(self, q: float) -> np.ndarray:
        return np.quantile(self.samples, q, axis=0)

    def point(self) -> np.ndarray:
        """Point forecast used for MAE / accuracy metrics (the median)."""
        return self.median()


class RankForecaster(abc.ABC):
    """Abstract base class of all rank-position forecasters."""

    #: human-readable name used in result tables
    name: str = "forecaster"
    #: whether the model outputs a genuine predictive distribution
    supports_uncertainty: bool = False
    #: whether the model uses (or predicts) the race-status covariates
    uses_race_status: bool = False
    #: field size observed in the training data (``None`` until a fit
    #: records one); consumers fall back to :data:`DEFAULT_FIELD_SIZE`
    field_size: Optional[int] = None
    #: weight format of the artifact this instance was loaded from
    #: (``"float64"`` for freshly-fit models; see :meth:`from_artifact`)
    loaded_precision: str = "float64"

    def record_field_size(self, train_series: Sequence[CarFeatureSeries]) -> None:
        """Remember the largest rank seen at fit time as the field size."""
        worst = max(
            (float(np.max(s.rank)) for s in train_series if len(s)), default=0.0
        )
        self.field_size = int(np.ceil(worst)) if worst > 0 else None

    @abc.abstractmethod
    def fit(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
    ) -> "RankForecaster":
        """Train the model on a collection of per-car series."""

    @abc.abstractmethod
    def forecast(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        n_samples: int = 100,
    ) -> ProbabilisticForecast:
        """Forecast ``horizon`` laps after lap index ``origin`` of ``series``."""

    # ------------------------------------------------------------------
    def forecast_fleet(
        self,
        tasks: Sequence[Tuple[CarFeatureSeries, int, int]],
        n_samples: int = 100,
    ) -> List[ProbabilisticForecast]:
        """Forecast many ``(series, origin, horizon)`` tasks in one call.

        The evaluation loops route through this entry point.  The default
        implementation simply loops :meth:`forecast`; the deep forecasters
        override it to dispatch the whole fleet to the batched inference
        engine (:class:`repro.serving.FleetForecaster`), which is an order
        of magnitude faster for rolling-origin workloads.
        """
        return [
            self.forecast(series, int(origin), int(horizon), n_samples=n_samples)
            for series, origin, horizon in tasks
        ]

    def forecast_many(
        self,
        series: CarFeatureSeries,
        origins: Sequence[int],
        horizon: int,
        n_samples: int = 100,
    ) -> List[ProbabilisticForecast]:
        """Forecasts for several origins of the same series (convenience)."""
        return self.forecast_fleet(
            [(series, int(o), int(horizon)) for o in origins], n_samples=n_samples
        )

    # ------------------------------------------------------------------
    # artifact protocol
    # ------------------------------------------------------------------
    def _artifact_config(self) -> dict:
        """JSON-safe constructor arguments rebuilding an unfitted twin."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact protocol"
        )

    def _artifact_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Fitted state as ``(json_safe_meta, named_arrays)``."""
        return {}, {}

    def _load_artifact_state(self, state: dict, arrays: Dict[str, np.ndarray]) -> None:
        """Restore the fitted state produced by :meth:`_artifact_state`."""

    @classmethod
    def _config_from_artifact(cls, config: dict) -> dict:
        """Hook converting JSON config values back to constructor types."""
        return dict(config)

    def to_artifact(self, precision: str = "float64") -> ModelArtifact:
        """Snapshot this (fitted) forecaster as a :class:`ModelArtifact`.

        The snapshot captures everything forecasting depends on — fitted
        parameters, scalers, feature configuration, ``field_size`` and the
        forecast RNG stream — so ``from_artifact(to_artifact(m))`` yields a
        model whose ``forecast`` output is byte-identical to ``m``'s.

        ``precision`` selects the stored weight format (see
        :mod:`repro.nn.precision`): ``"float64"`` writes the unchanged v1
        layout; ``"float32"`` casts the floating weight arrays down;
        ``"int8"`` stores the symmetric per-output-channel quantisation
        payload (``<name>::q`` int8 codes + ``<name>::scale`` float32
        scales).  A forecaster that was itself loaded from an int8
        artifact re-emits that payload bit-exactly (re-quantising the
        dequantised weights is not guaranteed to reproduce the original
        codes); the cached payload is dropped automatically whenever the
        weights no longer match it (re-fit, fine-tune).
        """
        from ..nn.precision import normalize_precision, quantize_int8

        precision = normalize_precision(precision)
        state, arrays = self._artifact_state()
        state = dict(state)
        state["field_size"] = self.field_size
        if precision == "float64":
            # unchanged layout — stamped v1 so pre-precision builds and
            # stores keep loading the reference artifacts byte-identically
            return ModelArtifact(
                family=type(self).__name__,
                config=self._artifact_config(),
                state=state,
                arrays=arrays,
                schema_version=1,
            )
        state["precision"] = precision
        encoded: Dict[str, np.ndarray] = {}
        cached = getattr(self, "_int8_payload", None)
        for name, array in arrays.items():
            array = np.asarray(array)
            if not np.issubdtype(array.dtype, np.floating):
                encoded[name] = array
                continue
            if precision == "float32":
                encoded[name] = array.astype(np.float32)
                continue
            pair = None
            if cached is not None and name in cached:
                q, scale = cached[name]
                if q.shape == array.shape and np.array_equal(
                    _dequantized_f64(q, scale), np.asarray(array, dtype=np.float64)
                ):
                    pair = (q, scale)
            if pair is None:
                pair = quantize_int8(array)
            encoded[name + "::q"], encoded[name + "::scale"] = pair
        return ModelArtifact(
            family=type(self).__name__,
            config=self._artifact_config(),
            state=state,
            arrays=encoded,
            schema_version=ARTIFACT_SCHEMA_VERSION,
        )

    @classmethod
    def from_artifact(cls, artifact: ModelArtifact) -> "RankForecaster":
        """Rebuild a fitted forecaster from a :class:`ModelArtifact`.

        Low-precision artifacts (schema v2, ``state["precision"]``) load
        into the ordinary float64 parameter storage: float32 weights are
        exactly representable there, and int8 payloads are dequantised
        once (``q * scale`` in float32) on the way in.  The decoded
        payload is kept on the instance so ``to_artifact("int8")`` round
        trips bit-exactly, and the loaded tier is recorded as
        ``loaded_precision``.
        """
        from ..nn.precision import PRECISIONS, dequantize_int8

        if artifact.family != cls.__name__:
            raise ValueError(
                f"artifact family {artifact.family!r} does not match {cls.__name__!r}"
            )
        if artifact.schema_version > ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"artifact schema version {artifact.schema_version} is newer "
                f"than supported version {ARTIFACT_SCHEMA_VERSION}"
            )
        model = cls(**cls._config_from_artifact(artifact.config))
        state = dict(artifact.state)
        size = state.pop("field_size", None)
        model.field_size = None if size is None else int(size)
        precision = state.pop("precision", "float64")
        if precision not in PRECISIONS:
            raise ValueError(
                f"artifact carries unknown precision {precision!r}; "
                f"this build reads {', '.join(PRECISIONS)}"
            )
        arrays = artifact.arrays
        payload: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        if precision == "int8":
            decoded: Dict[str, np.ndarray] = {}
            for key, value in arrays.items():
                if key.endswith("::q"):
                    name = key[: -len("::q")]
                    scale_key = name + "::scale"
                    if scale_key not in arrays:
                        raise ValueError(
                            f"int8 artifact array {name!r} has codes but no "
                            f"{scale_key!r} scales"
                        )
                    q = np.asarray(value, dtype=np.int8)
                    scale = np.asarray(arrays[scale_key], dtype=np.float32)
                    decoded[name] = dequantize_int8(q, scale)
                    payload[name] = (q, scale)
                elif not key.endswith("::scale"):
                    decoded[key] = value
            arrays = decoded
        model._load_artifact_state(state, arrays)
        if payload:
            model._int8_payload = payload
        model.loaded_precision = precision
        return model

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r})"
