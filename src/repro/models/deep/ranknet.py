"""RankNet, DeepAR and Transformer forecaster wrappers.

This module glues the sequence backbones (:class:`RankSeqModel`,
:class:`TransformerSeqModel`) and the :class:`PitModelMLP` into the common
:class:`repro.models.base.RankForecaster` interface, implementing the three
RankNet variants compared in the paper (Table III):

* **RankNet-Oracle** — the RankModel receives the *true* future race status
  as covariates (upper bound on what the decomposition can achieve);
* **RankNet-MLP** — the proposed model: a separate probabilistic PitModel
  forecasts the future pit stops, and the sampled race-status plan is fed to
  the RankModel (cause-effect decomposition);
* **RankNet-Joint** — no decomposition: rank, LapStatus and TrackStatus are
  modelled jointly as a multivariate target (the ablation that fails due to
  the sparsity of the pit/caution events);

plus the plain **DeepAR** baseline (no race-status covariates at all) and
the Transformer-backboned versions of Oracle / MLP.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...data.features import CarFeatureSeries
from ...data.loader import BatchLoader
from ...data.schema import ALL_COVARIATES, FeatureSpec
from ...data.windows import make_windows
from ...nn import Adam, Trainer, TrainingHistory
from ...nn.checkpoint import restore_rng, rng_state
from ...nn.precision import DEFAULT_PRECISION, normalize_precision
from ...serving.engine import FleetForecaster
from ...serving.requests import ForecastRequest, spawn_request_rngs
from ..base import ProbabilisticForecast, RankForecaster, clip_rank
from .pitmodel import PitModelMLP
from .rankmodel import RankSeqModel
from .transformer import TransformerSeqModel

__all__ = [
    "DeepForecasterBase",
    "DeepARForecaster",
    "RankNetForecaster",
    "TransformerForecaster",
]


class DeepForecasterBase(RankForecaster):
    """Shared training / forecasting logic of the deep sequence forecasters."""

    supports_uncertainty = True

    def __init__(
        self,
        feature_spec: Optional[FeatureSpec] = None,
        encoder_length: int = 60,
        decoder_length: int = 2,
        hidden_dim: int = 40,
        num_layers: int = 2,
        epochs: int = 15,
        batch_size: int = 64,
        lr: float = 1e-3,
        rank_change_weight: float = 9.0,
        max_train_windows: int = 4000,
        window_stride: int = 1,
        target_dim: int = 1,
        seed: int = 0,
        fleet_mode: str = "exact",
        name: str = "DeepForecaster",
    ) -> None:
        self.feature_spec = feature_spec or FeatureSpec()
        self.encoder_length = int(encoder_length)
        self.decoder_length = int(decoder_length)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.rank_change_weight = float(rank_change_weight)
        self.max_train_windows = int(max_train_windows)
        self.window_stride = int(window_stride)
        self.target_dim = int(target_dim)
        self.seed = int(seed)
        self.fleet_mode = fleet_mode
        self.name = name
        self.rng = np.random.default_rng(seed)
        self.model = None
        self._fleet_engines: Dict[Tuple[str, str], FleetForecaster] = {}
        self.history_: Optional[TrainingHistory] = None
        self.uses_race_status = self.feature_spec.num_covariates > 0

    # ------------------------------------------------------------------
    # model construction (overridden by the Transformer variant)
    # ------------------------------------------------------------------
    def _build_model(self, num_covariates: int):
        return RankSeqModel(
            num_covariates=num_covariates,
            hidden_dim=self.hidden_dim,
            num_layers=self.num_layers,
            target_dim=self.target_dim,
            encoder_length=self.encoder_length,
            decoder_length=self.decoder_length,
            rng=self.rng,
        )

    # ------------------------------------------------------------------
    # dataset assembly
    # ------------------------------------------------------------------
    def _make_batches(self, series_list: Sequence[CarFeatureSeries], shuffle: bool):
        dataset = make_windows(
            series_list,
            encoder_length=self.encoder_length,
            decoder_length=self.decoder_length,
            stride=self.window_stride,
            rank_change_loss_weight=self.rank_change_weight,
        )
        if len(dataset) > self.max_train_windows:
            idx = self.rng.choice(len(dataset), size=self.max_train_windows, replace=False)
            dataset = dataset.subset(np.sort(idx))
        loader = BatchLoader(
            dataset,
            batch_size=self.batch_size,
            shuffle=shuffle,
            spec=self.feature_spec,
            rng=self.rng,
        )
        return dataset, loader

    def _augment_batch(self, batch: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Hook for variants that need to reshape the batch (e.g. Joint)."""
        return batch

    def _wrap_loader(self, loader: BatchLoader):
        def batches():
            for batch in loader:
                yield self._augment_batch(batch)

        return batches

    # ------------------------------------------------------------------
    def fit(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
    ) -> "DeepForecasterBase":
        _, train_loader = self._make_batches(train_series, shuffle=True)
        val_loader = None
        if val_series:
            _, val_loader = self._make_batches(val_series, shuffle=False)
        self.model = self._build_model(self.feature_spec.num_covariates)
        # engines are bound to the (replaced) model instance; consumers must
        # resolve them through fleet_engine() rather than holding references
        self._fleet_engines = {}
        self.record_field_size(train_series)
        trainer = Trainer(
            self.model,
            optimizer=Adam(self.model.parameters(), lr=self.lr),
            max_epochs=self.epochs,
            lr_patience=10,
            early_stopping_patience=max(self.epochs, 10),
        )
        self.history_ = trainer.fit(
            self._wrap_loader(train_loader),
            self._wrap_loader(val_loader) if val_loader is not None else None,
        )
        self._post_fit(train_series)
        return self

    def _post_fit(self, train_series: Sequence[CarFeatureSeries]) -> None:
        """Hook for variants that train auxiliary models (e.g. the PitModel)."""

    # ------------------------------------------------------------------
    # artifact protocol
    # ------------------------------------------------------------------
    def _deep_artifact_config(self) -> dict:
        """Constructor arguments shared by all deep forecaster families."""
        return {
            "encoder_length": self.encoder_length,
            "decoder_length": self.decoder_length,
            "hidden_dim": self.hidden_dim,
            "num_layers": self.num_layers,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "rank_change_weight": self.rank_change_weight,
            "max_train_windows": self.max_train_windows,
            "window_stride": self.window_stride,
            "target_dim": self.target_dim,
            "seed": self.seed,
            "fleet_mode": self.fleet_mode,
            "name": self.name,
        }

    def _artifact_config(self) -> dict:
        return self._deep_artifact_config()

    def _artifact_state(self):
        if self.model is None:
            raise RuntimeError(f"{self.name} must be fit before creating an artifact")
        arrays = {f"model/{name}": value for name, value in self.model.state_dict().items()}
        return {"rng": rng_state(self.rng)}, arrays

    def _load_artifact_state(self, state, arrays) -> None:
        # building the backbone consumes initialisation draws from self.rng;
        # the stream is restored to its saved position right afterwards, so
        # the first forecast replays the exact continuation of the original
        self.model = self._build_model(self.feature_spec.num_covariates)
        prefix = "model/"
        self.model.load_state_dict(
            {key[len(prefix) :]: value for key, value in arrays.items() if key.startswith(prefix)}
        )
        restore_rng(self.rng, state["rng"])
        self._fleet_engines = {}
        self.model.eval()

    def fine_tune(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
        epochs: int = 5,
        lr: Optional[float] = None,
    ) -> "DeepForecasterBase":
        """Continue training the fitted model on new data (transfer learning).

        The paper lists transfer learning across events as future work; this
        implements the simplest form — warm-starting from the already-trained
        weights and running a few additional epochs at a (typically lower)
        learning rate on the new event's races.
        """
        if self.model is None:
            raise RuntimeError(f"{self.name} must be fit before fine-tuning")
        # carried warm-up states predate the new weights
        for engine in self._fleet_engines.values():
            engine.reset_cache()
        # the model now targets the new event's field
        if train_series:
            self.record_field_size(train_series)
        _, train_loader = self._make_batches(train_series, shuffle=True)
        val_loader = None
        if val_series:
            _, val_loader = self._make_batches(val_series, shuffle=False)
        trainer = Trainer(
            self.model,
            optimizer=Adam(self.model.parameters(), lr=lr if lr is not None else self.lr * 0.3),
            max_epochs=int(epochs),
            lr_patience=max(int(epochs), 1),
            early_stopping_patience=max(int(epochs), 1),
        )
        self.history_ = trainer.fit(
            self._wrap_loader(train_loader),
            self._wrap_loader(val_loader) if val_loader is not None else None,
        )
        return self

    # ------------------------------------------------------------------
    # forecasting
    # ------------------------------------------------------------------
    def _history_target(self, series: CarFeatureSeries, origin: int) -> np.ndarray:
        start = max(0, origin + 1 - self.encoder_length)
        return series.rank[start : origin + 1]

    def _history_covariates(self, series: CarFeatureSeries, origin: int) -> np.ndarray:
        start = max(0, origin + 1 - self.encoder_length)
        cov = self._select(series.covariates[start : origin + 1])
        return cov

    def _select(self, covariates: np.ndarray) -> np.ndarray:
        names = self.feature_spec.covariate_names()
        if not names:
            return np.zeros(covariates.shape[:-1] + (0,), dtype=np.float64)
        idx = [ALL_COVARIATES.index(n) for n in names]
        return covariates[..., idx]

    def _future_covariates(
        self, series: CarFeatureSeries, origin: int, horizon: int
    ) -> np.ndarray:
        """Default: covariates unknown in the future -> zeros."""
        return np.zeros((horizon, self.feature_spec.num_covariates), dtype=np.float64)

    def forecast(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        n_samples: int = 100,
    ) -> ProbabilisticForecast:
        if self.model is None:
            raise RuntimeError(f"{self.name} must be fit before forecasting")
        if origin < 1 or origin >= len(series):
            raise IndexError(f"origin {origin} out of range")
        history_target = self._history_target(series, origin)
        history_cov = self._history_covariates(series, origin)
        future_cov = self._future_covariates(series, origin, horizon)
        samples = self.model.forecast_samples(
            self._target_history_matrix(series, origin, history_target),
            history_cov,
            future_cov,
            n_samples=n_samples,
            rng=self.rng,
        )
        samples = clip_rank(samples)
        return ProbabilisticForecast(
            samples=samples, origin=origin, race_id=series.race_id, car_id=series.car_id
        )

    def _target_history_matrix(
        self, series: CarFeatureSeries, origin: int, history_target: np.ndarray
    ) -> np.ndarray:
        """Univariate by default; the Joint variant overrides this."""
        return history_target

    # ------------------------------------------------------------------
    # fleet-batched forecasting
    # ------------------------------------------------------------------
    def fleet_engine(
        self, mode: Optional[str] = None, precision: Optional[str] = None
    ) -> FleetForecaster:
        """The batch scheduler all fleet forecasts of this model go through.

        One engine is kept per ``(mode, precision)`` replica and bound to
        the current ``self.model``: re-fitting drops them (a fresh engine
        is built on next use) and :meth:`fine_tune` resets their carried
        warm-up states, so consumers should resolve the engine through
        this method on every use instead of holding on to the returned
        instance across re-training.  Low-precision replicas convert the
        weights lazily on first use (see :mod:`repro.nn.precision`); the
        float64 replica shares the training weights directly.
        """
        if self.model is None:
            raise RuntimeError(f"{self.name} must be fit before forecasting")
        mode = mode if mode is not None else self.fleet_mode
        precision = normalize_precision(precision, default=DEFAULT_PRECISION)
        key = (mode, precision)
        engine = self._fleet_engines.get(key)
        if engine is None:
            engine = FleetForecaster(self.model, mode=mode, precision=precision)
            self._fleet_engines[key] = engine
        return engine

    def _fleet_request(
        self,
        series: CarFeatureSeries,
        origin: int,
        future_covariates: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
        key: Optional[tuple] = None,
    ) -> ForecastRequest:
        history_target = self._history_target(series, origin)
        return ForecastRequest(
            history_target=self._target_history_matrix(series, origin, history_target),
            history_covariates=self._history_covariates(series, origin),
            future_covariates=future_covariates,
            n_samples=n_samples,
            rng=rng,
            key=key if key is not None else (series.race_id, series.car_id),
            origin=int(origin),
        )

    def forecast_fleet(
        self,
        tasks: Sequence[Tuple[CarFeatureSeries, int, int]],
        n_samples: int = 100,
    ) -> List[ProbabilisticForecast]:
        """Batched forecasting of many ``(series, origin, horizon)`` tasks.

        All tasks are flattened into one submit of the fleet engine: every
        car's Monte-Carlo trajectories advance in a single recurrent batch
        instead of one car at a time.  Each request draws from its own
        spawned RNG stream, so the results do not depend on how the tasks
        are grouped or ordered inside the engine.
        """
        tasks = list(tasks)
        if self.model is None:
            raise RuntimeError(f"{self.name} must be fit before forecasting")
        if not tasks:
            return []
        for series, origin, _ in tasks:
            if origin < 1 or origin >= len(series):
                raise IndexError(f"origin {origin} out of range")
        rngs = spawn_request_rngs(self.rng, len(tasks))
        requests = [
            self._fleet_request(
                series,
                int(origin),
                self._future_covariates(series, int(origin), int(horizon)),
                n_samples,
                rng,
            )
            for (series, origin, horizon), rng in zip(tasks, rngs)
        ]
        results = self.fleet_engine().submit(requests)
        return [
            ProbabilisticForecast(
                samples=clip_rank(samples),
                origin=int(origin),
                race_id=series.race_id,
                car_id=series.car_id,
            )
            for (series, origin, _), samples in zip(tasks, results)
        ]


class DeepARForecaster(DeepForecasterBase):
    """DeepAR baseline: the same backbone with no race-status covariates."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("name", "DeepAR")
        super().__init__(
            feature_spec=FeatureSpec(use_race_status=False, use_context=False, use_shift=False),
            **kwargs,
        )
        self.uses_race_status = False


class RankNetForecaster(DeepForecasterBase):
    """RankNet with the LSTM backbone (variants: oracle / mlp / joint)."""

    VARIANTS = ("oracle", "mlp", "joint")

    def __init__(
        self,
        variant: str = "mlp",
        pit_model: Optional[PitModelMLP] = None,
        pit_plans_per_forecast: int = 5,
        feature_spec: Optional[FeatureSpec] = None,
        **kwargs,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}, got {variant!r}")
        self.variant = variant
        if variant == "joint":
            # joint training models [rank, lap_status, track_status] with no covariates
            feature_spec = FeatureSpec(use_race_status=False, use_context=False, use_shift=False)
            kwargs.setdefault("target_dim", 3)
        else:
            feature_spec = feature_spec or FeatureSpec()
        kwargs.setdefault("name", f"RankNet-{variant.upper() if variant == 'mlp' else variant.capitalize()}")
        super().__init__(feature_spec=feature_spec, **kwargs)
        self.pit_model = pit_model
        self.pit_plans_per_forecast = int(pit_plans_per_forecast)
        self.uses_race_status = True

    # -- joint variant: build the multivariate target from the full covariates
    def _make_batches(self, series_list, shuffle):
        dataset = make_windows(
            series_list,
            encoder_length=self.encoder_length,
            decoder_length=self.decoder_length,
            stride=self.window_stride,
            rank_change_loss_weight=self.rank_change_weight,
        )
        if len(dataset) > self.max_train_windows:
            idx = self.rng.choice(len(dataset), size=self.max_train_windows, replace=False)
            dataset = dataset.subset(np.sort(idx))
        loader = BatchLoader(
            dataset,
            batch_size=self.batch_size,
            shuffle=shuffle,
            spec=self.feature_spec,
            rng=self.rng,
        )
        if self.variant == "joint":
            track_idx = ALL_COVARIATES.index("track_status")
            lap_idx = ALL_COVARIATES.index("lap_status")
            full_cov = dataset.covariates
            base_loader = loader

            def batches_with_joint():
                for batch, rows in _iter_with_indices(base_loader, dataset):
                    target = np.stack(
                        [
                            batch["target"],
                            full_cov[rows][:, :, lap_idx],
                            full_cov[rows][:, :, track_idx],
                        ],
                        axis=-1,
                    )
                    yield {**batch, "target": target}

            loader = _JointLoaderProxy(base_loader, batches_with_joint)
        return dataset, loader

    def _post_fit(self, train_series: Sequence[CarFeatureSeries]) -> None:
        if self.variant == "mlp" and self.pit_model is None:
            self.pit_model = PitModelMLP(seed=self.seed)
            self.pit_model.fit(list(train_series))

    # -- artifact protocol: variant + (for MLP) the nested PitModel
    def _artifact_config(self) -> dict:
        return {
            "variant": self.variant,
            "pit_plans_per_forecast": self.pit_plans_per_forecast,
            "feature_spec": asdict(self.feature_spec),
            **self._deep_artifact_config(),
        }

    @classmethod
    def _config_from_artifact(cls, config: dict) -> dict:
        config = dict(config)
        if config.get("feature_spec") is not None:
            config["feature_spec"] = FeatureSpec(**config["feature_spec"])
        return config

    def _artifact_state(self):
        state, arrays = super()._artifact_state()
        if self.pit_model is not None:
            pit_state, pit_arrays = self.pit_model._artifact_state()
            state["pit_model"] = {
                "config": self.pit_model._artifact_config(),
                "state": pit_state,
            }
            arrays.update({f"pit/{key}": value for key, value in pit_arrays.items()})
        return state, arrays

    def _load_artifact_state(self, state, arrays) -> None:
        state = dict(state)
        pit = state.pop("pit_model", None)
        super()._load_artifact_state(state, arrays)
        if pit is not None:
            prefix = "pit/"
            pit_arrays = {
                key[len(prefix) :]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            self.pit_model = PitModelMLP.from_artifact_parts(
                pit["config"], pit["state"], pit_arrays
            )

    def _target_history_matrix(self, series, origin, history_target):
        if self.variant != "joint":
            return history_target
        start = max(0, origin + 1 - self.encoder_length)
        lap = series.covariate("lap_status")[start : origin + 1]
        track = series.covariate("track_status")[start : origin + 1]
        return np.column_stack([history_target, lap, track])

    def _future_covariates(self, series, origin, horizon):
        if self.variant == "joint":
            return np.zeros((horizon, 0), dtype=np.float64)
        if self.variant == "oracle":
            end = min(origin + horizon, len(series) - 1)
            cov = series.covariates[origin + 1 : end + 1]
            if cov.shape[0] < horizon:  # pad when the race ends inside the horizon
                pad = np.zeros((horizon - cov.shape[0], cov.shape[1]))
                cov = np.vstack([cov, pad])
            return self._select(cov)
        # mlp variant: sample a pit-stop plan
        if self.pit_model is None:
            raise RuntimeError("RankNet-MLP requires a fitted PitModel")
        plan = self.pit_model.plan_covariates(series, origin, horizon, rng=self.rng)
        return self._select(plan)

    def forecast(self, series, origin, horizon, n_samples: int = 100):
        if self.variant != "mlp" or self.pit_plans_per_forecast <= 1:
            return super().forecast(series, origin, horizon, n_samples=n_samples)
        return self.forecast_fleet([(series, origin, horizon)], n_samples=n_samples)[0]

    def forecast_fleet(
        self,
        tasks: Sequence[Tuple[CarFeatureSeries, int, int]],
        n_samples: int = 100,
    ) -> List[ProbabilisticForecast]:
        if self.variant != "mlp" or self.pit_plans_per_forecast <= 1:
            return super().forecast_fleet(tasks, n_samples=n_samples)
        # MLP variant: average over several sampled pit-stop plans so the
        # uncertainty of the PitModel propagates into the rank forecast.
        # All plans of all tasks go to the engine in one submit; the plans
        # of one task share their warm-up (same key + origin).
        tasks = list(tasks)
        if self.model is None:
            raise RuntimeError(f"{self.name} must be fit before forecasting")
        if self.pit_model is None:
            raise RuntimeError("RankNet-MLP requires a fitted PitModel")
        if not tasks:
            return []
        for series, origin, _ in tasks:
            if origin < 1 or origin >= len(series):
                raise IndexError(f"origin {origin} out of range")
        plans = self.pit_plans_per_forecast
        per_plan = max(n_samples // plans, 1)
        rngs = spawn_request_rngs(self.rng, len(tasks) * plans)
        requests: List[ForecastRequest] = []
        for i, (series, origin, horizon) in enumerate(tasks):
            for p in range(plans):
                future_cov = self._select(
                    self.pit_model.plan_covariates(series, int(origin), int(horizon), rng=self.rng)
                )
                requests.append(
                    self._fleet_request(
                        series, int(origin), future_cov, per_plan, rngs[i * plans + p]
                    )
                )
        results = self.fleet_engine().submit(requests)
        forecasts: List[ProbabilisticForecast] = []
        for i, (series, origin, _) in enumerate(tasks):
            samples = clip_rank(np.vstack(results[i * plans : (i + 1) * plans]))
            forecasts.append(
                ProbabilisticForecast(
                    samples=samples,
                    origin=int(origin),
                    race_id=series.race_id,
                    car_id=series.car_id,
                )
            )
        return forecasts


class _JointLoaderProxy:
    """Wraps a loader so iteration yields joint (multivariate-target) batches."""

    def __init__(self, loader: BatchLoader, batches_fn) -> None:
        self._loader = loader
        self._batches_fn = batches_fn

    def __iter__(self):
        return iter(self._batches_fn())

    def __len__(self):
        return len(self._loader)


def _iter_with_indices(loader: BatchLoader, dataset):
    """Iterate a loader re-deriving the row indices of each batch.

    The loader shuffles internally; to attach extra columns per batch we
    re-implement its iteration order using the same RNG stream would be
    fragile, so instead we iterate the dataset directly in fixed-size chunks
    (shuffling is handled by re-shuffling indices here).
    """
    n = len(dataset)
    order = np.arange(n)
    if loader.shuffle:
        loader.rng.shuffle(order)
    cov = dataset.select_covariates(loader.spec)
    for start in range(0, n, loader.batch_size):
        rows = order[start : start + loader.batch_size]
        batch = {
            "target": dataset.target[rows],
            "covariates": cov[rows],
            "car_index": dataset.car_index[rows],
            "weight": dataset.weight[rows],
        }
        yield batch, rows


class TransformerForecaster(RankNetForecaster):
    """RankNet with a Transformer backbone (oracle or mlp covariate handling)."""

    def __init__(
        self,
        variant: str = "mlp",
        d_model: int = 32,
        num_heads: int = 8,
        d_ff: int = 64,
        num_encoder_layers: int = 2,
        num_decoder_layers: int = 1,
        **kwargs,
    ) -> None:
        if variant == "joint":
            raise ValueError("the Transformer implementation supports 'oracle' and 'mlp' only")
        kwargs.setdefault("name", f"Transformer-{'MLP' if variant == 'mlp' else variant.capitalize()}")
        super().__init__(variant=variant, **kwargs)
        self.d_model = int(d_model)
        self.num_heads = int(num_heads)
        self.d_ff = int(d_ff)
        self.num_encoder_layers = int(num_encoder_layers)
        self.num_decoder_layers = int(num_decoder_layers)

    def _artifact_config(self) -> dict:
        return {
            "d_model": self.d_model,
            "num_heads": self.num_heads,
            "d_ff": self.d_ff,
            "num_encoder_layers": self.num_encoder_layers,
            "num_decoder_layers": self.num_decoder_layers,
            **super()._artifact_config(),
        }

    def _build_model(self, num_covariates: int):
        return TransformerSeqModel(
            num_covariates=num_covariates,
            d_model=self.d_model,
            num_heads=self.num_heads,
            d_ff=self.d_ff,
            num_encoder_layers=self.num_encoder_layers,
            num_decoder_layers=self.num_decoder_layers,
            target_dim=self.target_dim,
            encoder_length=self.encoder_length,
            decoder_length=self.decoder_length,
            rng=self.rng,
        )
