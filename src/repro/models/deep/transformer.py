"""Transformer encoder-decoder forecaster backbone.

The paper compares the LSTM-based RankNet with a Transformer implementation
(§IV-I): multi-head attention with 8 heads and model dimension 32, same
probabilistic output and the same covariate handling.  This module provides
:class:`TransformerSeqModel`, which exposes the same training / forecasting
interface as :class:`repro.models.deep.rankmodel.RankSeqModel` so the two
backbones are interchangeable inside the forecaster wrappers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...nn import (
    Dense,
    GaussianOutput,
    Module,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    sinusoidal_positional_encoding,
)
from ...nn.losses import gaussian_nll

__all__ = ["TransformerSeqModel"]


class TransformerSeqModel(Module):
    """Probabilistic Transformer encoder-decoder over rank windows."""

    def __init__(
        self,
        num_covariates: int,
        d_model: int = 32,
        num_heads: int = 8,
        d_ff: int = 64,
        num_encoder_layers: int = 2,
        num_decoder_layers: int = 1,
        target_dim: int = 1,
        encoder_length: int = 60,
        decoder_length: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.num_covariates = int(num_covariates)
        self.d_model = int(d_model)
        self.target_dim = int(target_dim)
        self.encoder_length = int(encoder_length)
        self.decoder_length = int(decoder_length)
        self.input_dim = self.target_dim + self.num_covariates
        self.enc_proj = Dense(self.input_dim, d_model, rng=rng, name="enc_proj")
        self.dec_proj = Dense(self.input_dim, d_model, rng=rng, name="dec_proj")
        self.encoder_layers = [
            TransformerEncoderLayer(d_model, num_heads, d_ff, rng=rng, name=f"enc{i}")
            for i in range(num_encoder_layers)
        ]
        self.decoder_layers = [
            TransformerDecoderLayer(d_model, num_heads, d_ff, rng=rng, name=f"dec{i}")
            for i in range(num_decoder_layers)
        ]
        self.heads = [GaussianOutput(d_model, rng=rng, name=f"head.{d}") for d in range(target_dim)]
        self.rng = rng
        self._pe_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _positional(self, length: int) -> np.ndarray:
        if length not in self._pe_cache:
            self._pe_cache[length] = sinusoidal_positional_encoding(length, self.d_model)
        return self._pe_cache[length]

    def _prepare_targets(self, target: np.ndarray) -> np.ndarray:
        target = np.asarray(target, dtype=np.float64)
        if target.ndim == 2:
            target = target[..., None]
        if target.shape[-1] != self.target_dim:
            raise ValueError(f"expected target_dim={self.target_dim}, got {target.shape[-1]}")
        return target

    def _encode(self, enc_tokens: np.ndarray) -> np.ndarray:
        h = self.enc_proj.forward(enc_tokens) + self._positional(enc_tokens.shape[1])[None, :, :]
        for layer in self.encoder_layers:
            h = layer.forward(h)
        return h

    def _decode(self, dec_tokens: np.ndarray, memory: np.ndarray) -> np.ndarray:
        h = self.dec_proj.forward(dec_tokens) + self._positional(dec_tokens.shape[1])[None, :, :]
        mask = causal_mask(dec_tokens.shape[1])
        for layer in self.decoder_layers:
            h = layer.forward(h, memory, self_mask=mask)
        return h

    def _clear_all_caches(self) -> None:
        self.enc_proj.clear_cache()
        self.dec_proj.clear_cache()
        for layer in self.encoder_layers + self.decoder_layers:
            for attr in vars(layer).values():
                if hasattr(attr, "clear_cache"):
                    attr.clear_cache()
                elif hasattr(attr, "_cache") and isinstance(getattr(attr, "_cache"), list):
                    attr._cache.clear()
            for sub in (getattr(layer, "ffn", None),):
                if sub is not None:
                    sub.fc1.clear_cache()
                    sub.fc2.clear_cache()
        for head in self.heads:
            head.clear_cache()

    # ------------------------------------------------------------------
    def _forward_loss(self, batch: Dict[str, np.ndarray], with_backward: bool) -> float:
        target = self._prepare_targets(batch["target"])
        covariates = np.asarray(batch["covariates"], dtype=np.float64)
        weight = np.asarray(batch.get("weight", np.ones(target.shape[0])), dtype=np.float64)
        batch_size, total_len, _ = target.shape
        l0 = total_len - self.decoder_length
        scale = np.abs(target[:, :l0, :]).mean(axis=1) + 1.0
        z = target / scale[:, None, :]

        # encoder tokens: t = 1..L0-1 uses (z_{t-1}, x_t); this matches the
        # token layout used at forecast time (history only)
        enc_tokens = np.concatenate([z[:, 0 : l0 - 1, :], covariates[:, 1:l0, :]], axis=2)
        # decoder tokens: t = L0+1..L0+k uses (z_{t-1}, x_t)
        dec_tokens = np.concatenate(
            [z[:, l0 - 1 : total_len - 1, :], covariates[:, l0:total_len, :]], axis=2
        )
        memory = self._encode(enc_tokens)
        dec_out = self._decode(dec_tokens, memory)

        total_loss = 0.0
        n_terms = self.decoder_length * self.target_dim
        d_dec_out = np.zeros_like(dec_out)
        head_grads: List[tuple] = []
        for step in range(self.decoder_length):
            t = l0 + step
            h_t = dec_out[:, step, :]
            mus = np.empty((batch_size, self.target_dim))
            sigmas = np.empty((batch_size, self.target_dim))
            d_mu = np.empty((batch_size, self.target_dim))
            d_sigma = np.empty((batch_size, self.target_dim))
            for d, head in enumerate(self.heads):
                params = head.forward(h_t)
                mus[:, d] = params.mu
                sigmas[:, d] = params.sigma
                loss, g_mu, g_sigma = gaussian_nll(z[:, t, d], params.mu, params.sigma, weights=weight)
                total_loss += loss / n_terms
                d_mu[:, d] = g_mu / n_terms
                d_sigma[:, d] = g_sigma / n_terms
            head_grads.append((step, d_mu, d_sigma))

        if not with_backward:
            self._clear_all_caches()
            return float(total_loss)

        # heads backward (reverse order of forward calls)
        for step, d_mu, d_sigma in reversed(head_grads):
            dh = np.zeros((batch_size, self.d_model))
            for d in reversed(range(self.target_dim)):
                dh += self.heads[d].backward(d_mu[:, d], d_sigma[:, d])
            d_dec_out[:, step, :] += dh

        # decoder backward
        d_memory_total = np.zeros_like(memory)
        grad = d_dec_out
        for layer in reversed(self.decoder_layers):
            grad, d_memory = layer.backward(grad)
            d_memory_total += d_memory
        self.dec_proj.backward(grad)

        # encoder backward
        grad = d_memory_total
        for layer in reversed(self.encoder_layers):
            grad = layer.backward(grad)
        self.enc_proj.backward(grad)
        return float(total_loss)

    def loss_and_backward(self, batch: Dict[str, np.ndarray]) -> float:
        return self._forward_loss(batch, with_backward=True)

    def validation_loss(self, batch: Dict[str, np.ndarray]) -> float:
        return self._forward_loss(batch, with_backward=False)

    # ------------------------------------------------------------------
    def forecast_samples(
        self,
        history_target: np.ndarray,
        history_covariates: np.ndarray,
        future_covariates: np.ndarray,
        n_samples: int = 100,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Monte-Carlo forecast; same contract as ``RankSeqModel.forecast_samples``."""
        rng = rng or self.rng
        history_target = np.asarray(history_target, dtype=np.float64)
        if history_target.ndim == 1:
            history_target = history_target[:, None]
        history_covariates = np.asarray(history_covariates, dtype=np.float64)
        future_covariates = np.asarray(future_covariates, dtype=np.float64)
        horizon = future_covariates.shape[0]
        l0 = history_target.shape[0]

        was_training = self.training
        self.eval()
        scale = np.abs(history_target).mean(axis=0) + 1.0
        z_hist = history_target / scale

        enc_tokens = np.concatenate([z_hist[0 : l0 - 1], history_covariates[1:l0]], axis=1)
        enc_tokens = np.tile(enc_tokens[None, :, :], (n_samples, 1, 1))
        memory = self._encode(enc_tokens)
        self._clear_all_caches_keep_none()

        samples = np.empty((n_samples, horizon), dtype=np.float64)
        z_generated = [np.tile(z_hist[-1][None, :], (n_samples, 1))]
        for h in range(horizon):
            # decoder tokens built from the last observed value + samples so far
            tokens = []
            for step in range(h + 1):
                cov = np.tile(future_covariates[step][None, :], (n_samples, 1))
                tokens.append(np.concatenate([z_generated[step], cov], axis=1))
            dec_tokens = np.stack(tokens, axis=1)
            dec_out = self._decode(dec_tokens, memory)
            h_last = dec_out[:, -1, :]
            z_next = np.empty((n_samples, self.target_dim))
            for d, head in enumerate(self.heads):
                params = head.forward(h_last)
                z_next[:, d] = params.mu + params.sigma * rng.standard_normal(n_samples)
            self._clear_all_caches_keep_none()
            samples[:, h] = z_next[:, 0] * scale[0]
            z_generated.append(z_next)
            # re-encode is not needed; memory reused
        self.train(was_training)
        return samples

    def _clear_all_caches_keep_none(self) -> None:
        self._clear_all_caches()
