"""DeepAR-style autoregressive LSTM encoder-decoder (the RankModel).

This is the sequence backbone shared by the DeepAR baseline and every
RankNet variant (Fig. 5(c)).  At each lap the network receives the previous
(scaled) target value and the current covariates, updates a stacked-LSTM
state and emits the parameters of a Gaussian predictive distribution:

    h_t           = LSTM(h_{t-1}, [z_{t-1}, x_t])
    (mu_t, sig_t) = GaussianOutput(h_t)

Training (Algorithm 1) maximises the log-likelihood of the observed targets
over the decoder steps with optional per-instance weights; forecasting
(Algorithm 2) feeds Monte-Carlo samples back into the recurrence.

Training runs on the fused full-sequence engine: one
``forward_sequence`` pass through the recurrent stack (all input
projections batched into one GEMM per layer), one fused
:class:`~repro.nn.layers.MultiGaussianOutput` head projection over the
whole decoder block, one vectorised :func:`~repro.nn.losses.
gaussian_nll_seq` evaluation, and one ``backward_sequence`` BPTT sweep.
The original stepwise path is kept as ``_forward_loss_stepwise`` — it is
the reference implementation the fused path is gradient-checked and
benchmarked against (``benchmarks/test_bench_training.py``).

Targets may be multivariate (``target_dim > 1``): the RankNet-Joint ablation
models ``[Rank, LapStatus, TrackStatus]`` jointly through one fused Gaussian
head covering every dimension.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...data.scaling import MeanScaler
from ...nn import Module, MultiGaussianOutput, StackedGRU, StackedLSTM
from ...nn.losses import gaussian_nll_seq
from ...nn.precision import normalize_precision
from ...serving.engine import FleetForecaster
from ...serving.requests import ForecastRequest

__all__ = ["RankSeqModel"]


class RankSeqModel(Module):
    """Probabilistic recurrent encoder-decoder over rank windows.

    ``backbone`` selects the recurrent stack: ``"lstm"`` (the paper's
    default) or ``"gru"`` (lighter-weight, one state vector per layer).
    Both expose the same step API, so training and the fleet inference
    engine treat them identically.
    """

    def __init__(
        self,
        num_covariates: int,
        hidden_dim: int = 40,
        num_layers: int = 2,
        target_dim: int = 1,
        encoder_length: int = 60,
        decoder_length: int = 2,
        dropout: float = 0.0,
        backbone: str = "lstm",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if target_dim < 1:
            raise ValueError("target_dim must be >= 1")
        if backbone not in ("lstm", "gru"):
            raise ValueError(f"backbone must be 'lstm' or 'gru', got {backbone!r}")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.num_covariates = int(num_covariates)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        self.target_dim = int(target_dim)
        self.encoder_length = int(encoder_length)
        self.decoder_length = int(decoder_length)
        self.backbone = backbone
        self.input_dim = self.target_dim + self.num_covariates
        if backbone == "gru":
            if dropout > 0.0:
                raise ValueError("the GRU stack has no inter-layer dropout; use backbone='lstm'")
            self.lstm = StackedGRU(
                input_dim=self.input_dim,
                hidden_dim=hidden_dim,
                num_layers=num_layers,
                rng=rng,
            )
        else:
            self.lstm = StackedLSTM(
                input_dim=self.input_dim,
                hidden_dim=hidden_dim,
                num_layers=num_layers,
                dropout=dropout,
                rng=rng,
            )
        self.head = MultiGaussianOutput(hidden_dim, target_dim, rng=rng, name="head")
        self.scaler = MeanScaler()
        self.rng = rng
        self._fleet_engines: Dict[str, "FleetForecaster"] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _prepare_targets(self, target: np.ndarray) -> np.ndarray:
        """Ensure targets have shape ``(B, T, target_dim)``."""
        target = np.asarray(target, dtype=np.float64)
        if target.ndim == 2:
            target = target[..., None]
        if target.shape[-1] != self.target_dim:
            raise ValueError(
                f"expected target_dim={self.target_dim}, got {target.shape[-1]}"
            )
        return target

    def _scale_factors(self, target: np.ndarray) -> np.ndarray:
        """Per-window, per-dimension scale from the encoder span: ``(B, target_dim)``."""
        enc = target[:, : self.encoder_length, :]
        return np.abs(enc).mean(axis=1) + 1.0

    def _check_batch(self, batch: Dict[str, np.ndarray]):
        target = self._prepare_targets(batch["target"])
        covariates = np.asarray(batch["covariates"], dtype=np.float64)
        weight = np.asarray(batch.get("weight", np.ones(target.shape[0])), dtype=np.float64)
        if covariates.shape[-1] != self.num_covariates:
            raise ValueError(
                f"expected {self.num_covariates} covariates, got {covariates.shape[-1]}"
            )
        return target, covariates, weight

    # ------------------------------------------------------------------
    # training (Algorithm 1) — fused full-sequence engine
    # ------------------------------------------------------------------
    def _forward_loss(
        self, batch: Dict[str, np.ndarray], with_backward: bool
    ) -> float:
        """Teacher-forced loss (and BPTT) via the fused sequence path.

        Forward: one ``forward_sequence`` through the stack, one fused head
        projection over the whole decoder block, one vectorised NLL.  With
        ``with_backward=False`` (validation) no BPTT caches are built at
        all.  Produces the same loss and parameter gradients as
        :meth:`_forward_loss_stepwise` to well below 1e-10.
        """
        target, covariates, weight = self._check_batch(batch)
        batch_size, total_len, _ = target.shape
        scale = self._scale_factors(target)  # (B, D)
        z = target / scale[:, None, :]

        # step t consumes [z_{t-1}, x_t]; build all T-1 inputs in one block
        x = np.concatenate([z[:, :-1, :], covariates[:, 1:, :]], axis=2)
        h_seq, _ = self.lstm.forward_sequence(x, with_cache=with_backward)

        decoder_start = max(total_len - self.decoder_length, 1)
        j0 = decoder_start - 1  # h_seq[:, j] is the hidden state of step t = j + 1
        mu, sigma = self.head.forward(h_seq[:, j0:, :], with_cache=with_backward)
        loss, d_mu, d_sigma = gaussian_nll_seq(
            z[:, decoder_start:, :], mu, sigma, weights=weight
        )
        if not with_backward:
            return float(loss)

        dh_dec = self.head.backward(d_mu, d_sigma)  # (B, K, H)
        d_outputs = np.zeros((batch_size, total_len - 1, self.hidden_dim))
        d_outputs[:, j0:, :] = dh_dec
        self.lstm.backward_sequence(d_outputs)
        return float(loss)

    # ------------------------------------------------------------------
    # stepwise reference path (kept for gradient checks and benchmarks)
    # ------------------------------------------------------------------
    def _forward_loss_stepwise(
        self, batch: Dict[str, np.ndarray], with_backward: bool
    ) -> float:
        """Original one-lap-at-a-time training path over the step API."""
        target, covariates, weight = self._check_batch(batch)
        batch_size, total_len, _ = target.shape
        scale = self._scale_factors(target)  # (B, D)
        z = target / scale[:, None, :]

        states = self.lstm.zero_state(batch_size)
        decoder_start = total_len - self.decoder_length
        step_params: Dict[int, tuple] = {}  # t -> (mu (B,D), sigma (B,D))
        for t in range(1, total_len):
            x_t = np.concatenate([z[:, t - 1, :], covariates[:, t, :]], axis=1)
            h_t, states = self.lstm.step(x_t, states)
            if t >= decoder_start:
                step_params[t] = self.head.forward(h_t)

        # loss over decoder steps, averaged over (instances x steps x dims)
        total_loss = 0.0
        grads: Dict[int, tuple] = {}
        steps = sorted(step_params)
        for t in steps:
            mus, sigmas = step_params[t]
            z_t = z[:, t, :][:, None, :]
            loss, d_mu, d_sigma = gaussian_nll_seq(
                z_t, mus[:, None, :], sigmas[:, None, :], weights=weight
            )
            total_loss += loss / len(steps)
            grads[t] = (d_mu[:, 0, :] / len(steps), d_sigma[:, 0, :] / len(steps))

        if not with_backward:
            self.lstm.clear_cache()
            self.head.clear_cache()
            return float(total_loss)

        # backward pass: heads (reverse order), then BPTT through the stack
        dh_by_step: Dict[int, np.ndarray] = {}
        for t in reversed(steps):
            d_mu, d_sigma = grads[t]
            dh_by_step[t] = self.head.backward(d_mu, d_sigma)

        dstates = None
        for t in reversed(range(1, total_len)):
            dh_top = dh_by_step.get(t, np.zeros((batch_size, self.hidden_dim)))
            _, dstates = self.lstm.step_backward(dh_top, dstates)
        return float(total_loss)

    def loss_and_backward(self, batch: Dict[str, np.ndarray]) -> float:
        return self._forward_loss(batch, with_backward=True)

    def validation_loss(self, batch: Dict[str, np.ndarray]) -> float:
        """Forward-only loss on the cache-free path (no BPTT tensors)."""
        return self._forward_loss(batch, with_backward=False)

    # ------------------------------------------------------------------
    # forecasting (Algorithm 2)
    # ------------------------------------------------------------------
    def fleet_engine(self, precision: Optional[str] = None) -> "FleetForecaster":
        """Lazily constructed single-model fleet engine (shared weights).

        One engine is kept per precision tier; the float64 engine shares
        the training weights, lower tiers run a converted replica (see
        :mod:`repro.nn.precision`).
        """
        precision = normalize_precision(precision)
        engine = self._fleet_engines.get(precision)
        if engine is None:
            engine = FleetForecaster(self, mode="exact", precision=precision)
            self._fleet_engines[precision] = engine
        return engine

    def forecast_samples(
        self,
        history_target: np.ndarray,
        history_covariates: np.ndarray,
        future_covariates: np.ndarray,
        n_samples: int = 100,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` Monte-Carlo trajectories of the future target.

        Thin single-car wrapper over the fleet inference engine
        (:class:`repro.serving.FleetForecaster`): warm-up runs once on a
        single batch row (the teacher-forced state is deterministic, so it
        is replicated across samples), then the decode loop advances all
        ``n_samples`` trajectories together.  Forecasting many cars, plans
        or origins at once is much faster through
        ``fleet_engine().submit(...)`` — the results are byte-identical
        given the same per-request RNG streams.

        Parameters
        ----------
        history_target:
            ``(L0,)`` or ``(L0, target_dim)`` observed targets.
        history_covariates:
            ``(L0, num_covariates)`` covariates aligned with the history.
        future_covariates:
            ``(H, num_covariates)`` covariates for the forecast horizon.

        Returns
        -------
        samples:
            ``(n_samples, H)`` trajectories of the *first* target dimension
            (the rank), on the original scale.
        """
        request = ForecastRequest(
            history_target=history_target,
            history_covariates=history_covariates,
            future_covariates=future_covariates,
            n_samples=n_samples,
            rng=rng if rng is not None else self.rng,
        )
        return self.fleet_engine().submit([request])[0]
