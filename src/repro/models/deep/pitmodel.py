"""PitModel — probabilistic MLP forecasting the lap of the next pit stop.

This is the other half of the RankNet decomposition (Fig. 5(b)): instead of
asking the sequence model to learn the rare pit events jointly with the rank
dynamics, a small multilayer perceptron with a Gaussian output predicts
*how many laps until the car's next pit stop* from the pit-related features
(``CautionLaps``, ``PitAge``, track status, rank, total pit count).

During forecasting the sampled pit laps are converted into a future
race-status covariate plan (LapStatus spikes at the sampled pit laps,
TrackStatus assumed green, PitAge/CautionLaps rolled forward), which the
RankModel then consumes exactly like the oracle covariates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...data.features import CarFeatureSeries
from ...data.schema import ALL_COVARIATES
from ...data.stints import next_pit_targets
from ...nn import Adam, GaussianParams, MLP, Module, MultiGaussianOutput, clip_grad_norm
from ...nn.checkpoint import restore_rng, rng_state
from ...nn.losses import gaussian_nll
from ..base import ModelArtifact

__all__ = ["PitModelMLP", "plan_future_covariates"]


class _PitNet(Module):
    """MLP trunk + fused Gaussian head used internally by :class:`PitModelMLP`.

    The head is a :class:`~repro.nn.layers.MultiGaussianOutput` with one
    target dimension: mu and sigma come out of a single ``(H, 2)``
    projection instead of two separate ``(H, 1)`` heads (same training-path
    fusion as the sequence models).
    """

    def __init__(self, in_dim: int, hidden: Sequence[int], rng: np.random.Generator) -> None:
        super().__init__()
        self.trunk = MLP(in_dim, list(hidden), hidden[-1], activation="relu",
                         out_activation="relu", rng=rng)
        self.head = MultiGaussianOutput(hidden[-1], 1, rng=rng)

    def forward(self, x: np.ndarray, with_cache: bool = True) -> GaussianParams:
        h = self.trunk.forward(x)
        mu, sigma = self.head.forward(h, with_cache=with_cache)
        return GaussianParams(mu=mu[:, 0], sigma=sigma[:, 0])

    def backward(self, d_mu: np.ndarray, d_sigma: np.ndarray) -> None:
        dh = self.head.backward(d_mu[:, None], d_sigma[:, None])
        self.trunk.backward(dh)


class PitModelMLP:
    """Probabilistic next-pit-lap forecaster."""

    #: feature order produced by :func:`repro.data.stints.next_pit_targets`
    FEATURE_NAMES = ["caution_laps", "pit_age", "track_status", "rank", "total_pit_count"]

    def __init__(
        self,
        hidden: Sequence[int] = (32, 32),
        lr: float = 1e-2,
        epochs: int = 60,
        batch_size: int = 256,
        max_horizon: int = 60,
        seed: int = 0,
    ) -> None:
        self.hidden = tuple(hidden)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.max_horizon = int(max_horizon)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self.net = _PitNet(len(self.FEATURE_NAMES), self.hidden, self.rng)
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self.fitted_ = False
        self.training_loss_: List[float] = []

    # ------------------------------------------------------------------
    def _build_dataset(self, series_list: Sequence[CarFeatureSeries]) -> tuple:
        feats: List[np.ndarray] = []
        targets: List[float] = []
        for series in series_list:
            for inst in next_pit_targets(series, max_horizon=self.max_horizon):
                feats.append(inst["features"])
                targets.append(inst["target"])
        if not feats:
            raise ValueError("no pit-stop training instances found")
        return np.stack(feats), np.array(targets)

    def fit(self, series_list: Sequence[CarFeatureSeries]) -> "PitModelMLP":
        X, y = self._build_dataset(series_list)
        self._x_mean = X.mean(axis=0)
        self._x_std = np.where(X.std(axis=0) < 1e-9, 1.0, X.std(axis=0))
        Xs = (X - self._x_mean) / self._x_std
        n = Xs.shape[0]
        optimizer = Adam(self.net.parameters(), lr=self.lr)
        self.training_loss_ = []
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self.net.zero_grad()
                params = self.net.forward(Xs[idx])
                loss, d_mu, d_sigma = gaussian_nll(y[idx], params.mu, params.sigma)
                self.net.backward(d_mu, d_sigma)
                clip_grad_norm(optimizer.parameters, 10.0)
                optimizer.step()
                epoch_loss += loss
                batches += 1
            self.training_loss_.append(epoch_loss / max(batches, 1))
        self.fitted_ = True
        return self

    # ------------------------------------------------------------------
    # artifact protocol (mirrors RankForecaster's; also embeddable inside a
    # RankNet-MLP artifact through the *_parts methods)
    # ------------------------------------------------------------------
    def _artifact_config(self) -> dict:
        return {
            "hidden": list(self.hidden),
            "lr": self.lr,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "max_horizon": self.max_horizon,
            "seed": self.seed,
        }

    def _artifact_state(self):
        if not self.fitted_:
            raise RuntimeError("PitModel must be fit before creating an artifact")
        arrays = {f"net/{name}": value for name, value in self.net.state_dict().items()}
        arrays["x_mean"] = self._x_mean
        arrays["x_std"] = self._x_std
        return {"rng": rng_state(self.rng)}, arrays

    def _load_artifact_state(self, state: dict, arrays: dict) -> None:
        prefix = "net/"
        self.net.load_state_dict(
            {key[len(prefix) :]: value for key, value in arrays.items() if key.startswith(prefix)}
        )
        self._x_mean = np.asarray(arrays["x_mean"], dtype=np.float64)
        self._x_std = np.asarray(arrays["x_std"], dtype=np.float64)
        restore_rng(self.rng, state["rng"])
        self.fitted_ = True

    def to_artifact(self) -> ModelArtifact:
        state, arrays = self._artifact_state()
        return ModelArtifact(
            family=type(self).__name__,
            config=self._artifact_config(),
            state=state,
            arrays=arrays,
        )

    @classmethod
    def from_artifact(cls, artifact: ModelArtifact) -> "PitModelMLP":
        if artifact.family != cls.__name__:
            raise ValueError(
                f"artifact family {artifact.family!r} does not match {cls.__name__!r}"
            )
        return cls.from_artifact_parts(artifact.config, artifact.state, artifact.arrays)

    @classmethod
    def from_artifact_parts(cls, config: dict, state: dict, arrays: dict) -> "PitModelMLP":
        model = cls(**config)
        model._load_artifact_state(state, arrays)
        return model

    # ------------------------------------------------------------------
    def _features_at(self, series: CarFeatureSeries, origin: int) -> np.ndarray:
        return np.array(
            [
                series.covariate("caution_laps")[origin],
                series.covariate("pit_age")[origin],
                series.covariate("track_status")[origin],
                series.rank[origin],
                series.covariate("total_pit_count")[origin],
            ],
            dtype=np.float64,
        )

    def predict_distribution(self, features: np.ndarray):
        """Gaussian parameters of laps-to-next-pit for raw feature rows."""
        if not self.fitted_:
            raise RuntimeError("PitModel must be fit before predicting")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        Xs = (features - self._x_mean) / self._x_std
        # inference only: the head runs cache-free, the trunk caches are dropped
        params = self.net.forward(Xs, with_cache=False)
        for layer in self.net.trunk.layers:
            if hasattr(layer, "_cache"):
                layer._cache.clear()
        return params

    def sample_laps_to_pit(
        self, features: np.ndarray, n_samples: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Integer samples of laps until the next stop, clipped to ``[1, max_horizon]``."""
        rng = rng or self.rng
        params = self.predict_distribution(features)
        draws = params.mu[None, :] + params.sigma[None, :] * rng.standard_normal(
            (n_samples, params.mu.shape[0])
        )
        return np.clip(np.rint(draws), 1, self.max_horizon).astype(np.int64)

    def expected_laps_to_pit(self, series: CarFeatureSeries, origin: int) -> float:
        params = self.predict_distribution(self._features_at(series, origin))
        return float(params.mu[0])

    # ------------------------------------------------------------------
    def plan_covariates(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample one future covariate plan of shape ``(horizon, len(ALL_COVARIATES))``."""
        rng = rng or self.rng
        return plan_future_covariates(self, series, origin, horizon, rng)


def plan_future_covariates(
    pit_model: PitModelMLP,
    series: CarFeatureSeries,
    origin: int,
    horizon: int,
    rng: np.random.Generator,
    shift_lag: int = 2,
) -> np.ndarray:
    """Roll the race-status covariates forward using sampled pit stops.

    TrackStatus is assumed green for the whole horizon (as in Algorithm 2 of
    the paper: "set future TrackStatus to zero"); LapStatus spikes at the
    sampled pit laps; PitAge/CautionLaps evolve deterministically given the
    sampled pits; the race-level context features are unknown and set to 0.
    """
    plan = np.zeros((horizon, len(ALL_COVARIATES)), dtype=np.float64)
    idx = {name: ALL_COVARIATES.index(name) for name in ALL_COVARIATES}

    pit_age = float(series.covariate("pit_age")[origin])
    caution_laps = float(series.covariate("caution_laps")[origin])
    rank_now = float(series.rank[origin])

    # sample the lap of the next pit, then keep sampling stint lengths
    features = np.array([caution_laps, pit_age, 0.0, rank_now, 0.0])
    next_pit_offset = int(pit_model.sample_laps_to_pit(features, 1, rng=rng)[0, 0])
    pit_offsets: List[int] = []
    offset = next_pit_offset
    while offset <= horizon:
        pit_offsets.append(offset)
        # after a pit the age resets; sample the following stint length
        features = np.array([0.0, 0.0, 0.0, rank_now, 0.0])
        stint = int(pit_model.sample_laps_to_pit(features, 1, rng=rng)[0, 0])
        offset += max(stint, 1)

    lap_status = np.zeros(horizon)
    for off in pit_offsets:
        lap_status[off - 1] = 1.0

    age = pit_age
    for h in range(horizon):
        if lap_status[h] > 0.5:
            age = 0.0
        else:
            age += 1.0
        plan[h, idx["lap_status"]] = lap_status[h]
        plan[h, idx["track_status"]] = 0.0
        plan[h, idx["pit_age"]] = age
        plan[h, idx["caution_laps"]] = 0.0 if lap_status[: h + 1].any() else caution_laps
    # shift features describe the planned future status
    for h in range(horizon):
        src = h + shift_lag
        if src < horizon:
            plan[h, idx["shift_lap_status"]] = lap_status[src]
            plan[h, idx["shift_track_status"]] = 0.0
    return plan
