"""Deep probabilistic forecasters: DeepAR, RankNet (LSTM) and Transformer."""

from .pitmodel import PitModelMLP, plan_future_covariates
from .rankmodel import RankSeqModel
from .ranknet import (
    DeepARForecaster,
    DeepForecasterBase,
    RankNetForecaster,
    TransformerForecaster,
)
from .transformer import TransformerSeqModel

__all__ = [
    "PitModelMLP",
    "plan_future_covariates",
    "RankSeqModel",
    "DeepARForecaster",
    "DeepForecasterBase",
    "RankNetForecaster",
    "TransformerForecaster",
    "TransformerSeqModel",
]
