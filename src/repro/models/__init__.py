"""Forecasting models: baselines and the RankNet family.

The models follow the inventory of Table III in the paper:

==================  ==============  ===========  ======================
Model               Representation  Uncertainty  PitModel
==================  ==============  ===========  ======================
CurRank             no              no           no
RandomForest        no              no           no
SVM                 no              no           no
XGBoost             no              no           no
ARIMA               no              yes          no
DeepAR              yes             yes          no
RankNet-Joint       yes             yes          joint training
RankNet-MLP         yes             yes          decomposed (MLP)
RankNet-Oracle      yes             yes          ground truth
Transformer-*       yes             yes          oracle / MLP
==================  ==============  ===========  ======================
"""

from .arima import ArimaForecaster, ArimaModel
from .base import (
    ARTIFACT_SCHEMA_VERSION,
    DEFAULT_FIELD_SIZE,
    ModelArtifact,
    ProbabilisticForecast,
    RankForecaster,
    clip_rank,
)
from .currank import CurRankForecaster
from .deep import (
    DeepARForecaster,
    DeepForecasterBase,
    PitModelMLP,
    RankNetForecaster,
    RankSeqModel,
    TransformerForecaster,
    TransformerSeqModel,
    plan_future_covariates,
)
from .ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    PointwiseMLForecaster,
    RandomForestForecaster,
    RandomForestRegressor,
    SVR,
    SVRForecaster,
    XGBoostForecaster,
    build_pointwise_features,
    rbf_kernel,
)

#: every forecaster family implementing the artifact protocol, keyed by the
#: family name recorded in :class:`~repro.models.base.ModelArtifact.family`
ARTIFACT_FAMILIES = {
    cls.__name__: cls
    for cls in (
        CurRankForecaster,
        ArimaForecaster,
        RandomForestForecaster,
        SVRForecaster,
        XGBoostForecaster,
        DeepARForecaster,
        RankNetForecaster,
        TransformerForecaster,
        PitModelMLP,
    )
}


def from_artifact(artifact: ModelArtifact):
    """Rebuild a fitted model from any family's :class:`ModelArtifact`."""
    try:
        cls = ARTIFACT_FAMILIES[artifact.family]
    except KeyError as exc:
        raise KeyError(
            f"unknown artifact family {artifact.family!r}; "
            f"known: {sorted(ARTIFACT_FAMILIES)}"
        ) from exc
    return cls.from_artifact(artifact)


__all__ = [
    "ARTIFACT_FAMILIES",
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_FIELD_SIZE",
    "ModelArtifact",
    "from_artifact",
    "ArimaForecaster",
    "ArimaModel",
    "ProbabilisticForecast",
    "RankForecaster",
    "clip_rank",
    "CurRankForecaster",
    "DeepARForecaster",
    "DeepForecasterBase",
    "PitModelMLP",
    "RankNetForecaster",
    "RankSeqModel",
    "TransformerForecaster",
    "TransformerSeqModel",
    "plan_future_covariates",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "PointwiseMLForecaster",
    "RandomForestForecaster",
    "RandomForestRegressor",
    "SVR",
    "SVRForecaster",
    "XGBoostForecaster",
    "build_pointwise_features",
    "rbf_kernel",
]
