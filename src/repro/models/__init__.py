"""Forecasting models: baselines and the RankNet family.

The models follow the inventory of Table III in the paper:

==================  ==============  ===========  ======================
Model               Representation  Uncertainty  PitModel
==================  ==============  ===========  ======================
CurRank             no              no           no
RandomForest        no              no           no
SVM                 no              no           no
XGBoost             no              no           no
ARIMA               no              yes          no
DeepAR              yes             yes          no
RankNet-Joint       yes             yes          joint training
RankNet-MLP         yes             yes          decomposed (MLP)
RankNet-Oracle      yes             yes          ground truth
Transformer-*       yes             yes          oracle / MLP
==================  ==============  ===========  ======================
"""

from .arima import ArimaForecaster, ArimaModel
from .base import ProbabilisticForecast, RankForecaster, clip_rank
from .currank import CurRankForecaster
from .deep import (
    DeepARForecaster,
    DeepForecasterBase,
    PitModelMLP,
    RankNetForecaster,
    RankSeqModel,
    TransformerForecaster,
    TransformerSeqModel,
    plan_future_covariates,
)
from .ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    PointwiseMLForecaster,
    RandomForestForecaster,
    RandomForestRegressor,
    SVR,
    SVRForecaster,
    XGBoostForecaster,
    build_pointwise_features,
    rbf_kernel,
)

__all__ = [
    "ArimaForecaster",
    "ArimaModel",
    "ProbabilisticForecast",
    "RankForecaster",
    "clip_rank",
    "CurRankForecaster",
    "DeepARForecaster",
    "DeepForecasterBase",
    "PitModelMLP",
    "RankNetForecaster",
    "RankSeqModel",
    "TransformerForecaster",
    "TransformerSeqModel",
    "plan_future_covariates",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "PointwiseMLForecaster",
    "RandomForestForecaster",
    "RandomForestRegressor",
    "SVR",
    "SVRForecaster",
    "XGBoostForecaster",
    "build_pointwise_features",
    "rbf_kernel",
]
