"""CurRank — the naive persistence baseline.

CurRank assumes the rank positions will not change in the future: the
forecast for every future lap is the currently observed rank.  Despite its
simplicity it is a strong baseline for short horizons (Table V: 73% Top1Acc
and 1.16 MAE on Indy500-2019 two-lap forecasting) because ranks rarely move
outside of pit windows.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.features import CarFeatureSeries
from .base import ProbabilisticForecast, RankForecaster

__all__ = ["CurRankForecaster"]


class CurRankForecaster(RankForecaster):
    """Persistence forecaster: future rank equals the last observed rank."""

    name = "CurRank"
    supports_uncertainty = False
    uses_race_status = False

    def fit(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
    ) -> "CurRankForecaster":
        return self

    def _artifact_config(self) -> dict:
        return {}

    def forecast(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        n_samples: int = 100,
    ) -> ProbabilisticForecast:
        if origin < 0 or origin >= len(series):
            raise IndexError(f"origin {origin} out of range for series of length {len(series)}")
        current = float(series.rank[origin])
        samples = np.full((n_samples, horizon), current, dtype=np.float64)
        return ProbabilisticForecast(
            samples=samples, origin=origin, race_id=series.race_id, car_id=series.car_id
        )
