"""ARIMA(p, d, q) forecaster.

The statistical baseline of the paper.  The implementation fits each car's
rank series independently at forecast time (ARIMA has no cross-series
learning — Table III lists it with "Representation Learning: N"), using the
Hannan–Rissanen two-stage procedure:

1. fit a long autoregression by ordinary least squares to obtain residual
   estimates;
2. regress the (differenced) series on its own lags and the lagged
   residuals to obtain the AR and MA coefficients jointly.

Multi-step forecasts are produced recursively; forecast uncertainty grows
with the horizon through the psi-weight recursion, which yields the
Gaussian predictive distribution used for the probabilistic metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.features import CarFeatureSeries
from ..nn.checkpoint import restore_rng, rng_state
from .base import ProbabilisticForecast, RankForecaster, clip_rank

__all__ = ["ArimaModel", "ArimaForecaster"]


def _difference(x: np.ndarray, d: int) -> np.ndarray:
    for _ in range(d):
        x = np.diff(x)
    return x


def _lag_matrix(x: np.ndarray, lags: int) -> Tuple[np.ndarray, np.ndarray]:
    """Design matrix of ``lags`` lagged values and the aligned targets."""
    if lags < 1:
        raise ValueError("lags must be >= 1")
    n = x.size - lags
    if n <= 0:
        return np.zeros((0, lags)), np.zeros(0)
    cols = [x[lags - k - 1 : lags - k - 1 + n] for k in range(lags)]
    return np.column_stack(cols), x[lags:]


@dataclass
class ArimaModel:
    """A fitted ARIMA(p, d, q) model for a single series."""

    p: int
    d: int
    q: int
    ar: np.ndarray
    ma: np.ndarray
    intercept: float
    sigma2: float
    history: np.ndarray
    residuals: np.ndarray

    def forecast(self, horizon: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(mean, std)`` arrays of length ``horizon`` on the original scale."""
        diffed = _difference(self.history, self.d)
        values = list(diffed)
        residuals = list(self.residuals)
        point_diff = []
        for _ in range(horizon):
            ar_part = sum(
                self.ar[k] * values[-k - 1] if len(values) > k else 0.0
                for k in range(self.p)
            )
            ma_part = sum(
                self.ma[k] * residuals[-k - 1] if len(residuals) > k else 0.0
                for k in range(self.q)
            )
            pred = self.intercept + ar_part + ma_part
            point_diff.append(pred)
            values.append(pred)
            residuals.append(0.0)

        # psi weights for the forecast-error variance of the ARMA part
        psi = np.zeros(horizon)
        psi_prev = [1.0]
        for h in range(horizon):
            if h == 0:
                psi[h] = 1.0
            else:
                val = self.ma[h - 1] if h - 1 < self.q else 0.0
                for k in range(self.p):
                    if h - 1 - k >= 0 and h - 1 - k < len(psi_prev):
                        val += self.ar[k] * psi_prev[h - 1 - k]
                psi[h] = val
            psi_prev = list(psi[: h + 1])
        var_diff = self.sigma2 * np.cumsum(psi ** 2)

        # integrate the differencing back to the level of the original series
        mean = np.array(point_diff, dtype=np.float64)
        std = np.sqrt(var_diff)
        last_values = self.history.copy()
        if self.d > 0:
            level = []
            prev = float(last_values[-1])
            for h in range(horizon):
                prev = prev + mean[h]
                level.append(prev)
            mean = np.array(level)
            # crude variance integration for d=1: errors accumulate
            std = np.sqrt(np.cumsum(var_diff))
        return mean, std


class ArimaForecaster(RankForecaster):
    """Per-series ARIMA baseline with Gaussian predictive intervals."""

    name = "ARIMA"
    supports_uncertainty = True
    uses_race_status = False

    def __init__(
        self,
        order: Tuple[int, int, int] = (2, 1, 1),
        min_history: int = 12,
        max_history: int = 120,
        seed: int = 0,
    ) -> None:
        self.p, self.d, self.q = order
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ValueError("ARIMA order components must be non-negative")
        self.min_history = int(min_history)
        self.max_history = int(max_history)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # artifact protocol: ARIMA has no global fitted state, but the forecast
    # noise stream must round-trip for byte-identical samples
    # ------------------------------------------------------------------
    def _artifact_config(self) -> dict:
        return {
            "order": [self.p, self.d, self.q],
            "min_history": self.min_history,
            "max_history": self.max_history,
            "seed": self.seed,
        }

    @classmethod
    def _config_from_artifact(cls, config: dict) -> dict:
        config = dict(config)
        config["order"] = tuple(config["order"])
        return config

    def _artifact_state(self):
        return {"rng": rng_state(self.rng)}, {}

    def _load_artifact_state(self, state, arrays) -> None:
        restore_rng(self.rng, state["rng"])

    # ------------------------------------------------------------------
    def fit(
        self,
        train_series: Sequence[CarFeatureSeries],
        val_series: Optional[Sequence[CarFeatureSeries]] = None,
    ) -> "ArimaForecaster":
        # ARIMA is fit per series at forecast time; nothing to learn globally.
        return self

    # ------------------------------------------------------------------
    def fit_series(self, history: np.ndarray) -> ArimaModel:
        """Fit ARIMA(p, d, q) to one history window via Hannan–Rissanen."""
        history = np.asarray(history, dtype=np.float64)
        diffed = _difference(history, self.d)
        if diffed.size < max(self.min_history, self.p + self.q + 2):
            # not enough data: fall back to a random-walk-with-drift model
            sigma2 = float(np.var(np.diff(history))) if history.size > 2 else 1.0
            return ArimaModel(
                p=0, d=self.d, q=0, ar=np.zeros(0), ma=np.zeros(0),
                intercept=float(np.mean(diffed)) if diffed.size else 0.0,
                sigma2=max(sigma2, 1e-6), history=history, residuals=np.zeros(1),
            )

        mean = diffed.mean()
        centred = diffed - mean

        # stage 1: long AR to estimate the innovations
        long_order = min(max(self.p + self.q + 2, 4), centred.size // 2)
        X1, y1 = _lag_matrix(centred, long_order)
        if X1.shape[0] == 0:
            coef1 = np.zeros(long_order)
        else:
            coef1, *_ = np.linalg.lstsq(X1, y1, rcond=None)
        fitted1 = X1 @ coef1 if X1.shape[0] else np.zeros(0)
        resid = np.concatenate([np.zeros(long_order), y1 - fitted1]) if X1.shape[0] else np.zeros_like(centred)

        # stage 2: regression on AR lags and lagged residuals
        max_lag = max(self.p, self.q)
        n = centred.size - max_lag
        if n <= self.p + self.q:
            ar = np.zeros(self.p)
            ma = np.zeros(self.q)
            resid_final = centred
        else:
            cols = []
            for k in range(1, self.p + 1):
                cols.append(centred[max_lag - k : max_lag - k + n])
            for k in range(1, self.q + 1):
                cols.append(resid[max_lag - k : max_lag - k + n])
            X2 = np.column_stack(cols) if cols else np.zeros((n, 0))
            y2 = centred[max_lag:]
            coef2, *_ = np.linalg.lstsq(X2, y2, rcond=None) if cols else (np.zeros(0),)
            ar = coef2[: self.p] if self.p else np.zeros(0)
            ma = coef2[self.p :] if self.q else np.zeros(0)
            resid_final = y2 - (X2 @ coef2 if cols else 0.0)
        # keep the AR polynomial away from the unit circle for stable forecasts
        ar = np.clip(ar, -0.98, 0.98)
        sigma2 = float(np.var(resid_final)) if np.size(resid_final) else 1.0
        return ArimaModel(
            p=self.p, d=self.d, q=self.q, ar=np.asarray(ar), ma=np.asarray(ma),
            intercept=float(mean * (1.0 - np.sum(ar))),
            sigma2=max(sigma2, 1e-8), history=history,
            residuals=np.asarray(resid_final[-max(self.q, 1):]) if np.size(resid_final) else np.zeros(1),
        )

    # ------------------------------------------------------------------
    def forecast(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        n_samples: int = 100,
    ) -> ProbabilisticForecast:
        if origin < 1 or origin >= len(series):
            raise IndexError(f"origin {origin} out of range")
        start = max(0, origin + 1 - self.max_history)
        history = series.rank[start : origin + 1]
        model = self.fit_series(history)
        mean, std = model.forecast(horizon)
        std = np.maximum(std, 1e-3)
        eps = self.rng.standard_normal((n_samples, horizon))
        samples = clip_rank(mean[None, :] + std[None, :] * eps)
        return ProbabilisticForecast(
            samples=samples, origin=origin, race_id=series.race_id, car_id=series.car_id
        )
