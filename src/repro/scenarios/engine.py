"""The scenario execution engine.

:class:`ScenarioEngine` turns a compiled :class:`~repro.scenarios.spec.ScenarioSpec`
into simulated races and (optionally) fleet forecast passes, producing one
:class:`ScenarioRaceResult` per race job and a closing
:class:`ScenarioSummary`.  It is deliberately transport-agnostic: the
in-process runner wires ``submit`` to
:meth:`~repro.serving.service.ForecastService.submit` while the HTTP
gateway wires it to the micro-batch scheduler, and because every random
stream is derived from the request seed with
:func:`~repro.scenarios.spec.derive_seed` and the fleet kernels are
batch-size invariant, both paths produce byte-identical result documents.

Results are plain JSON-safe dictionaries end to end (``to_doc`` /
``from_doc``): ints, strings, and Python floats — which round-trip
exactly through JSON — so "byte-identical" is checkable by comparing the
serialized documents.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..simulation.caution import CautionGenerator
from ..simulation.driver import DriverProfile, generate_field
from ..simulation.race import RaceSimulator
from ..simulation.telemetry import RaceTelemetry
from ..simulation.track import track_for_year
from .spec import (
    RaceJob,
    ScenarioError,
    ScenarioSpec,
    championship_points,
    derive_rng,
    derive_seed,
    point_label,
)

__all__ = ["ScenarioRaceResult", "ScenarioSummary", "ScenarioEngine", "finishing_order"]


# ----------------------------------------------------------------------
# result documents
# ----------------------------------------------------------------------
@dataclass
class ScenarioRaceResult:
    """Outcome of one simulated race job (JSON-safe fields only)."""

    scenario: str
    label: str
    event: str
    year: int
    replica: int
    params: Dict[str, object]
    seed: int
    winner: int
    podium: List[int]
    laps: int
    starters: int
    finishers: int
    caution_laps: int
    pit_stops: int
    lead_changes: int
    winner_margin_s: float
    points: Dict[int, int]
    forecast: Optional[dict] = None

    @property
    def point_label(self) -> str:
        return point_label(self.params)

    def to_doc(self) -> dict:
        document = asdict(self)
        # JSON objects key on strings; keep the document canonical
        document["points"] = {str(car): pts for car, pts in self.points.items()}
        return document

    @classmethod
    def from_doc(cls, document: dict) -> "ScenarioRaceResult":
        document = dict(document)
        document["points"] = {int(car): int(pts) for car, pts in document["points"].items()}
        return cls(**document)


@dataclass
class ScenarioSummary:
    """Scenario-level aggregation: per-grid-point rows, season standings."""

    scenario: str
    kind: str
    races: int
    replicas: int
    rows: List[dict]
    standings: Optional[List[dict]] = None
    champion_odds: Optional[Dict[str, float]] = None
    forecast_mae: Optional[float] = None

    def to_doc(self) -> dict:
        return asdict(self)

    @classmethod
    def from_doc(cls, document: dict) -> "ScenarioSummary":
        return cls(**dict(document))


def finishing_order(race: RaceTelemetry) -> List[int]:
    """Final classification: finishers by rank, then retirees by distance."""
    final_lap = race.num_laps
    ranks = race.ranks_at_lap(final_lap)
    order = sorted(ranks, key=lambda car: ranks[car])
    retired = []
    for car in race.car_ids():
        if car in ranks:
            continue
        laps = race.car_laps(car)
        retired.append((int(laps.laps[-1]), -int(laps.rank[-1]), car))
    # more laps completed classifies higher; ties break on last held rank
    retired.sort(reverse=True)
    return order + [car for _laps, _rank, car in retired]


def _lead_changes(race: RaceTelemetry) -> int:
    leaders = [
        int(race.car_id[(race.lap == lap) & (race.rank == 1)][0])
        for lap in range(1, race.num_laps + 1)
    ]
    return sum(1 for prev, cur in zip(leaders, leaders[1:]) if prev != cur)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class ScenarioEngine:
    """Runs scenario specs; forecast passes go through an injected submitter.

    Parameters
    ----------
    resolve:
        ``resolve(model_name) -> forecaster`` for forecast-scoring
        scenarios (e.g. ``service.load(name).forecaster``).  ``None``
        refuses forecast blocks.
    submit:
        ``submit([NamedForecastRequest, ...]) -> [samples | Exception]``;
        the in-process service's ``submit`` or the gateway scheduler's
        ``submit_settled`` — byte-identical either way.
    """

    def __init__(
        self,
        resolve: Optional[Callable[[str], object]] = None,
        submit: Optional[Callable[[Sequence], List]] = None,
    ) -> None:
        self._resolve = resolve
        self._submit = submit

    @classmethod
    def from_service(cls, service) -> "ScenarioEngine":
        """An engine over an in-process :class:`~repro.serving.ForecastService`."""
        return cls(
            resolve=lambda name: service.load(name).forecaster,
            submit=service.submit,
        )

    # ------------------------------------------------------------------
    def run_iter(
        self, spec: ScenarioSpec, seed: int
    ) -> Iterator[Union[ScenarioRaceResult, ScenarioSummary]]:
        """Yield one result per race job as it completes, then the summary."""
        results: List[ScenarioRaceResult] = []
        for job in spec.jobs():
            result = self.run_job(spec, job, seed)
            results.append(result)
            yield result
        yield self.summarize(spec, results)

    def run(self, spec: ScenarioSpec, seed: int) -> Tuple[List[ScenarioRaceResult], ScenarioSummary]:
        """Run the whole scenario; returns ``(race results, summary)``."""
        items = list(self.run_iter(spec, seed))
        return list(items[:-1]), items[-1]

    # ------------------------------------------------------------------
    # one race job
    # ------------------------------------------------------------------
    def run_job(self, spec: ScenarioSpec, job: RaceJob, seed: int) -> ScenarioRaceResult:
        race, race_seed = self._simulate(spec, job, seed)
        order = finishing_order(race)
        forecast = None
        if spec.forecast is not None:
            forecast = self._score_forecast(spec, job, seed, race)
        runner_up = race.ranks_at_lap(race.num_laps)
        margin = 0.0
        if len(runner_up) > 1:
            final = race.lap == race.num_laps
            margin = float(np.sort(race.time_behind_leader[final])[1])
        return ScenarioRaceResult(
            scenario=spec.name,
            label=job.label,
            event=job.event,
            year=job.year,
            replica=job.replica,
            params=dict(job.params),
            seed=race_seed,
            winner=race.winner(),
            podium=[int(car) for car in order[:3]],
            laps=race.num_laps,
            starters=len(race.car_ids()),
            finishers=len(race.finishers()),
            caution_laps=int(np.unique(race.lap[race.is_caution]).size),
            pit_stops=int(race.is_pit.sum()),
            lead_changes=_lead_changes(race),
            winner_margin_s=margin,
            points=championship_points(order),
            forecast=forecast,
        )

    def _simulate(self, spec: ScenarioSpec, job: RaceJob, seed: int) -> Tuple[RaceTelemetry, int]:
        params = job.params
        track = track_for_year(job.event, job.year)
        overrides = {
            key[len("track_"):]: value
            for key, value in params.items()
            if key.startswith("track_")
        }
        if overrides:
            track = replace(
                track,
                **{
                    key: (int(value) if key in ("total_laps", "num_cars") else float(value))
                    for key, value in overrides.items()
                },
            )
        drivers = self._build_field(spec, job, seed, track.num_cars)
        race_seed = derive_seed(seed, spec.name, job.label, "race")
        rng = np.random.default_rng(race_seed)
        caution_kwargs = {}
        if "caution_hazard_scale" in params:
            caution_kwargs["hazard_per_lap"] = 0.018 * float(params["caution_hazard_scale"])
        if "caution_mean_duration" in params:
            caution_kwargs["mean_duration"] = float(params["caution_mean_duration"])
        if "caution_retirement_prob" in params:
            caution_kwargs["retirement_prob"] = float(params["caution_retirement_prob"])
        pit_kwargs = {}
        if "pit_unscheduled_prob" in params:
            pit_kwargs["unscheduled_prob"] = float(params["pit_unscheduled_prob"])
        if "pit_caution_pit_scale" in params:
            pit_kwargs["caution_pit_scale"] = float(params["pit_caution_pit_scale"])
        simulator = RaceSimulator(
            track,
            event=job.event,
            year=job.year,
            drivers=drivers,
            seed=rng,
            caution_generator=CautionGenerator(track, rng, **caution_kwargs),
            pit_kwargs=pit_kwargs or None,
        )
        return simulator.run(), race_seed

    def _build_field(
        self, spec: ScenarioSpec, job: RaceJob, seed: int, num_cars: int
    ) -> List[DriverProfile]:
        params = job.params
        field_rng = derive_rng(seed, spec.name, job.label, "field")
        drivers = generate_field(num_cars, field_rng)
        degradation = float(params.get("driver_degradation", 0.0))
        delta = params.get("driver_skill_delta")
        target = int(params.get("driver_car_id", 1))
        shift = float(params.get("pit_aggression_shift", 0.0))
        perturbed: List[DriverProfile] = []
        for driver in drivers:
            skill = driver.skill + degradation
            if delta is not None and driver.car_id == target:
                skill += float(delta)
            aggression = float(np.clip(driver.aggression + shift, 0.05, 0.95))
            perturbed.append(replace(driver, skill=float(skill), aggression=aggression))
        return perturbed

    # ------------------------------------------------------------------
    # forecast scoring
    # ------------------------------------------------------------------
    def _score_forecast(
        self, spec: ScenarioSpec, job: RaceJob, seed: int, race: RaceTelemetry
    ) -> dict:
        if self._resolve is None or self._submit is None:
            raise ScenarioError(
                f"scenario {spec.name!r} scores model {spec.forecast.model!r} but this "
                "engine has no forecast backend (pass --store to repro-scenarios, or "
                "submit the scenario to a gateway)"
            )
        # imported here: the feature pipeline must not burden sim-only runs
        from ..data.features import build_race_features
        from ..serving.requests import ForecastRequest, NamedForecastRequest

        fc = spec.forecast
        forecaster = self._resolve(fc.model)
        for method in ("_history_target", "_history_covariates", "_future_covariates"):
            if not hasattr(forecaster, method):
                raise ScenarioError(
                    f"model {fc.model!r} cannot serve scenario forecasts "
                    "(needs a fleet-batched deep forecaster)"
                )
        series_list = build_race_features(race)
        requests: List[NamedForecastRequest] = []
        meta: List[Tuple[int, object]] = []
        for origin in fc.origins:
            for series in series_list:
                if origin < max(fc.min_history, 1) or origin + fc.horizon > len(series):
                    continue
                request_seed = derive_seed(
                    seed, spec.name, job.label, "forecast", origin, int(series.car_id)
                )
                requests.append(
                    NamedForecastRequest(
                        model=fc.model,
                        precision=fc.precision,
                        request=ForecastRequest(
                            history_target=forecaster._history_target(series, origin),
                            history_covariates=forecaster._history_covariates(series, origin),
                            future_covariates=forecaster._future_covariates(
                                series, origin, fc.horizon
                            ),
                            n_samples=fc.n_samples,
                            rng=request_seed,
                            key=(series.race_id, int(series.car_id)),
                            origin=origin,
                        ),
                    )
                )
                meta.append((origin, series))
        outcomes = self._submit(requests)
        per_origin: Dict[int, List[float]] = {}
        for (origin, series), outcome in zip(meta, outcomes):
            if isinstance(outcome, BaseException):
                raise outcome
            predicted = float(np.mean(np.asarray(outcome)[:, -1]))
            actual = float(series.rank[origin + fc.horizon - 1])
            per_origin.setdefault(origin, []).append(abs(predicted - actual))
        origins = sorted(per_origin)
        mae = [float(np.mean(per_origin[o])) for o in origins]
        return {
            "model": fc.model,
            "horizon": int(fc.horizon),
            "n_samples": int(fc.n_samples),
            "precision": fc.precision,
            "origins": [int(o) for o in origins],
            "cars": [len(per_origin[o]) for o in origins],
            "mae": mae,
            "mean_mae": float(np.mean(mae)) if mae else None,
        }

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    def summarize(
        self, spec: ScenarioSpec, results: Sequence[ScenarioRaceResult]
    ) -> ScenarioSummary:
        rows = []
        by_point: Dict[str, List[ScenarioRaceResult]] = {}
        for result in results:
            by_point.setdefault(result.point_label, []).append(result)
        for label, group in by_point.items():
            winners = [r.winner for r in group]
            row = {
                "point": label,
                "races": len(group),
                "mean_caution_laps": float(np.mean([r.caution_laps for r in group])),
                "mean_pit_stops": float(np.mean([r.pit_stops for r in group])),
                "mean_lead_changes": float(np.mean([r.lead_changes for r in group])),
                "mean_finishers": float(np.mean([r.finishers for r in group])),
                "distinct_winners": len(set(winners)),
                "top_winner": int(max(set(winners), key=lambda c: (winners.count(c), -c))),
            }
            maes = [
                r.forecast["mean_mae"]
                for r in group
                if r.forecast is not None and r.forecast["mean_mae"] is not None
            ]
            if maes:
                row["mean_forecast_mae"] = float(np.mean(maes))
            rows.append(row)
        standings = None
        champion_odds = None
        if spec.kind == "season":
            standings, champion_odds = self._championship(spec, results)
        maes = [
            r.forecast["mean_mae"]
            for r in results
            if r.forecast is not None and r.forecast["mean_mae"] is not None
        ]
        return ScenarioSummary(
            scenario=spec.name,
            kind=spec.kind,
            races=len(results),
            replicas=spec.replicas,
            rows=rows,
            standings=standings,
            champion_odds=champion_odds,
            forecast_mae=float(np.mean(maes)) if maes else None,
        )

    @staticmethod
    def _championship(
        spec: ScenarioSpec, results: Sequence[ScenarioRaceResult]
    ) -> Tuple[List[dict], Dict[str, float]]:
        """Replica-wise championships: points add up across the calendar."""
        replica_points: Dict[int, Dict[int, int]] = {}
        for result in results:
            table = replica_points.setdefault(result.replica, {})
            for car, pts in result.points.items():
                table[car] = table.get(car, 0) + pts
        champions: List[int] = []
        for replica in sorted(replica_points):
            table = replica_points[replica]
            champions.append(min(table, key=lambda car: (-table[car], car)))
        odds = {
            str(car): champions.count(car) / len(champions) for car in sorted(set(champions))
        }
        totals: Dict[int, List[int]] = {}
        for table in replica_points.values():
            for car, pts in table.items():
                totals.setdefault(car, []).append(pts)
        mean_points = {car: float(np.mean(pts)) for car, pts in totals.items()}
        order = sorted(mean_points, key=lambda car: (-mean_points[car], car))
        standings = [
            {
                "position": position,
                "car_id": int(car),
                "mean_points": mean_points[car],
                "titles": champions.count(car),
            }
            for position, car in enumerate(order[:10], start=1)
        ]
        return standings, odds
