"""Declarative what-if scenario specifications.

A scenario spec is a plain JSON/YAML document answering one counterfactual
question about the racing world of :mod:`repro.simulation`: *what if the
caution hazard doubled*, *what if the leading package degraded 2%*, *what
if Indy500 ran 120 laps*, *who wins the championship over an alternate
calendar*.  :func:`parse_scenario` validates the document (unknown keys
are rejected with the full known-key list, same policy as the server
config) and compiles it into a flat list of :class:`RaceJob`\\ s — one
simulated race per (base race x grid point x replica).

Reproducibility is the core contract: every random stream a job consumes
is derived from a single base seed with :func:`derive_seed`, a SHA-256
construction over ``(seed, scenario, job label, purpose, ...)``.  Unlike
Python's ``hash()`` it is stable across processes and platforms, so a
sweep submitted over HTTP replays bitwise the runs of the in-process
runner given the same request seed.

Document shape (see ``docs/scenarios.md`` for commented examples)::

    scenario: caution-hazard-sweep     # name (required)
    kind: caution                      # race|caution|driver|track|pit|season
    description: optional prose
    races:                             # base races (event must be in TRACKS)
      - {event: Indy500, year: 2018}
    replicas: 2                        # Monte-Carlo repeats per grid point
    seed: 2021                         # optional; CLI/request seed wins
    grid:                              # EITHER a cartesian grid ...
      caution_hazard_scale: [0.5, 1.0, 2.0]
    points:                            # ... OR an explicit point list
      - {label: baseline}
      - {label: double, caution_hazard_scale: 2.0}
    forecast:                          # optional: score a served model
      model: bench-deepar
      origins: {start: 20, stop: 40, stride: 10}
      horizon: 2
      n_samples: 20
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.precision import PRECISIONS
from ..simulation.track import EVENT_YEARS, TRACKS

__all__ = [
    "SCENARIO_KINDS",
    "POINT_PARAMS",
    "ScenarioError",
    "ForecastSpec",
    "RaceJob",
    "ScenarioSpec",
    "parse_scenario",
    "point_label",
    "derive_seed",
    "derive_rng",
    "championship_points",
]

#: the scenario kinds; ``kind`` picks the summary semantics (season adds
#: championship standings) and requires at least one parameter of its
#: family on some grid point.
SCENARIO_KINDS = ("race", "caution", "driver", "track", "pit", "season")

#: every perturbation parameter a grid point may carry, by family.  The
#: vocabulary is shared across kinds — a caution sweep may also shorten
#: the race with ``track_total_laps`` to iterate faster.
POINT_PARAMS: Dict[str, Tuple[str, ...]] = {
    "caution": (
        "caution_hazard_scale",  # multiplier on the per-lap caution hazard
        "caution_mean_duration",  # mean caution length in laps
        "caution_retirement_prob",  # P(the caution retires a car)
    ),
    "driver": (
        "driver_degradation",  # pace penalty added to every car's skill
        "driver_car_id",  # single car to perturb (default: car 1)
        "driver_skill_delta",  # pace delta for that car (+ is slower)
    ),
    "track": (
        "track_total_laps",
        "track_num_cars",
        "track_pit_lane_loss_s",
        "track_avg_speed_mph",
        "track_caution_speed_factor",
    ),
    "pit": (
        "pit_unscheduled_prob",  # per-lap unscheduled-stop probability
        "pit_caution_pit_scale",  # window fraction after which cautions pull cars in
        "pit_aggression_shift",  # shift applied to every driver's aggression
    ),
}

_ALL_POINT_PARAMS = frozenset(p for family in POINT_PARAMS.values() for p in family)

_SPEC_KEYS = {
    "scenario": "name of the scenario (required)",
    "kind": f"one of {'|'.join(SCENARIO_KINDS)} (required)",
    "description": "free-form prose",
    "races": "base races: [{event, year}, ...] (required)",
    "replicas": "Monte-Carlo repeats per grid point (default 1)",
    "seed": "base seed; a runner/request seed overrides it",
    "grid": "cartesian grid: {param: [values, ...]}",
    "points": "explicit grid points: [{param: value, ...}, ...]",
    "forecast": "score a served model on every simulated race",
}

_FORECAST_KEYS = {"model", "origins", "horizon", "n_samples", "min_history", "precision"}


class ScenarioError(ValueError):
    """A scenario document failed validation."""


# ----------------------------------------------------------------------
# deterministic seed derivation
# ----------------------------------------------------------------------
def derive_seed(base_seed: int, *parts) -> int:
    """A 64-bit seed derived from ``base_seed`` and a path of labels.

    SHA-256 over the reprs of the parts, so the same derivation path
    yields the same stream in every process — the property that makes a
    scenario sweep bitwise reproducible across the in-process runner,
    the HTTP gateway and any batching in between.
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(base_seed: int, *parts) -> np.random.Generator:
    """The generator seeded by :func:`derive_seed` on the same path."""
    return np.random.default_rng(derive_seed(base_seed, *parts))


# ----------------------------------------------------------------------
# championship scoring (season kind)
# ----------------------------------------------------------------------
#: points by finishing position (IndyCar-style: 50 for the win, slow
#: decay through the field); positions past the table score the tail value.
POINTS_TABLE = (
    50, 40, 35, 32, 30, 28, 26, 24, 22, 20,
    19, 18, 17, 16, 15, 14, 13, 12, 11, 10,
    9, 8, 7, 6, 5,
)


def championship_points(finishing_order: Sequence[int]) -> Dict[int, int]:
    """Points per car for one race given its finishing order (winner first)."""
    points: Dict[int, int] = {}
    for position, car_id in enumerate(finishing_order):
        value = POINTS_TABLE[position] if position < len(POINTS_TABLE) else POINTS_TABLE[-1]
        points[int(car_id)] = int(value)
    return points


# ----------------------------------------------------------------------
# compiled spec
# ----------------------------------------------------------------------
@dataclass
class ForecastSpec:
    """Optional model-scoring block: forecast every race at fixed origins."""

    model: str
    origins: Tuple[int, ...]
    horizon: int = 2
    n_samples: int = 20
    min_history: int = 10
    #: compute tier the scored forecasts run on (see ``repro.nn.precision``)
    precision: str = "float64"


@dataclass
class RaceJob:
    """One simulated race: a base race under one grid point, one replica."""

    scenario: str
    label: str  # "<event>-<year>/<point label>/r<replica>" — the seed path
    event: str
    year: int
    replica: int
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def point_label(self) -> str:
        return point_label(self.params)


@dataclass
class ScenarioSpec:
    """A validated scenario document, ready to compile into race jobs."""

    name: str
    kind: str
    races: List[Tuple[str, int]]
    points: List[Dict[str, object]]
    replicas: int = 1
    seed: Optional[int] = None
    description: str = ""
    forecast: Optional[ForecastSpec] = None

    def jobs(self) -> List[RaceJob]:
        """The flat race list: every base race x grid point x replica."""
        jobs: List[RaceJob] = []
        for event, year in self.races:
            for point in self.points:
                for replica in range(self.replicas):
                    label = f"{event}-{year}/{point_label(point)}/r{replica}"
                    jobs.append(
                        RaceJob(
                            scenario=self.name,
                            label=label,
                            event=event,
                            year=int(year),
                            replica=replica,
                            params=dict(point),
                        )
                    )
        return jobs


def point_label(point: Dict[str, object]) -> str:
    """Display label of one grid point: explicit ``label`` or its params."""
    if "label" in point:
        return str(point["label"])
    params = {k: v for k, v in sorted(point.items()) if k != "label"}
    if not params:
        return "baseline"
    return ",".join(f"{k}={v}" for k, v in params.items())


# ----------------------------------------------------------------------
# parsing / validation
# ----------------------------------------------------------------------
def _fail(name: str, message: str) -> ScenarioError:
    return ScenarioError(f"scenario {name!r}: {message}")


def _parse_races(name: str, raw) -> List[Tuple[str, int]]:
    if not isinstance(raw, list) or not raw:
        raise _fail(name, "'races' must be a non-empty array of {event, year} entries")
    races: List[Tuple[str, int]] = []
    for entry in raw:
        if isinstance(entry, dict):
            unknown = sorted(set(entry) - {"event", "year"})
            if unknown:
                raise _fail(name, f"race entry has unknown key(s): {', '.join(unknown)}")
            event, year = entry.get("event"), entry.get("year")
        elif isinstance(entry, (list, tuple)) and len(entry) == 2:
            event, year = entry
        else:
            raise _fail(name, f"race entry must be {{event, year}}, got {entry!r}")
        if event not in TRACKS:
            raise _fail(name, f"unknown event {event!r}; known: {', '.join(sorted(TRACKS))}")
        if not isinstance(year, int) or isinstance(year, bool):
            raise _fail(name, f"race year must be an integer, got {year!r}")
        races.append((str(event), int(year)))
    return races


def _parse_points(name: str, document: dict) -> List[Dict[str, object]]:
    grid, points = document.get("grid"), document.get("points")
    if grid is not None and points is not None:
        raise _fail(name, "give either 'grid' or 'points', not both")
    if points is not None:
        if not isinstance(points, list) or not points:
            raise _fail(name, "'points' must be a non-empty array of objects")
        parsed = []
        for point in points:
            if not isinstance(point, dict):
                raise _fail(name, f"grid point must be an object, got {point!r}")
            parsed.append(dict(point))
    elif grid is not None:
        if not isinstance(grid, dict) or not grid:
            raise _fail(name, "'grid' must be a non-empty object of {param: [values]}")
        axes = []
        for param in sorted(grid):
            values = grid[param]
            if not isinstance(values, list) or not values:
                raise _fail(name, f"grid axis {param!r} must be a non-empty array")
            axes.append([(param, value) for value in values])
        parsed = [dict(combo) for combo in itertools.product(*axes)]
    else:
        parsed = [{}]
    for point in parsed:
        unknown = sorted(set(point) - _ALL_POINT_PARAMS - {"label"})
        if unknown:
            known = ", ".join(sorted(_ALL_POINT_PARAMS))
            raise _fail(
                name,
                f"unknown grid parameter(s): {', '.join(unknown)}; known: label, {known}",
            )
    return parsed


def _parse_forecast(name: str, raw) -> ForecastSpec:
    if not isinstance(raw, dict):
        raise _fail(name, "'forecast' must be an object")
    unknown = sorted(set(raw) - _FORECAST_KEYS)
    if unknown:
        raise _fail(
            name,
            f"unknown forecast key(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_FORECAST_KEYS))}",
        )
    model = raw.get("model")
    if not isinstance(model, str) or not model:
        raise _fail(name, "forecast needs a 'model' name")
    origins_raw = raw.get("origins")
    if isinstance(origins_raw, dict):
        unknown = sorted(set(origins_raw) - {"start", "stop", "stride"})
        if unknown:
            raise _fail(name, f"unknown origins key(s): {', '.join(unknown)}")
        try:
            start = int(origins_raw["start"])
            stop = int(origins_raw["stop"])
            stride = int(origins_raw.get("stride", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise _fail(name, f"origins range needs integer start/stop[/stride]: {exc}")
        if stride < 1 or stop < start:
            raise _fail(name, "origins range needs stride >= 1 and stop >= start")
        origins = tuple(range(start, stop + 1, stride))
    elif isinstance(origins_raw, list) and origins_raw:
        if not all(isinstance(o, int) and not isinstance(o, bool) for o in origins_raw):
            raise _fail(name, "'origins' array must hold integers")
        origins = tuple(int(o) for o in origins_raw)
    else:
        raise _fail(name, "forecast needs 'origins': an array or {start, stop, stride}")
    precision = raw.get("precision", "float64")
    if not isinstance(precision, str) or precision not in PRECISIONS:
        raise _fail(
            name,
            f"unknown forecast precision {precision!r}; "
            f"supported: {', '.join(PRECISIONS)}",
        )
    try:
        spec = ForecastSpec(
            model=model,
            origins=origins,
            horizon=int(raw.get("horizon", 2)),
            n_samples=int(raw.get("n_samples", 20)),
            min_history=int(raw.get("min_history", 10)),
            precision=precision,
        )
    except (TypeError, ValueError) as exc:
        raise _fail(name, f"invalid forecast block: {exc}")
    if spec.horizon < 1 or spec.n_samples < 1:
        raise _fail(name, "forecast horizon and n_samples must be >= 1")
    return spec


def parse_scenario(document) -> ScenarioSpec:
    """Validate a scenario document and compile it to a :class:`ScenarioSpec`.

    Every problem raises :class:`ScenarioError` with the offending key —
    the same fail-loudly policy as :class:`~repro.serving.server.ServerConfig`.
    """
    if not isinstance(document, dict):
        raise ScenarioError(f"scenario document must be an object, got {type(document).__name__}")
    name = document.get("scenario")
    if not isinstance(name, str) or not name:
        raise ScenarioError("scenario document needs a non-empty 'scenario' name")
    unknown = sorted(set(document) - set(_SPEC_KEYS))
    if unknown:
        raise _fail(
            name,
            f"unknown key(s): {', '.join(unknown)}; known: {', '.join(sorted(_SPEC_KEYS))}",
        )
    kind = document.get("kind")
    if kind not in SCENARIO_KINDS:
        raise _fail(name, f"'kind' must be one of {', '.join(SCENARIO_KINDS)}, got {kind!r}")
    races = _parse_races(name, document.get("races"))
    points = _parse_points(name, document)
    replicas = document.get("replicas", 1)
    if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
        raise _fail(name, f"'replicas' must be a positive integer, got {replicas!r}")
    seed = document.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise _fail(name, f"'seed' must be an integer, got {seed!r}")
    if kind in POINT_PARAMS:
        family = set(POINT_PARAMS[kind])
        if not any(family & set(point) for point in points):
            raise _fail(
                name,
                f"kind {kind!r} requires at least one of its parameters "
                f"({', '.join(sorted(family))}) on some grid point",
            )
    forecast = None
    if document.get("forecast") is not None:
        forecast = _parse_forecast(name, document["forecast"])
    spec = ScenarioSpec(
        name=name,
        kind=str(kind),
        races=races,
        points=points,
        replicas=int(replicas),
        seed=None if seed is None else int(seed),
        description=str(document.get("description", "")),
        forecast=forecast,
    )
    # years outside the catalogued seasons are allowed (the track layout of
    # the closest season applies), but warn-level strictness would hide
    # typos: require the event to have at least one catalogued year.
    for event, _year in spec.races:
        if event not in EVENT_YEARS:
            raise _fail(name, f"event {event!r} has no catalogued seasons")
    return spec
