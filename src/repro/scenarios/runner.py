"""The ``repro-scenarios`` CLI: run a YAML workload matrix of scenarios.

A *workload matrix* is a YAML file listing scenario files (the style of
the ipex-llm benchmark harness: many small YAML specs, one runner)::

    workload: season-scale what-if matrix
    defaults:
      seed: 2021
      replicas: 2
    scenarios:
      - caution_sweep.yaml
      - season_championship.yaml

Scenario paths resolve relative to the matrix file; ``defaults`` fills
``seed``/``replicas`` for specs that do not set them.  A single scenario
file (a document with a ``scenario:`` key) is also accepted directly.

Modes:

* default — run every scenario in-process and write one results table
  plus one JSON document per scenario under ``--results``
  (``benchmarks/results/scenarios/`` by default);
* ``--gateway HOST:PORT`` — submit each scenario to a running
  ``repro-serve`` gateway's ``/v1/scenarios`` and consume the streamed
  per-race results; byte-identical to the in-process run under the same
  seed;
* ``--validate`` — parse and compile every spec, run nothing (the CI
  docs job runs this over the shipped matrix so the examples cannot rot).

PyYAML is a dev-only dependency of this repo; the runner imports it
lazily and fails with a clear message when it is missing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..evaluation.report import format_table
from .engine import ScenarioEngine, ScenarioRaceResult, ScenarioSummary
from .spec import ScenarioError, ScenarioSpec, parse_scenario

__all__ = ["main", "load_workload", "DEFAULT_RESULTS_DIR"]

DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results", "scenarios")

_RACE_COLUMNS = (
    "label", "winner", "podium", "laps", "finishers",
    "caution_laps", "pit_stops", "lead_changes", "forecast_mae",
)


def _load_yaml(path: str) -> dict:
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "repro-scenarios reads YAML workloads and needs PyYAML, which is a "
            "dev-only dependency of this repo (python -m pip install pyyaml)"
        ) from exc
    with open(path, "r", encoding="utf-8") as fh:
        document = yaml.safe_load(fh)
    if not isinstance(document, dict):
        raise ScenarioError(f"{path}: expected a YAML mapping at the top level")
    return document


def load_workload(path: str) -> List[Tuple[str, dict, ScenarioSpec]]:
    """Load a matrix file (or a single scenario file).

    Returns ``(spec file path, raw document with matrix defaults merged,
    parsed ScenarioSpec)`` triples — the raw document is what gateway mode
    ships over the wire, so both modes run the exact same spec.
    """
    document = _load_yaml(path)
    if "scenario" in document:
        return [(path, document, parse_scenario(document))]
    if "scenarios" not in document:
        raise ScenarioError(
            f"{path}: expected a scenario document ('scenario:') or a workload "
            "matrix ('scenarios:')"
        )
    unknown = sorted(set(document) - {"workload", "description", "defaults", "scenarios"})
    if unknown:
        raise ScenarioError(f"{path}: unknown matrix key(s): {', '.join(unknown)}")
    defaults = document.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ScenarioError(f"{path}: 'defaults' must be a mapping")
    unknown = sorted(set(defaults) - {"seed", "replicas"})
    if unknown:
        raise ScenarioError(
            f"{path}: unknown defaults key(s): {', '.join(unknown)}; known: replicas, seed"
        )
    entries = document.get("scenarios")
    if not isinstance(entries, list) or not entries:
        raise ScenarioError(f"{path}: 'scenarios' must be a non-empty list of file paths")
    base_dir = os.path.dirname(os.path.abspath(path))
    specs: List[Tuple[str, dict, ScenarioSpec]] = []
    for entry in entries:
        if not isinstance(entry, str):
            raise ScenarioError(f"{path}: scenario entry must be a file path, got {entry!r}")
        spec_path = entry if os.path.isabs(entry) else os.path.join(base_dir, entry)
        spec_doc = _load_yaml(spec_path)
        for key, value in defaults.items():
            spec_doc.setdefault(key, value)
        specs.append((spec_path, spec_doc, parse_scenario(spec_doc)))
    return specs


# ----------------------------------------------------------------------
# result rendering
# ----------------------------------------------------------------------
def _race_row(result: ScenarioRaceResult) -> Dict[str, object]:
    forecast = result.forecast or {}
    return {
        "label": result.label,
        "winner": result.winner,
        "podium": "-".join(str(car) for car in result.podium),
        "laps": result.laps,
        "finishers": result.finishers,
        "caution_laps": result.caution_laps,
        "pit_stops": result.pit_stops,
        "lead_changes": result.lead_changes,
        "forecast_mae": forecast.get("mean_mae"),
    }


def render_scenario(
    spec: ScenarioSpec, results: Sequence[ScenarioRaceResult], summary: ScenarioSummary
) -> str:
    sections = [
        format_table(
            [_race_row(result) for result in results],
            columns=list(_RACE_COLUMNS),
            title=f"Scenario {spec.name!r} ({spec.kind}): per-race results",
        ),
        format_table(summary.rows, title="Per-grid-point summary"),
    ]
    if summary.standings:
        sections.append(format_table(summary.standings, title="Championship standings"))
    if summary.champion_odds:
        odds = ", ".join(
            f"car {car}: {value:.2f}" for car, value in summary.champion_odds.items()
        )
        sections.append(f"Championship odds over {summary.replicas} replicas: {odds}")
    if summary.forecast_mae is not None:
        sections.append(f"Mean forecast MAE across races: {summary.forecast_mae:.4f}")
    return "\n\n".join(sections) + "\n"


def write_results(
    results_dir: str,
    spec: ScenarioSpec,
    results: Sequence[ScenarioRaceResult],
    summary: ScenarioSummary,
) -> Tuple[str, str]:
    """Write ``<name>.txt`` (table) and ``<name>.json`` (exact documents)."""
    os.makedirs(results_dir, exist_ok=True)
    text_path = os.path.join(results_dir, f"{spec.name}.txt")
    with open(text_path, "w", encoding="utf-8") as fh:
        fh.write(render_scenario(spec, results, summary))
    json_path = os.path.join(results_dir, f"{spec.name}.json")
    document = {
        "scenario": spec.name,
        "kind": spec.kind,
        "races": [result.to_doc() for result in results],
        "summary": summary.to_doc(),
    }
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return text_path, json_path


# ----------------------------------------------------------------------
# execution backends
# ----------------------------------------------------------------------
def _run_in_process(
    specs: Sequence[Tuple[str, dict, ScenarioSpec]],
    seeds: Dict[str, int],
    store: Optional[str],
    quiet: bool,
) -> Dict[str, Tuple[List[ScenarioRaceResult], ScenarioSummary]]:
    engine = ScenarioEngine()
    if any(spec.forecast is not None for _path, _doc, spec in specs):
        if store is None:
            raise ScenarioError(
                "a scenario scores a forecast model; pass --store with the "
                "artifact store that holds it"
            )
        from ..artifacts import ArtifactStore
        from ..serving import ForecastService

        engine = ScenarioEngine.from_service(ForecastService(ArtifactStore(store)))
    outcomes: Dict[str, Tuple[List[ScenarioRaceResult], ScenarioSummary]] = {}
    for _path, _doc, spec in specs:
        results: List[ScenarioRaceResult] = []
        summary: Optional[ScenarioSummary] = None
        total = len(spec.jobs())
        for item in engine.run_iter(spec, seeds[spec.name]):
            if isinstance(item, ScenarioRaceResult):
                results.append(item)
                if not quiet:
                    print(
                        f"  [{len(results)}/{total}] {item.label}: "
                        f"winner car {item.winner}",
                        flush=True,
                    )
            else:
                summary = item
        outcomes[spec.name] = (results, summary)
    return outcomes


def _run_gateway(
    specs: Sequence[Tuple[str, dict, ScenarioSpec]],
    seeds: Dict[str, int],
    gateway: str,
    quiet: bool,
) -> Dict[str, Tuple[List[ScenarioRaceResult], ScenarioSummary]]:
    from ..serving import ForecastClient

    host, _sep, port = gateway.rpartition(":")
    if not host or not port.isdigit():
        raise ScenarioError(f"--gateway must be HOST:PORT, got {gateway!r}")
    client = ForecastClient(host=host, port=int(port))
    outcomes: Dict[str, Tuple[List[ScenarioRaceResult], ScenarioSummary]] = {}
    for _path, document, spec in specs:
        results: List[ScenarioRaceResult] = []
        summary: Optional[ScenarioSummary] = None
        total = len(spec.jobs())
        for kind, payload in client.run_scenario_iter(document, seed=seeds[spec.name]):
            if kind == "race":
                results.append(payload)
                if not quiet:
                    print(
                        f"  [{len(results)}/{total}] {payload.label}: "
                        f"winner car {payload.winner}",
                        flush=True,
                    )
            elif kind == "summary":
                summary = payload
        outcomes[spec.name] = (results, summary)
    return outcomes


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="Run what-if scenario workloads through the simulation + serving stack.",
    )
    parser.add_argument(
        "workload",
        nargs="+",
        help="workload matrix YAML file(s), or individual scenario YAML files",
    )
    parser.add_argument(
        "--validate", action="store_true", help="parse and compile every spec, run nothing"
    )
    parser.add_argument("--seed", type=int, default=None, help="override every scenario's seed")
    parser.add_argument(
        "--store", default=None, help="ArtifactStore directory for forecast-scoring scenarios"
    )
    parser.add_argument(
        "--gateway",
        default=None,
        help="submit to a running repro-serve gateway (HOST:PORT) instead of in-process",
    )
    parser.add_argument(
        "--results",
        default=DEFAULT_RESULTS_DIR,
        help=f"results directory (default {DEFAULT_RESULTS_DIR})",
    )
    parser.add_argument("--quiet", action="store_true", help="no per-race progress lines")
    args = parser.parse_args(argv)

    try:
        specs: List[Tuple[str, dict, ScenarioSpec]] = []
        for path in args.workload:
            specs.extend(load_workload(path))
    except (OSError, RuntimeError, ScenarioError) as exc:
        print(f"repro-scenarios: {exc}", file=sys.stderr)
        return 2
    names = [spec.name for _path, _doc, spec in specs]
    if len(set(names)) != len(names):
        print(
            f"repro-scenarios: duplicate scenario names in the workload: {names}",
            file=sys.stderr,
        )
        return 2

    seeds = {
        spec.name: args.seed if args.seed is not None else (spec.seed or 0)
        for _path, _doc, spec in specs
    }
    if args.validate:
        for path, _doc, spec in specs:
            print(f"{path}: OK ({spec.kind}, {len(spec.jobs())} races, seed {seeds[spec.name]})")
        return 0

    try:
        if args.gateway is not None:
            outcomes = _run_gateway(specs, seeds, args.gateway, args.quiet)
        else:
            outcomes = _run_in_process(specs, seeds, args.store, args.quiet)
    except ScenarioError as exc:
        print(f"repro-scenarios: {exc}", file=sys.stderr)
        return 2

    for _path, _doc, spec in specs:
        results, summary = outcomes[spec.name]
        text_path, json_path = write_results(args.results, spec, results, summary)
        if not args.quiet:
            print(render_scenario(spec, results, summary))
        print(f"{spec.name}: {len(results)} races -> {text_path}, {json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
