"""Season-scale what-if scenario engine.

Declarative YAML/JSON scenario specs — caution-probability shifts, driver
perturbations, alternate track configurations, pit-strategy grids, and
full-season championship Monte-Carlo — compile into deterministic race
jobs (:mod:`repro.scenarios.spec`) executed by
:class:`~repro.scenarios.engine.ScenarioEngine` against the simulation
stack and, for model-scoring scenarios, the fleet-batched serving engine.

Every random stream derives from one request seed via a process-stable
SHA-256 construction, so the ``repro-scenarios`` runner
(:mod:`repro.scenarios.runner`), the ``/v1/scenarios`` streaming gateway
route, and any micro-batch coalescing in between produce byte-identical
result documents.
"""

from .engine import ScenarioEngine, ScenarioRaceResult, ScenarioSummary, finishing_order
from .spec import (
    POINT_PARAMS,
    SCENARIO_KINDS,
    ForecastSpec,
    RaceJob,
    ScenarioError,
    ScenarioSpec,
    championship_points,
    derive_rng,
    derive_seed,
    parse_scenario,
)

__all__ = [
    "POINT_PARAMS",
    "SCENARIO_KINDS",
    "ForecastSpec",
    "RaceJob",
    "ScenarioEngine",
    "ScenarioError",
    "ScenarioRaceResult",
    "ScenarioSpec",
    "ScenarioSummary",
    "championship_points",
    "derive_rng",
    "derive_seed",
    "finishing_order",
    "parse_scenario",
]
