"""``repro-learn`` — drive the continuous-learning loop from the shell.

One subcommand per loop stage, each runnable in its own process against
shared on-disk state (the telemetry accumulator directory and the artifact
store), so the stages compose into pipelines and the smoke gate can
exercise each as a real subprocess::

    repro-learn simulate --accumulator ACC --event Indy500 --year 2019 --seed 3
    repro-learn window   --accumulator ACC --holdout 1
    repro-learn retrain  --accumulator ACC --window win-... --store STORE \\
                         --name cand-a --family deepar --job-dir JOB
    repro-learn shadow   --accumulator ACC --window win-... --store STORE \\
                         --candidate cand-a --champion champ --seed 7 --json
    repro-learn promote  --store STORE --alias champion --target cand-a
    repro-learn rollback --store STORE --alias champion

``retrain --stop-after N`` truncates the job after ``N`` epochs (exit code
3, no artifact) to simulate a crash; re-running with ``--resume`` and the
same ``--job-dir`` completes it bit-exactly from the trainer checkpoint.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main"]

#: exit code of a deliberately truncated (interrupted) retrain job
EXIT_INTERRUPTED = 3


def _print_doc(document: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return
    for key, value in document.items():
        print(f"{key}: {value}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_simulate(args) -> int:
    from dataclasses import replace

    from ..simulation.race import RaceSimulator
    from ..simulation.track import track_for_year
    from .windows import TelemetryAccumulator

    track = track_for_year(args.event, args.base_year)
    if args.laps or args.cars:
        track = replace(
            track,
            total_laps=args.laps or track.total_laps,
            num_cars=args.cars or track.num_cars,
        )
    race = RaceSimulator(
        track, event=args.event, year=args.year, seed=args.seed
    ).run()
    entry = TelemetryAccumulator(args.accumulator).add_race(
        race, source=f"simulate(seed={args.seed})"
    )
    _print_doc(entry, args.json)
    return 0


def _cmd_ingest(args) -> int:
    from .windows import TelemetryAccumulator

    accumulator = TelemetryAccumulator(args.accumulator)
    for path in args.files:
        entry = accumulator.add_file(path)
        _print_doc(entry, args.json)
    return 0


def _cmd_window(args) -> int:
    from .windows import TelemetryAccumulator

    window = TelemetryAccumulator(args.accumulator).build_window(holdout=args.holdout)
    _print_doc(window.describe(), args.json)
    return 0


def _cmd_retrain(args) -> int:
    from ..artifacts import ArtifactStore
    from .retrain import RetrainJob
    from .windows import TelemetryAccumulator

    config = json.loads(args.config) if args.config else {}
    job = RetrainJob(
        store=ArtifactStore(args.store),
        accumulator=TelemetryAccumulator(args.accumulator),
        window_id=args.window,
        name=args.name,
        family=args.family,
        config=config,
        base=args.base,
        job_dir=args.job_dir,
        resume=args.resume,
    )
    record = job.run(stop_after_epochs=args.stop_after)
    _print_doc(record, args.json)
    return EXIT_INTERRUPTED if record["status"] == "interrupted" else 0


def _cmd_shadow(args) -> int:
    from ..artifacts import ArtifactStore
    from .shadow import ShadowEvaluator
    from .windows import TelemetryAccumulator

    window = TelemetryAccumulator(args.accumulator).window(args.window)
    evaluator = ShadowEvaluator(
        ArtifactStore(args.store),
        horizon=args.horizon,
        n_samples=args.samples,
        min_history=args.min_history,
        stride=args.stride,
    )
    report = evaluator.evaluate(
        args.candidate, args.champion, window.holdout_races(), seed=args.seed
    )
    _print_doc(report.to_doc(), args.json)
    return 0


def _cmd_promote(args) -> int:
    from ..artifacts import ArtifactStore
    from .promote import PromotionManager

    record = PromotionManager(ArtifactStore(args.store)).promote(
        args.alias, args.target, note=args.note
    )
    _print_doc(record, args.json)
    return 0


def _cmd_rollback(args) -> int:
    from ..artifacts import ArtifactStore
    from .promote import PromotionManager

    record = PromotionManager(ArtifactStore(args.store)).rollback(args.alias)
    _print_doc(record, args.json)
    return 0


def _cmd_aliases(args) -> int:
    from ..artifacts import ArtifactStore
    from .promote import PromotionManager

    store = ArtifactStore(args.store)
    document = {"aliases": store.aliases()}
    if args.history:
        document["history"] = PromotionManager(store).history(args.alias)
    _print_doc(document, args.json)
    return 0


# ----------------------------------------------------------------------
# argument wiring
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    from .retrain import FAMILY_CHOICES

    parser = argparse.ArgumentParser(
        prog="repro-learn",
        description="telemetry -> retrain -> shadow-eval -> promote, one stage per call",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add(name, func, help_text):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=func)
        p.add_argument("--json", action="store_true", help="print the result as JSON")
        return p

    p = _add("simulate", _cmd_simulate, "simulate one race into the accumulator")
    p.add_argument("--accumulator", required=True)
    p.add_argument("--event", default="Indy500")
    p.add_argument("--year", type=int, default=2019)
    p.add_argument("--base-year", type=int, default=2018, help="season whose track spec to use")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--laps", type=int, default=0, help="override the track's lap count")
    p.add_argument("--cars", type=int, default=0, help="override the field size")

    p = _add("ingest", _cmd_ingest, "ingest telemetry files (npz or textual log)")
    p.add_argument("--accumulator", required=True)
    p.add_argument("files", nargs="+")

    p = _add("window", _cmd_window, "build/register a training window")
    p.add_argument("--accumulator", required=True)
    p.add_argument("--holdout", type=int, default=1, help="races held out for shadow eval")

    p = _add("retrain", _cmd_retrain, "train a candidate artifact on a window")
    p.add_argument("--accumulator", required=True)
    p.add_argument("--window", required=True)
    p.add_argument("--store", required=True)
    p.add_argument("--name", required=True, help="candidate artifact name")
    p.add_argument("--family", default="deepar", choices=FAMILY_CHOICES)
    p.add_argument("--base", default=None, help="fine-tune from this registered artifact")
    p.add_argument("--config", default=None, help="JSON constructor overrides")
    p.add_argument("--job-dir", default=None, help="checkpoint directory (resumable)")
    p.add_argument("--resume", action="store_true", help="resume from --job-dir's checkpoint")
    p.add_argument(
        "--stop-after",
        type=int,
        default=None,
        help=f"truncate after N epochs (exit {EXIT_INTERRUPTED}, no artifact)",
    )

    p = _add("shadow", _cmd_shadow, "score candidate vs champion on held-out races")
    p.add_argument("--accumulator", required=True)
    p.add_argument("--window", required=True)
    p.add_argument("--store", required=True)
    p.add_argument("--candidate", required=True)
    p.add_argument("--champion", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--horizon", type=int, default=2)
    p.add_argument("--samples", type=int, default=50)
    p.add_argument("--min-history", type=int, default=10)
    p.add_argument("--stride", type=int, default=1)

    p = _add("promote", _cmd_promote, "point an alias at a new champion (journaled)")
    p.add_argument("--store", required=True)
    p.add_argument("--alias", required=True)
    p.add_argument("--target", required=True)
    p.add_argument("--note", default="")

    p = _add("rollback", _cmd_rollback, "revert an alias to the previous champion")
    p.add_argument("--store", required=True)
    p.add_argument("--alias", required=True)

    p = _add("aliases", _cmd_aliases, "list aliases (and the promotion journal)")
    p.add_argument("--store", required=True)
    p.add_argument("--history", action="store_true")
    p.add_argument("--alias", default=None, help="limit --history to one alias")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
