"""Shadow evaluation: candidate vs. champion on held-out races.

The :class:`ShadowEvaluator` answers the promotion question: *would the
candidate have forecast the recent races better than the live champion?*
It replays a window's held-out races through **both** models via
:class:`~repro.serving.ForecastService` — the same submit path live
traffic takes, grouped per model into batched engine passes — and scores
three rank-forecast metrics (:mod:`repro.evaluation.metrics`):

* ``mae`` — mean absolute error of the horizon-end rank forecast;
* ``top1`` — accuracy of the forecast race leader per origin;
* ``sign`` — directional accuracy of the forecast rank change.

Determinism contract: every ``(race, car, origin)`` forecast task draws
from an RNG stream derived by hashing the evaluation seed with the task's
identity, and the *same* stream is given to both models for the same task.
The report is therefore a pure function of (candidate artifact, champion
artifact, held-out races, seed) — re-running an evaluation reproduces the
scores exactly, and neither batching nor model order can tip a promotion
decision.  Unlike the byte-identical rollback guarantee, the *scores*
themselves carry the usual error-bounded caveat across precision tiers:
shadow evaluation always runs the float64 reference tier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..data.features import build_race_features
from ..evaluation.metrics import mae, sign_accuracy, top1_accuracy
from ..serving.requests import ForecastRequest, NamedForecastRequest

__all__ = ["ShadowEvaluator", "ShadowReport", "derive_task_seed"]


def derive_task_seed(base_seed: int, race_id: str, car_id: int, origin: int) -> int:
    """A stable per-task seed: hash of the evaluation seed + task identity.

    Hash-derived (rather than drawn from a shared stream) so the seed of a
    task does not depend on how many tasks preceded it — adding a race to
    the holdout set leaves every other task's draws untouched.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}|{race_id}|{int(car_id)}|{int(origin)}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class ShadowReport:
    """Scored comparison of one candidate against the live champion."""

    candidate: str
    champion: str
    seed: int
    races: List[str]
    tasks: int
    scores: Dict[str, Dict[str, float]]
    deltas: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.deltas:
            self.deltas = {
                metric: round(
                    self.scores[self.candidate][metric] - self.scores[self.champion][metric],
                    12,
                )
                for metric in self.scores[self.candidate]
            }

    @property
    def recommend(self) -> bool:
        """Promote when the candidate forecasts rank at least as accurately.

        MAE is the deciding metric (lower is better); top1/sign break a
        near-tie in the candidate's favour only when MAE did not regress.
        """
        if self.deltas["mae"] < 0:
            return True
        if self.deltas["mae"] > 0:
            return False
        return self.deltas["top1"] >= 0 and self.deltas["sign"] >= 0

    def to_doc(self) -> dict:
        return {
            "kind": "shadow-report",
            "candidate": self.candidate,
            "champion": self.champion,
            "seed": self.seed,
            "races": list(self.races),
            "tasks": self.tasks,
            "scores": {name: dict(values) for name, values in self.scores.items()},
            "deltas": dict(self.deltas),
            "recommend": self.recommend,
        }


class ShadowEvaluator:
    """Replays held-out races through candidate and champion and scores both."""

    def __init__(
        self,
        store,
        mode: str = "exact",
        horizon: int = 2,
        n_samples: int = 50,
        min_history: int = 10,
        stride: int = 1,
    ) -> None:
        self.store = store
        self.mode = mode
        self.horizon = int(horizon)
        self.n_samples = int(n_samples)
        self.min_history = int(min_history)
        self.stride = max(int(stride), 1)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        candidate: str,
        champion: str,
        races: Sequence,
        seed: int = 0,
    ) -> ShadowReport:
        """Score ``candidate`` against ``champion`` on ``races``.

        ``races`` are :class:`~repro.simulation.telemetry.RaceTelemetry`
        objects (typically ``window.holdout_races()``).  Both model names
        may be aliases — the service resolves them, so shadow-evaluating
        a challenger against the ``champion`` alias literally is the
        normal call.
        """
        # imported lazily: keeps `import repro.learning` cheap for CLI
        # stages that never touch the serving stack
        from ..serving.service import ForecastService

        service = ForecastService(self.store, capacity=2, mode=self.mode)
        handles = {name: service.load(name) for name in (candidate, champion)}
        if handles[candidate].name == handles[champion].name:
            raise ValueError(
                f"candidate and champion both resolve to {handles[candidate].name!r}; "
                "shadow evaluation needs two distinct artifacts"
            )

        truth_final: List[float] = []
        truth_change: List[float] = []
        predictions: Dict[str, List[float]] = {candidate: [], champion: []}
        pred_leaders: Dict[str, List[int]] = {candidate: [], champion: []}
        true_leaders: List[int] = []
        race_ids: List[str] = []
        tasks = 0

        for race in races:
            race_ids.append(race.race_id)
            series_list = build_race_features(race)
            num_laps = min(len(series) for series in series_list) if series_list else 0
            origins = range(
                self.min_history, num_laps - self.horizon, self.stride
            )
            for origin in origins:
                # one batch per origin, both models' requests interleaved —
                # the service fans them out into one engine pass per model
                named: List[NamedForecastRequest] = []
                cars: List[int] = []
                for series in series_list:
                    task_seed = derive_task_seed(
                        seed, series.race_id, series.car_id, origin
                    )
                    for model in (candidate, champion):
                        forecaster = handles[model].forecaster
                        named.append(
                            NamedForecastRequest(
                                model=model,
                                request=ForecastRequest(
                                    history_target=forecaster._history_target(
                                        series, origin
                                    ),
                                    history_covariates=forecaster._history_covariates(
                                        series, origin
                                    ),
                                    future_covariates=forecaster._future_covariates(
                                        series, origin, self.horizon
                                    ),
                                    n_samples=self.n_samples,
                                    rng=task_seed,
                                    key=(series.race_id, series.car_id),
                                    origin=int(origin),
                                ),
                            )
                        )
                    cars.append(int(series.car_id))
                results = service.submit(named)
                point: Dict[str, List[float]] = {candidate: [], champion: []}
                for index, series in enumerate(series_list):
                    truth_final.append(float(series.rank[origin + self.horizon]))
                    truth_change.append(
                        float(series.rank[origin + self.horizon] - series.rank[origin])
                    )
                    for offset, model in enumerate((candidate, champion)):
                        samples = np.asarray(results[2 * index + offset], dtype=np.float64)
                        final = samples[:, self.horizon - 1]
                        while final.ndim > 1:  # multivariate targets: rank is dim 0
                            final = final[..., 0]
                        value = float(np.median(final))
                        predictions[model].append(value)
                        point[model].append(value)
                    tasks += 1
                true_ranks = [float(s.rank[origin + self.horizon]) for s in series_list]
                true_leaders.append(cars[int(np.argmin(true_ranks))])
                for model in (candidate, champion):
                    pred_leaders[model].append(cars[int(np.argmin(point[model]))])

        if tasks == 0:
            raise ValueError(
                "no forecastable origins in the held-out races; lower "
                "min_history or hold out longer races"
            )

        truth_final_arr = np.asarray(truth_final)
        truth_change_arr = np.asarray(truth_change)
        scores: Dict[str, Dict[str, float]] = {}
        for model in (candidate, champion):
            preds = np.asarray(predictions[model])
            changes = preds - (truth_final_arr - truth_change_arr)
            scores[model] = {
                "mae": round(float(mae(preds, truth_final_arr)), 12),
                "top1": round(
                    float(top1_accuracy(pred_leaders[model], true_leaders)), 12
                ),
                "sign": round(float(sign_accuracy(changes, truth_change_arr)), 12),
            }
        return ShadowReport(
            candidate=candidate,
            champion=champion,
            seed=int(seed),
            races=race_ids,
            tasks=tasks,
            scores=scores,
        )
