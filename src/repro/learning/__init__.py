"""Continuous learning: telemetry -> retrain -> shadow-eval -> promote.

The serving stack streams live races (:mod:`repro.serving.sessions`) and
serves durable model artifacts (:mod:`repro.artifacts`); this package
closes the loop so the deployed forecaster improves from the races it
serves:

* :class:`TelemetryAccumulator` drains completed live sessions and offline
  :class:`~repro.simulation.telemetry.RaceTelemetry` files into versioned,
  content-fingerprinted training windows (:class:`TrainingWindow`);
* :class:`RetrainJob` fits (or fine-tunes) a forecaster family on a window
  through the resumable :class:`~repro.nn.Trainer` checkpoints, so a job
  killed mid-training resumes *bit-exactly* — the finished candidate
  artifact is byte-identical to an uninterrupted run's;
* :class:`ShadowEvaluator` replays a window's held-out races through both
  the candidate and the live champion via
  :class:`~repro.serving.ForecastService`, scoring rank-forecast accuracy
  deltas under deterministic seeded RNG;
* :class:`PromotionManager` flips champion/challenger *aliases* in the
  artifact catalog (wire schema v6 exposes them on ``/v1/models``), with a
  journal of every decision and one-call rollback to the previous champion
  — byte-identical to never having promoted.

``repro-learn`` (:mod:`repro.learning.cli`) drives each stage from the
command line; ``python -m repro.learning.smoke`` runs the whole loop as
real subprocesses against a scratch store (the CI gate).
"""

from .promote import PromotionManager
from .retrain import RetrainJob
from .shadow import ShadowEvaluator, ShadowReport
from .windows import TelemetryAccumulator, TrainingWindow

__all__ = [
    "PromotionManager",
    "RetrainJob",
    "ShadowEvaluator",
    "ShadowReport",
    "TelemetryAccumulator",
    "TrainingWindow",
]
