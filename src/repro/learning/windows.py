"""Telemetry accumulation into versioned, fingerprinted training windows.

The :class:`TelemetryAccumulator` is the ingest side of the continuous-
learning loop.  Races arrive from three directions — offline
:class:`~repro.simulation.telemetry.RaceTelemetry` files, freshly simulated
races, and the lap logs of completed live serving sessions
(:attr:`repro.serving.sessions.RaceSession.lap_log`) — and land in one
directory::

    <root>/
        index.json             # schema, races in arrival order, built windows
        races/<key>.npz        # one telemetry checkpoint per ingested race

Every race is keyed by ``<race_id>-<content fingerprint>``: re-ingesting
the same race (a retried drain, the same file added twice) is a no-op, and
two different runnings of the same event never collide.  The fingerprint is
:func:`repro.artifacts.fingerprint_series` over the race's feature series —
the same function that keys the artifact cache — so a training window's
fingerprint composes directly into the candidate artifact's
``data_fingerprint``.

A :class:`TrainingWindow` is an immutable view over the accumulated races:
all-but-the-last ``holdout`` races (in arrival order) train the candidate,
the most recent ``holdout`` races are held out for shadow evaluation.
Windows are registered in the index under a content-derived id, so the
retrain CLI can name a window across processes and a window id never means
two different datasets.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..artifacts import fingerprint_series
from ..data.features import build_race_features
from ..simulation.telemetry import LapRecord, RaceTelemetry
from ..simulation.track import TrackSpec, track_for_year

__all__ = ["TelemetryAccumulator", "TrainingWindow"]


def _lap_record_from_wire(document: dict, elapsed_time: float) -> LapRecord:
    """One wire-form lap record -> data-layer record.

    Wire lap records (``repro.serving.wire.lap_record_to_wire``) carry no
    ``lap`` or ``elapsed_time`` — the lap number travels on the envelope
    and the cumulative time is reconstructed by the caller's per-car
    running sum of lap times.
    """
    return LapRecord(
        car_id=int(document["car_id"]),
        lap=0,  # patched by the caller, which knows the envelope lap
        rank=int(document["rank"]),
        lap_time=float(document["lap_time"]),
        elapsed_time=float(elapsed_time),
        time_behind_leader=float(document["time_behind_leader"]),
        is_pit=bool(document.get("pit", False)),
        is_caution=bool(document.get("caution", False)),
    )


def records_from_lap_log(lap_log: Sequence[Tuple[int, Sequence]]) -> List[LapRecord]:
    """Flatten a session's ``(lap, records)`` log into data-layer records.

    Accepts both record forms a :class:`~repro.serving.sessions.RaceSession`
    may have observed: raw :class:`LapRecord` objects (in-process feeds) and
    wire dictionaries (HTTP/worker feeds).  Wire records carry no elapsed
    time, so it is reconstructed as each car's running sum of lap times —
    exactly how the simulator accumulates it on the way out.
    """
    records: List[LapRecord] = []
    elapsed: Dict[int, float] = {}
    for lap, lap_records in sorted(lap_log, key=lambda item: int(item[0])):
        for record in lap_records:
            if isinstance(record, LapRecord):
                records.append(
                    record if record.lap == int(lap) else LapRecord(
                        car_id=record.car_id,
                        lap=int(lap),
                        rank=record.rank,
                        lap_time=record.lap_time,
                        elapsed_time=record.elapsed_time,
                        time_behind_leader=record.time_behind_leader,
                        is_pit=record.is_pit,
                        is_caution=record.is_caution,
                    )
                )
                continue
            car_id = int(record["car_id"])
            elapsed[car_id] = elapsed.get(car_id, 0.0) + float(record["lap_time"])
            wire_record = _lap_record_from_wire(record, elapsed[car_id])
            records.append(
                LapRecord(
                    car_id=wire_record.car_id,
                    lap=int(lap),
                    rank=wire_record.rank,
                    lap_time=wire_record.lap_time,
                    elapsed_time=wire_record.elapsed_time,
                    time_behind_leader=wire_record.time_behind_leader,
                    is_pit=wire_record.is_pit,
                    is_caution=wire_record.is_caution,
                )
            )
    return records


def _generic_track(event: str, num_laps: int, num_cars: int) -> TrackSpec:
    """A placeholder spec for events with no catalogued track geometry."""
    return TrackSpec(
        name=event,
        length_miles=2.5,
        shape="oval",
        total_laps=max(int(num_laps), 1),
        avg_speed_mph=220.0,
        num_cars=max(int(num_cars), 1),
        pit_lane_loss_s=45.0,
    )


@dataclass
class TrainingWindow:
    """An immutable train/holdout split over accumulated races."""

    window_id: str
    fingerprint: str
    train_keys: List[str]
    holdout_keys: List[str]
    accumulator: "TelemetryAccumulator" = field(repr=False)

    @property
    def num_races(self) -> int:
        return len(self.train_keys) + len(self.holdout_keys)

    def train_races(self) -> List[RaceTelemetry]:
        return [self.accumulator.race(key) for key in self.train_keys]

    def holdout_races(self) -> List[RaceTelemetry]:
        return [self.accumulator.race(key) for key in self.holdout_keys]

    def train_series(self) -> List:
        """Feature series of every training race, flattened in race order."""
        series = []
        for race in self.train_races():
            series.extend(build_race_features(race))
        return series

    def holdout_series(self) -> List:
        series = []
        for race in self.holdout_races():
            series.extend(build_race_features(race))
        return series

    def describe(self) -> dict:
        return {
            "window": self.window_id,
            "fingerprint": self.fingerprint,
            "train_races": list(self.train_keys),
            "holdout_races": list(self.holdout_keys),
        }


class TelemetryAccumulator:
    """Directory-backed ingest of races into fingerprinted windows."""

    INDEX_NAME = "index.json"
    INDEX_SCHEMA_VERSION = 1

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(os.path.join(self.root, "races"), exist_ok=True)
        self._index: dict = {"races": {}, "windows": {}}
        self._read_index()

    # ------------------------------------------------------------------
    # index bookkeeping
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def _read_index(self) -> None:
        if not os.path.exists(self.index_path):
            return
        with open(self.index_path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        version = int(document.get("schema_version", 0))
        if version > self.INDEX_SCHEMA_VERSION:
            raise ValueError(
                f"accumulator index schema version {version} is newer than "
                f"supported version {self.INDEX_SCHEMA_VERSION}"
            )
        self._index = {
            "races": dict(document.get("races", {})),
            "windows": dict(document.get("windows", {})),
        }

    def _write_index(self) -> None:
        document = {"schema_version": self.INDEX_SCHEMA_VERSION, **self._index}
        tmp_path = self.index_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        os.replace(tmp_path, self.index_path)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def add_race(self, telemetry: RaceTelemetry, source: str = "offline") -> dict:
        """Register one race; re-adding identical content is a no-op.

        Returns the index entry (with its ``key`` and ``new`` flag).  The
        dedup key combines the race id with the content fingerprint, so a
        retried session drain never double-counts a race while two distinct
        runnings of the same event stay distinct.
        """
        fingerprint = fingerprint_series(build_race_features(telemetry))
        key = f"{telemetry.race_id}-{fingerprint}"
        existing = self._index["races"].get(key)
        if existing is not None:
            return {"key": key, "new": False, **existing}
        file_name = f"{key}.npz"
        telemetry.save(os.path.join(self.root, "races", file_name))
        entry = {
            "file": file_name,
            "event": telemetry.event,
            "year": telemetry.year,
            "laps": telemetry.num_laps,
            "cars": len(telemetry.car_ids()),
            "records": len(telemetry),
            "fingerprint": fingerprint,
            "source": str(source),
            "added_at": time.time(),
        }
        self._index["races"][key] = entry
        self._write_index()
        return {"key": key, "new": True, **entry}

    def add_file(self, path: str) -> dict:
        """Ingest an on-disk telemetry file (npz checkpoint or textual log)."""
        return self.add_race(RaceTelemetry.load(path), source=os.path.abspath(path))

    def add_session(
        self,
        lap_log: Sequence[Tuple[int, Sequence]],
        event: str,
        year: int,
        track: Optional[TrackSpec] = None,
        source: str = "session",
    ) -> dict:
        """Drain one completed live session's lap log into the accumulator.

        ``lap_log`` is what :class:`~repro.serving.sessions.RaceSession`
        retained (``session.lap_log``); records may be wire dictionaries or
        raw :class:`LapRecord` objects.  Events without a catalogued track
        get a generic :class:`TrackSpec` sized to the observed field.
        """
        records = records_from_lap_log(lap_log)
        if not records:
            raise ValueError("session lap log is empty; nothing to accumulate")
        if track is None:
            try:
                track = track_for_year(event, int(year))
            except (KeyError, ValueError):
                num_laps = max(r.lap for r in records)
                num_cars = len({r.car_id for r in records})
                track = _generic_track(event, num_laps, num_cars)
        race = RaceTelemetry(event=event, year=int(year), track=track, records=records)
        return self.add_race(race, source=source)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def race_keys(self) -> List[str]:
        """Ingested race keys in arrival order."""
        return list(self._index["races"])

    def races(self) -> Dict[str, dict]:
        return {key: dict(entry) for key, entry in self._index["races"].items()}

    def race(self, key: str) -> RaceTelemetry:
        entry = self._index["races"].get(key)
        if entry is None:
            raise KeyError(f"race {key!r} is not in the accumulator at {self.root}")
        return RaceTelemetry.load(os.path.join(self.root, "races", entry["file"]))

    def __len__(self) -> int:
        return len(self._index["races"])

    # ------------------------------------------------------------------
    # windows
    # ------------------------------------------------------------------
    def build_window(self, holdout: int = 1) -> TrainingWindow:
        """Split the accumulated races into a registered training window.

        The most recent ``holdout`` races (arrival order) are held out for
        shadow evaluation; everything earlier trains the candidate.  The
        window id derives from the member races' content fingerprints, so
        building the same window twice returns the same id and a window id
        can never silently mean different data.
        """
        holdout = int(holdout)
        if holdout < 1:
            raise ValueError("holdout must be >= 1 (shadow eval needs held-out races)")
        keys = self.race_keys()
        if len(keys) <= holdout:
            raise ValueError(
                f"need more than {holdout} accumulated race(s) to hold {holdout} "
                f"out; have {len(keys)}"
            )
        train_keys = keys[:-holdout]
        holdout_keys = keys[-holdout:]
        digest = hashlib.sha256()
        for key in keys:
            digest.update(self._index["races"][key]["fingerprint"].encode())
            digest.update(b"|")
        digest.update(f"holdout={holdout}".encode())
        fingerprint = digest.hexdigest()[:12]
        window_id = f"win-{fingerprint}"
        if window_id not in self._index["windows"]:
            self._index["windows"][window_id] = {
                "fingerprint": fingerprint,
                "train": train_keys,
                "holdout": holdout_keys,
                "built_at": time.time(),
            }
            self._write_index()
        return TrainingWindow(
            window_id=window_id,
            fingerprint=fingerprint,
            train_keys=train_keys,
            holdout_keys=holdout_keys,
            accumulator=self,
        )

    def windows(self) -> Dict[str, dict]:
        return {wid: dict(entry) for wid, entry in self._index["windows"].items()}

    def window(self, window_id: str) -> TrainingWindow:
        """Reload a registered window by id (cross-process handoff)."""
        entry = self._index["windows"].get(window_id)
        if entry is None:
            raise KeyError(
                f"window {window_id!r} is not registered in the accumulator at "
                f"{self.root}"
            )
        return TrainingWindow(
            window_id=window_id,
            fingerprint=entry["fingerprint"],
            train_keys=list(entry["train"]),
            holdout_keys=list(entry["holdout"]),
            accumulator=self,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TelemetryAccumulator(root={self.root!r}, races={len(self)}, "
            f"windows={len(self._index['windows'])})"
        )
