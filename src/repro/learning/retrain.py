"""Resumable retraining jobs: a training window in, a candidate artifact out.

A :class:`RetrainJob` is the middle stage of the continuous-learning loop.
It replicates the deep forecasters' ``fit()`` / ``fine_tune()`` sequence
exactly — dataset assembly, model construction, field-size recording, the
post-fit hooks — but routes the epoch loop through
``Trainer(checkpoint_dir=, resume=)`` (:mod:`repro.nn.trainer`), so a job
killed mid-training resumes **bit-exactly**:

* the deterministic prelude (window subsampling, shuffle-loader setup,
  weight initialisation) replays identically from the family's seed on a
  fresh process;
* the trainer checkpoint then restores weights, ADAM moments, scheduler /
  early-stopping counters and the data-order RNG *in place* — into the
  same generator the batch loader draws from — so the resumed epochs
  consume the exact random stream the uninterrupted run would have.

The finished candidate lands in the :class:`~repro.artifacts.ArtifactStore`
under the job's name with the window's content fingerprint as its
``data_fingerprint`` — so the byte-identity gate is simply comparing the
manifest's ``sha256`` between an interrupted-then-resumed job and an
uninterrupted one.

Job state is journaled to ``<job_dir>/job.json`` (``running`` ->
``interrupted`` -> ``completed``), which is what the CLI's ``--resume``
flag checks before re-entering a job directory.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from ..artifacts import ArtifactStore
from ..nn import Adam, Trainer
from .windows import TelemetryAccumulator, TrainingWindow

__all__ = ["RetrainJob", "make_forecaster", "FAMILY_CHOICES"]

#: CLI-friendly family names -> constructor resolution
FAMILY_CHOICES = (
    "deepar",
    "ranknet-mlp",
    "ranknet-oracle",
    "ranknet-joint",
    "transformer-mlp",
    "transformer-oracle",
)


def make_forecaster(family: str, config: Optional[dict] = None):
    """Instantiate a deep forecaster family from its CLI name.

    ``config`` passes through to the constructor (epochs, hidden_dim,
    seed, ...).  Imported lazily — ``repro.models`` pulls in the serving
    layer at import time.
    """
    from ..models import DeepARForecaster, RankNetForecaster, TransformerForecaster

    config = dict(config or {})
    family = str(family).lower()
    if family == "deepar":
        return DeepARForecaster(**config)
    backbone, _, variant = family.partition("-")
    variant = variant or "mlp"
    if backbone == "ranknet":
        return RankNetForecaster(variant=variant, **config)
    if backbone == "transformer":
        return TransformerForecaster(variant=variant, **config)
    raise ValueError(
        f"unknown forecaster family {family!r}; choices: {', '.join(FAMILY_CHOICES)}"
    )


class RetrainJob:
    """One retraining (or fine-tuning) job over a training window."""

    JOB_STATE_NAME = "job.json"

    def __init__(
        self,
        store: ArtifactStore,
        accumulator: TelemetryAccumulator,
        window_id: str,
        name: str,
        family: str = "deepar",
        config: Optional[dict] = None,
        base: Optional[str] = None,
        job_dir: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.accumulator = (
            accumulator
            if isinstance(accumulator, TelemetryAccumulator)
            else TelemetryAccumulator(accumulator)
        )
        self.window: TrainingWindow = self.accumulator.window(window_id)
        self.name = str(name)
        self.family = str(family)
        self.config = dict(config or {})
        self.base = base
        self.job_dir = job_dir
        self.resume = bool(resume)
        if self.resume and self.job_dir is None:
            raise ValueError("resume=True requires a job_dir holding the checkpoint")

    # ------------------------------------------------------------------
    # job-state journal
    # ------------------------------------------------------------------
    @property
    def state_path(self) -> Optional[str]:
        if self.job_dir is None:
            return None
        return os.path.join(self.job_dir, self.JOB_STATE_NAME)

    def _write_state(self, status: str, **extra) -> None:
        if self.state_path is None:
            return
        os.makedirs(self.job_dir, exist_ok=True)
        document = {
            "status": status,
            "name": self.name,
            "family": self.family,
            "window": self.window.window_id,
            "data_fingerprint": self.window.fingerprint,
            "base": self.base,
            "config": self.config,
            "updated_at": time.time(),
            **extra,
        }
        tmp_path = self.state_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        os.replace(tmp_path, self.state_path)

    def state(self) -> dict:
        if self.state_path is None or not os.path.exists(self.state_path):
            return {}
        with open(self.state_path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _build_forecaster(self):
        if self.base is not None:
            # fine-tune mode: warm-start from a registered artifact.  The
            # loaded forecaster's RNG is restored to its saved position, so
            # both an interrupted and an uninterrupted job replay the same
            # prelude draws from the same starting point.
            forecaster = self.store.load_model(self.base)
            leftover = sorted(set(self.config) - {"epochs"})
            if leftover:
                raise ValueError(
                    "only 'epochs' may be configured on a fine-tune job — the "
                    f"base artifact fixes the architecture; got {', '.join(leftover)}"
                )
            return forecaster
        return make_forecaster(self.family, self.config)

    def run(self, stop_after_epochs: Optional[int] = None) -> dict:
        """Train the candidate; returns the job record.

        ``stop_after_epochs`` truncates the epoch loop early — the
        simulated interruption used by the tests and the smoke gate.  A
        truncated job writes no artifact; re-running with ``resume=True``
        (same ``job_dir``) completes it bit-exactly.
        """
        forecaster = self._build_forecaster()
        fine_tune = self.base is not None
        if fine_tune:
            # fine_tune's default epoch budget, overridable via config
            total_epochs = int(self.config.get("epochs", 5))
        else:
            total_epochs = int(forecaster.epochs)
        max_epochs = total_epochs
        interrupted = False
        if stop_after_epochs is not None and int(stop_after_epochs) < total_epochs:
            max_epochs = int(stop_after_epochs)
            interrupted = True
        self._write_state("running", epochs=total_epochs, max_epochs=max_epochs)

        train_series = self.window.train_series()
        if fine_tune:
            # mirror DeepForecasterBase.fine_tune: drop carried warm-up
            # states, re-target the field, then assemble the loaders
            for engine in forecaster._fleet_engines.values():
                engine.reset_cache()
            if train_series:
                forecaster.record_field_size(train_series)
            _, train_loader = forecaster._make_batches(train_series, shuffle=True)
            optimizer = Adam(forecaster.model.parameters(), lr=forecaster.lr * 0.3)
            # patience windows sized to the *total* job length, exactly as
            # fine_tune sizes them — and identical between a truncated run
            # and its resumed continuation, or the checkpoints diverge
            lr_patience = max(total_epochs, 1)
            stop_patience = max(total_epochs, 1)
        else:
            # mirror DeepForecasterBase.fit: loaders first (they consume
            # subsample draws from the family RNG), then the model build
            _, train_loader = forecaster._make_batches(train_series, shuffle=True)
            forecaster.model = forecaster._build_model(
                forecaster.feature_spec.num_covariates
            )
            forecaster._fleet_engines = {}
            forecaster.record_field_size(train_series)
            optimizer = Adam(forecaster.model.parameters(), lr=forecaster.lr)
            lr_patience = 10
            stop_patience = max(total_epochs, 10)

        trainer = Trainer(
            forecaster.model,
            optimizer=optimizer,
            max_epochs=max_epochs,
            lr_patience=lr_patience,
            early_stopping_patience=stop_patience,
            checkpoint_dir=self.job_dir,
            resume=self.resume,
            checkpoint_every=1,
            checkpoint_rng=forecaster.rng,
        )
        forecaster.history_ = trainer.fit(forecaster._wrap_loader(train_loader))

        if interrupted:
            record = {
                "status": "interrupted",
                "name": self.name,
                "window": self.window.window_id,
                "epochs_completed": max_epochs,
                "epochs_total": total_epochs,
            }
            self._write_state("interrupted", epochs=total_epochs, max_epochs=max_epochs)
            return record

        if not fine_tune:
            forecaster._post_fit(train_series)
        entry = self.store.save_model(
            self.name, forecaster, data_fingerprint=self.window.fingerprint
        )
        record = {
            "status": "completed",
            "name": self.name,
            "window": self.window.window_id,
            "data_fingerprint": self.window.fingerprint,
            "sha256": entry["sha256"],
            "epochs_total": total_epochs,
        }
        self._write_state("completed", sha256=entry["sha256"], epochs=total_epochs)
        return record
