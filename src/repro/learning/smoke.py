"""End-to-end continuous-learning smoke (the CI gate for ``repro-learn``).

One command::

    python -m repro.learning.smoke --dir /tmp/learn-smoke

Every stage runs as a **real subprocess** of the ``repro-learn`` CLI
against scratch on-disk state — the same process boundaries a deployment
has:

1. three tiny races are simulated into a telemetry accumulator and split
   into a training window (one race held out);
2. a champion is retrained on the window; then the **resume gate**: a
   candidate job truncated after one epoch (exit 3, no artifact) and
   resumed from its checkpoint must produce an artifact whose manifest
   ``sha256`` equals an uninterrupted run's — kill + resume is bit-exact;
3. the candidate is shadow-evaluated against the champion twice with the
   same seed — the reports must match exactly (deterministic scoring);
4. ``repro-serve`` is started on the store and the promotion lifecycle
   runs over HTTP: promote the champion under the ``champion`` alias,
   forecast through the alias (byte-identical to addressing the champion
   directly), promote the candidate, then **rollback** — after which the
   aliased forecast must be byte-identical to the pre-promotion baseline,
   and unloading an aliased model must fail with the structured
   ``model_aliased`` error.

Exit status is non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional

import numpy as np

CHAMPION = "champ"
CANDIDATE_A = "cand-a"
CANDIDATE_B = "cand-b"
ALIAS = "champion"

_TINY = {
    "encoder_length": 12,
    "decoder_length": 2,
    "hidden_dim": 8,
    "num_layers": 1,
    "epochs": 2,
    "batch_size": 32,
    "max_train_windows": 120,
}
_SEEDS = (11, 12, 13)


def _learn(*args: str, expect: int = 0) -> str:
    """Run one ``repro-learn`` stage as a subprocess; returns its stdout."""
    process = subprocess.run(
        [sys.executable, "-m", "repro.learning.cli", *args],
        capture_output=True,
        text=True,
        env=os.environ.copy(),
        timeout=600,
    )
    if process.returncode != expect:
        raise RuntimeError(
            f"repro-learn {' '.join(args[:1])} exited {process.returncode} "
            f"(expected {expect}):\n{process.stdout}\n{process.stderr}"
        )
    return process.stdout


def _config(seed: int) -> str:
    return json.dumps({**_TINY, "seed": seed})


def _named_batch(forecaster, series, model: str) -> List:
    from ..serving.client import ForecastClient

    return [
        ForecastClient.request(
            model,
            forecaster._history_target(series, 20 + i),
            forecaster._history_covariates(series, 20 + i),
            forecaster._future_covariates(series, 20 + i, 2),
            n_samples=7,
            rng=seed,
            key=(series.race_id, series.car_id),
            origin=20 + i,
        )
        for i, seed in enumerate(_SEEDS)
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Continuous-learning loop smoke check")
    parser.add_argument("--dir", required=True, help="scratch directory for all loop state")
    args = parser.parse_args(argv)
    acc = os.path.join(args.dir, "accumulator")
    store = os.path.join(args.dir, "store")
    os.makedirs(store, exist_ok=True)

    # ------------------------------------------------------------------
    # 1. accumulate a tiny window (3 simulated races, last one held out)
    print("accumulating 3 simulated races...", flush=True)
    for seed in (3, 4, 5):
        _learn(
            "simulate", "--accumulator", acc, "--event", "Indy500", "--year", "2019",
            "--seed", str(seed), "--laps", "45", "--cars", "8",
        )
    window_doc = json.loads(_learn("window", "--accumulator", acc, "--json"))
    window = window_doc["window"]
    print(f"OK: window {window} ({len(window_doc['train_races'])} train / "
          f"{len(window_doc['holdout_races'])} holdout races)")

    # ------------------------------------------------------------------
    # 2. retrain the champion, then the kill+resume bit-exactness gate
    common = ("--accumulator", acc, "--window", window, "--store", store,
              "--family", "deepar", "--json")
    print("retraining the champion...", flush=True)
    _learn("retrain", *common, "--name", CHAMPION, "--config", _config(5))

    print("retraining a candidate with a mid-job interruption...", flush=True)
    job_a = os.path.join(args.dir, "job-a")
    _learn(
        "retrain", *common, "--name", CANDIDATE_A, "--config", _config(6),
        "--job-dir", job_a, "--stop-after", "1", expect=3,
    )
    resumed = json.loads(_learn(
        "retrain", *common, "--name", CANDIDATE_A, "--config", _config(6),
        "--job-dir", job_a, "--resume",
    ))
    uninterrupted = json.loads(_learn(
        "retrain", *common, "--name", CANDIDATE_B, "--config", _config(6),
        "--job-dir", os.path.join(args.dir, "job-b"),
    ))
    if resumed["sha256"] != uninterrupted["sha256"]:
        print("FAIL: resumed candidate differs from the uninterrupted run")
        return 1
    print(f"OK: kill+resume is bit-exact (sha256 {resumed['sha256'][:12]}...)")

    # ------------------------------------------------------------------
    # 3. deterministic shadow evaluation
    print("shadow-evaluating candidate vs champion (twice)...", flush=True)
    shadow_args = (
        "shadow", "--accumulator", acc, "--window", window, "--store", store,
        "--candidate", CANDIDATE_A, "--champion", CHAMPION,
        "--seed", "7", "--samples", "20", "--stride", "6", "--json",
    )
    first = json.loads(_learn(*shadow_args))
    second = json.loads(_learn(*shadow_args))
    if first != second:
        print("FAIL: two shadow evaluations with the same seed disagree")
        return 1
    print(f"OK: shadow scores are deterministic "
          f"(mae delta {first['deltas']['mae']:+.4f}, recommend={first['recommend']})")

    # ------------------------------------------------------------------
    # 4. promotion lifecycle over HTTP against a live gateway
    from ..artifacts import ArtifactStore
    from ..serving.client import ForecastClient, ServerError
    from ..serving.smoke import _spawn_server

    config_path = os.path.join(args.dir, "serve.json")
    with open(config_path, "w", encoding="utf-8") as fh:
        json.dump({"store": store, "port": 0, "batch_window_ms": 2.0}, fh)
    print("starting repro-serve as a subprocess...", flush=True)
    process, port = _spawn_server(config_path)
    try:
        client = ForecastClient(port=port)
        reference = ArtifactStore(store)
        champion = reference.load_model(CHAMPION)
        candidate = reference.load_model(CANDIDATE_A)
        from ..data.features import build_race_features
        from .windows import TelemetryAccumulator

        holdout = TelemetryAccumulator(acc).window(window).holdout_races()[0]
        series = build_race_features(holdout)[0]

        client.promote(ALIAS, CHAMPION, note="initial champion")
        via_alias = client.forecast(_named_batch(champion, series, ALIAS))
        direct = client.forecast(_named_batch(champion, series, CHAMPION))
        if not all(np.array_equal(a, d) for a, d in zip(via_alias, direct)):
            print("FAIL: aliased forecast differs from addressing the champion directly")
            return 1
        baseline = via_alias
        print("OK: alias resolves at submit time (byte-identical to direct)")

        promoted = client.promote(ALIAS, CANDIDATE_A, note="shadow-eval winner")
        if promoted["previous"] != CHAMPION:
            print(f"FAIL: promotion recorded previous={promoted['previous']!r}")
            return 1
        via_alias = client.forecast(_named_batch(candidate, series, ALIAS))
        direct = client.forecast(_named_batch(candidate, series, CANDIDATE_A))
        if not all(np.array_equal(a, d) for a, d in zip(via_alias, direct)):
            print("FAIL: promoted alias does not serve the candidate")
            return 1
        print("OK: promotion re-pointed the champion alias to the candidate")

        try:
            client.unload(CANDIDATE_A)
        except ServerError as exc:
            if exc.code != "model_aliased":
                print(f"FAIL: unloading an aliased model raised {exc.code!r}")
                return 1
            print("OK: unloading an aliased model is a structured model_aliased error")
        else:
            print("FAIL: unloading an aliased model silently succeeded")
            return 1

        client.rollback(ALIAS)
        after_rollback = client.forecast(_named_batch(champion, series, ALIAS))
        if not all(np.array_equal(a, b) for a, b in zip(after_rollback, baseline)):
            print("FAIL: rollback is not byte-identical to the pre-promotion champion")
            return 1
        print("OK: rollback serves the previous champion byte-identically")
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
