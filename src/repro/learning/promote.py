"""Champion/challenger promotion over artifact-catalog aliases.

The :class:`PromotionManager` is the decision ledger of the learning loop.
A *promotion* re-points a mutable alias (``champion``) at a new target
artifact; a *rollback* re-points it at whatever it targeted before the
last promotion.  Neither ever rewrites an artifact — the previous champion
stays on disk byte-for-byte, which is what makes rollback *byte-identical*
to never having promoted: the alias resolves back to the exact payload
(same manifest ``sha256``) that served before.

Every decision is appended to ``promotions.jsonl`` in the store root —
one JSON record per line with the alias, the new target, the previous
target and an optional note — so the full promotion history of a store is
replayable and auditable, and ``rollback`` needs no extra state: the
previous champion is read from the journal's last promotion record.

This module deliberately imports only :mod:`repro.artifacts` — the serving
gateway imports it lazily from its ``/v1/models/aliases`` handlers, so a
serving-layer import here would be circular.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional

from ..artifacts import ArtifactStore

__all__ = ["PromotionManager"]


class PromotionManager:
    """Journaled champion/challenger flips over a store's alias table."""

    JOURNAL_NAME = "promotions.jsonl"

    def __init__(self, store) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.store.root, self.JOURNAL_NAME)

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> dict:
        line = json.dumps(record, sort_keys=True)
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    def history(self, alias: Optional[str] = None) -> List[dict]:
        """Every journaled decision, oldest first (optionally one alias's)."""
        if not os.path.exists(self.journal_path):
            return []
        records = []
        with open(self.journal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if alias is None or record.get("alias") == alias:
                    records.append(record)
        return records

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def promote(self, alias: str, target: str, note: str = "") -> dict:
        """Point ``alias`` at ``target``; journals the decision.

        The first promotion of an alias creates it (``previous`` is
        ``None``).  Promoting the current target again is refused — a
        no-op promotion would put a rollback-to-itself record in the
        journal and make the next rollback silently do nothing.
        """
        previous = self.store.aliases().get(alias)
        if previous == target:
            raise ValueError(
                f"alias {alias!r} already points at {target!r}; nothing to promote"
            )
        # validates the target (registered, not itself an alias) and the
        # alias name (no artifact shadowing) before anything is journaled
        self.store.set_alias(alias, target)
        return self._append(
            {
                "at": time.time(),
                "action": "promote",
                "alias": alias,
                "target": target,
                "previous": previous,
                "note": str(note),
            }
        )

    def rollback(self, alias: str) -> dict:
        """One-call revert of ``alias`` to the champion before its last flip.

        Reads the journal's most recent record for the alias and re-points
        at that record's ``previous`` target.  Rolling back past the first
        promotion (``previous`` is ``None``) is refused — there is no
        earlier champion to serve.
        """
        records = self.history(alias)
        if not records:
            raise ValueError(
                f"alias {alias!r} has no journaled promotions to roll back"
            )
        current = records[-1]["target"]
        previous = records[-1]["previous"]
        if previous is None:
            raise ValueError(
                f"alias {alias!r} has no previous champion (its first promotion "
                f"created it); delete the alias instead"
            )
        self.store.set_alias(alias, previous)
        return self._append(
            {
                "at": time.time(),
                "action": "rollback",
                "alias": alias,
                "target": previous,
                "previous": current,
                "note": "",
            }
        )
