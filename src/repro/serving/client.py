"""Stdlib HTTP client for the ``repro-serve`` gateway.

:class:`ForecastClient` speaks the ``v1`` wire protocol
(:mod:`repro.serving.wire`) over plain :mod:`http.client` — no third-party
dependencies, mirroring the server side.  It is the reference consumer
used by the tests, the examples, the serving benchmark and the CI smoke
step.

Reproducibility contract: every forecast request must carry its own RNG
stream (an integer seed or a live ``numpy`` ``Generator``), which the wire
protocol transports explicitly — the samples that come back are bitwise
identical to submitting the same request in-process, no matter how the
server's micro-batch scheduler coalesced it with other clients' traffic.

Resilience (:mod:`repro.serving.resilience`): the client owns the *retry*
half of the fault-tolerance story —

* ``timeout_s`` bounds every socket operation, so a hung gateway is a
  structured failure, not a hang;
* a :class:`~repro.serving.resilience.RetryPolicy` retries connection
  failures and retryable server envelopes (``overloaded``,
  ``circuit_open``, ``worker_restarting`` — a model replica mid-respawn
  after a crash — and other 5xx) on a *seeded* backoff schedule,
  honouring the server's ``retry_after_ms`` hints, so a worker restart
  is a short stall on the client, never an error surfaced to the caller;
* retried POSTs carry ``idempotency_key``s, so a request whose response
  was lost (not its execution) is answered from the server's replay cache
  — the retried result is byte-identical to the single-send result;
* ``deadline_ms`` rides along as the server-side budget of each request;
* :meth:`ForecastClient.run_scenario_iter` resumes a torn NDJSON stream
  from the last received event (``resume_from``) instead of starting
  over or double-yielding;
* a client-side :class:`~repro.serving.faults.FaultPlan` injects
  connection drops/delays deterministically, which is how the chaos
  harness proves all of the above.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.features import CarFeatureSeries
from . import wire
from .faults import FaultPlan
from .requests import ForecastRequest, NamedForecastRequest
from .resilience import RetryPolicy, sleep_schedule
from .wire import WireError

__all__ = ["ForecastClient", "LiveSessionClient", "ServerError"]


class ServerError(RuntimeError):
    """An error envelope returned by the gateway, surfaced client-side."""

    def __init__(self, code: str, message: str, status: int = 400, detail=None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.status = status
        self.detail = detail

    @classmethod
    def from_wire_error(cls, exc: WireError) -> "ServerError":
        return cls(exc.code, str(exc), status=exc.status, detail=exc.detail)

    @property
    def retry_after_ms(self) -> Optional[int]:
        """The server's backoff hint, when the envelope carried one."""
        if isinstance(self.detail, dict) and "retry_after_ms" in self.detail:
            return int(self.detail["retry_after_ms"])
        return None


class ForecastClient:
    """Thin, connection-per-call client for one gateway endpoint.

    Parameters
    ----------
    timeout_s:
        Socket timeout applied to every connection the client opens (the
        legacy ``timeout`` alias is accepted and means the same thing).
    retry:
        A :class:`~repro.serving.resilience.RetryPolicy`; ``None`` (the
        default) disables retries — every failure surfaces immediately.
    deadline_ms:
        Default server-side time budget attached to forecast/sweep/lap
        requests (the server sheds work still queued past the budget).
    faults:
        A client-side :class:`~repro.serving.faults.FaultPlan` for
        deterministic chaos runs (connection drops, delays).
    client_id:
        Stable prefix for generated idempotency keys; defaults to a fresh
        random token per client instance.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout_s = float(timeout if timeout_s is None else timeout_s)
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0 seconds")
        self.retry = retry
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)
        self.faults = faults
        self._token = str(client_id) if client_id else uuid.uuid4().hex[:12]
        self._key_lock = threading.Lock()
        self._key_counter = 0

    @property
    def timeout(self) -> float:
        """Back-compat alias of :attr:`timeout_s`."""
        return self.timeout_s

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def next_idempotency_key(self, kind: str) -> str:
        """A fresh key, unique across clients, stable across one call's retries."""
        with self._key_lock:
            self._key_counter += 1
            return f"{self._token}-{kind}-{self._key_counter}"

    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """One request with the retry policy applied.

        Only *safe* calls retry: GETs, and POSTs carrying an
        ``idempotency_key`` (the server's replay cache makes re-sending
        them indistinguishable from a single send).  Anything else fails
        on the first error — retrying a non-idempotent request could
        execute it twice.
        """
        retry_safe = method == "GET" or (
            isinstance(payload, dict) and payload.get("idempotency_key") is not None
        )
        delays = sleep_schedule(self.retry) if retry_safe else []
        attempt = 0
        while True:
            try:
                return self._call_once(method, path, payload, timeout_s=timeout_s)
            except ServerError as exc:
                hint = exc.retry_after_ms
                if (
                    not retry_safe
                    or attempt >= len(delays)
                    or not RetryPolicy.retryable_status(exc.status, exc.code)
                ):
                    raise
            except (OSError, http.client.HTTPException):
                # covers refused/reset/timed-out sockets and torn responses
                hint = None
                if not retry_safe or attempt >= len(delays):
                    raise
            delay = delays[attempt]
            if hint is not None:
                # honour the server's hint, bounded by the policy's ceiling
                delay = max(delay, min(hint / 1e3, self.retry.max_delay_s))
            if delay > 0:
                time.sleep(delay)
            attempt += 1

    def _client_fault(self, method: str, path: str):
        """Client-side ``before`` faults; returns the spec for ``after`` drops."""
        if self.faults is None:
            return None
        fault = self.faults.intercept(method, path)
        if fault is None:
            return None
        if fault.kind == "delay":
            time.sleep(fault.delay_s)
            return None
        if fault.kind == "error":
            raise ServerError("injected_fault", fault.message, status=fault.status)
        if fault.kind == "drop" and fault.when == "before":
            raise ConnectionError(f"injected connection drop before {method} {path}")
        return fault

    def _call_once(
        self,
        method: str,
        path: str,
        payload: Optional[dict],
        timeout_s: Optional[float] = None,
    ) -> dict:
        fault = self._client_fault(method, path)
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s if timeout_s is None else timeout_s
        )
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        if fault is not None and fault.kind == "drop":
            # when="after": the server did the work, the response is lost
            # on the wire — exactly the case idempotency keys dedupe
            raise ConnectionError(
                f"injected connection drop after {method} {path} (response lost)"
            )
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServerError(
                "malformed_response",
                f"server returned non-JSON payload (HTTP {response.status}): {exc}",
                status=response.status,
            ) from exc
        try:
            wire.raise_for_error(document)
            wire.check_envelope(document)
        except WireError as exc:
            raise ServerError.from_wire_error(exc) from None
        return document

    # ------------------------------------------------------------------
    # models
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/v1/health")

    def models(self) -> List[dict]:
        """The server's model catalog (name, family, loaded/pinned, ...)."""
        return self._call("GET", "/v1/models")["models"]

    def loaded(self) -> List[str]:
        return self._call("GET", "/v1/models")["loaded"]

    def load(self, name: str) -> dict:
        return self._call("POST", f"/v1/models/{name}/load")

    def unload(self, name: str) -> bool:
        return bool(self._call("POST", f"/v1/models/{name}/unload")["unloaded"])

    # ------------------------------------------------------------------
    # champion/challenger aliases (wire schema v6)
    # ------------------------------------------------------------------
    def aliases(self) -> Dict[str, str]:
        """All catalog aliases as ``{alias: target artifact name}``."""
        document = self._call("GET", "/v1/models/aliases")
        return {entry["alias"]: entry["target"] for entry in document["aliases"]}

    def resolve(self, alias: str) -> str:
        """The artifact name ``alias`` currently points at."""
        return str(self._call("GET", f"/v1/models/aliases/{alias}")["target"])

    def promote(self, alias: str, target: str, note: str = "") -> dict:
        """Point ``alias`` at ``target`` (journaled; warms the new replica)."""
        payload = wire.envelope("alias-promote", target=target)
        if note:
            payload["note"] = note
        return self._call("POST", f"/v1/models/aliases/{alias}/promote", payload)

    def rollback(self, alias: str) -> dict:
        """One-call revert of ``alias`` to the previous champion."""
        return self._call("POST", f"/v1/models/aliases/{alias}/rollback")

    # ------------------------------------------------------------------
    # forecasting
    # ------------------------------------------------------------------
    @staticmethod
    def request(
        model: str,
        history_target,
        history_covariates,
        future_covariates,
        n_samples: int = 100,
        rng: Union[np.random.Generator, int, None] = None,
        key=None,
        origin: Optional[int] = None,
        precision: str = "float64",
    ) -> NamedForecastRequest:
        """Build one named request (``rng`` seed/stream is mandatory).

        ``precision`` picks the compute tier (``"float64"`` — the exact
        reference, ``"float32"`` or ``"int8"``; see
        :mod:`repro.nn.precision`).
        """
        if rng is None:
            raise ValueError(
                "a per-request rng (integer seed or numpy Generator) is required: "
                "it is what makes the forecast reproducible regardless of how the "
                "server batches it"
            )
        return NamedForecastRequest(
            model=model,
            precision=precision,
            request=ForecastRequest(
                history_target=history_target,
                history_covariates=history_covariates,
                future_covariates=future_covariates,
                n_samples=n_samples,
                rng=rng,
                key=key,
                origin=origin,
            ),
        )

    def forecast(
        self,
        requests: Sequence[NamedForecastRequest],
        raise_errors: bool = True,
        deadline_ms: Optional[float] = None,
    ) -> List[Union[np.ndarray, ServerError]]:
        """Submit a batch of named requests; samples come back in order.

        With ``raise_errors=False`` failed requests are returned as
        :class:`ServerError` values in their slots instead of raising.
        The batch carries a generated ``idempotency_key``, so retries
        (when a :class:`RetryPolicy` is configured) return the same bytes
        as a single send even if the first response was lost.
        """
        payload = wire.forecast_batch_to_wire(
            requests,
            idempotency_key=self.next_idempotency_key("forecast"),
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
        )
        document = self._call("POST", "/v1/forecast", payload)
        entries = self._retry_failed_entries(
            requests, list(wire.results_from_wire(document)), deadline_ms
        )
        outcomes: List[Union[np.ndarray, ServerError]] = []
        for entry in entries:
            if isinstance(entry, WireError):
                error = ServerError.from_wire_error(entry)
                if raise_errors:
                    raise error
                outcomes.append(error)
            else:
                outcomes.append(entry)
        return outcomes

    def _retry_failed_entries(self, requests, entries, deadline_ms):
        """Re-submit retryable per-request failures on the seeded schedule.

        Entry-level errors — ``worker_restarting`` while the supervisor
        respawns a crashed replica, ``overloaded`` from a full worker
        queue — come back *inside* a 200 results envelope, so the
        transport-level retry in :meth:`_call` never sees them.  The
        failed slots are re-sent as a fresh batch under a fresh
        idempotency key (the original key would just replay the cached
        errors), honouring the largest ``retry_after_ms`` hint.  Safe by
        the RNG-transport contract: a re-submission returns exactly the
        bytes the first attempt would have.
        """
        if self.retry is None:
            return entries
        for delay in sleep_schedule(self.retry):
            failed = [
                index
                for index, entry in enumerate(entries)
                if isinstance(entry, WireError)
                and RetryPolicy.retryable_status(entry.status, entry.code)
            ]
            if not failed:
                break
            hints = [
                entries[index].detail["retry_after_ms"]
                for index in failed
                if isinstance(entries[index].detail, dict)
                and "retry_after_ms" in entries[index].detail
            ]
            if hints:
                delay = max(delay, min(max(hints) / 1e3, self.retry.max_delay_s))
            time.sleep(delay)
            payload = wire.forecast_batch_to_wire(
                [requests[index] for index in failed],
                idempotency_key=self.next_idempotency_key("forecast"),
                deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
            )
            document = self._call("POST", "/v1/forecast", payload)
            for slot, entry in zip(failed, wire.results_from_wire(document)):
                entries[slot] = entry
        return entries

    # ------------------------------------------------------------------
    # what-if scenarios (streamed)
    # ------------------------------------------------------------------
    def scenario_stream(self, spec_document: dict, seed: int, resume_from: int = 0):
        """``POST /v1/scenarios``: yield raw wire events as the server streams.

        The gateway answers with chunked NDJSON; ``http.client`` undoes the
        chunking transparently, so each ``readline`` is one wire document:
        ``scenario-start``, then one ``scenario-race`` per completed race,
        then ``scenario-summary``.  Mid-run failures arrive as a trailing
        ``error`` document and raise :class:`ServerError` here.  A stream
        cut before its terminating chunk (a crashed or faulted gateway)
        raises a structured ``truncated_stream`` error — never a hang and
        never silent truncation; ``resume_from`` asks the server to skip
        the first N events of the (deterministic) re-run.
        """
        payload = wire.scenario_request_to_wire(spec_document, seed, resume_from=resume_from)
        self._client_fault("POST", "/v1/scenarios")
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        received = 0
        try:
            connection.request(
                "POST",
                "/v1/scenarios",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status != 200:  # refused before streaming began
                document = json.loads(response.read().decode("utf-8"))
                try:
                    wire.raise_for_error(document)
                except WireError as exc:
                    raise ServerError.from_wire_error(exc) from None
                raise ServerError(
                    "malformed_response",
                    f"server answered HTTP {response.status} without an error envelope",
                    status=response.status,
                )
            # NB: not response.readline() — its chunked peek() path swallows
            # the IncompleteRead of a torn socket or a garbled chunk-size
            # line and reports a clean EOF instead.  read1() propagates the
            # decode error, so buffer lines over it ourselves: b"" then
            # means the terminating 0-chunk really was seen.
            buffered = b""
            while True:
                newline = buffered.find(b"\n")
                if newline < 0:
                    try:
                        block = response.read1(65536)
                    except (http.client.HTTPException, OSError) as exc:
                        raise ServerError(
                            "truncated_stream",
                            f"scenario stream torn after {received} event(s): {exc}",
                            status=503,
                        ) from exc
                    if not block:
                        if buffered.strip():
                            raise ServerError(
                                "truncated_stream",
                                f"scenario stream ended after {received} event(s) "
                                "with a partial trailing line",
                                status=503,
                            )
                        break
                    buffered += block
                    continue
                line = buffered[:newline].strip()
                buffered = buffered[newline + 1 :]
                if not line:
                    continue
                try:
                    document = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServerError(
                        "malformed_response", f"non-JSON stream line: {exc}"
                    ) from exc
                try:
                    wire.raise_for_error(document)
                    wire.check_envelope(document)
                except WireError as exc:
                    raise ServerError.from_wire_error(exc) from None
                received += 1
                yield document
        finally:
            connection.close()

    @staticmethod
    def _decode_event(document: dict) -> Tuple[str, object]:
        kind = document.get("kind")
        if kind == "scenario-start":
            return "start", document
        if kind == "scenario-race":
            return "race", wire.scenario_race_from_wire(document)
        if kind == "scenario-summary":
            return "summary", wire.scenario_summary_from_wire(document)
        raise ServerError("malformed_response", f"unexpected stream event kind {kind!r}")

    def run_scenario_iter(self, spec_document: dict, seed: int):
        """Decoded streaming view: yields ``(kind, payload)`` tuples.

        ``("start", info dict)``, then ``("race", ScenarioRaceResult)`` per
        race, then ``("summary", ScenarioSummary)``.

        With a :class:`RetryPolicy` configured, a ``truncated_stream``
        failure (or a refused reconnect) resumes from the last event
        received: the server re-runs the deterministic scenario and skips
        the events this iterator already yielded, so the concatenation of
        attempts is event-for-event identical to an unbroken stream — no
        duplicates, no holes.
        """
        delays = sleep_schedule(self.retry)
        received = 0
        attempt = 0
        while True:
            saw_summary = False
            try:
                for document in self.scenario_stream(
                    spec_document, seed, resume_from=received
                ):
                    received += 1
                    event = self._decode_event(document)
                    saw_summary = saw_summary or event[0] == "summary"
                    yield event
            except ServerError as exc:
                retryable = exc.code == "truncated_stream" or RetryPolicy.retryable_status(
                    exc.status, exc.code
                )
                if not retryable or attempt >= len(delays):
                    raise
                hint = exc.retry_after_ms
            except (OSError, http.client.HTTPException):
                if attempt >= len(delays):
                    raise
                hint = None
            else:
                if saw_summary:
                    return
                # the server ended the stream cleanly but never sent the
                # summary (it drained the connection mid-run)
                if attempt >= len(delays):
                    raise ServerError(
                        "truncated_stream",
                        f"scenario stream ended after {received} event(s) "
                        "without a summary",
                        status=503,
                    )
                hint = None
            delay = delays[attempt]
            if hint is not None:
                delay = max(delay, min(hint / 1e3, self.retry.max_delay_s))
            if delay > 0:
                time.sleep(delay)
            attempt += 1

    def run_scenario(self, spec_document: dict, seed: int):
        """Run a scenario to completion: ``(race results, summary)``.

        Byte-identical (document-for-document) to the in-process
        ``repro-scenarios`` run of the same spec under the same seed.
        """
        results, summary = [], None
        for kind, payload in self.run_scenario_iter(spec_document, seed):
            if kind == "race":
                results.append(payload)
            elif kind == "summary":
                summary = payload
        if summary is None:
            raise ServerError("malformed_response", "scenario stream ended without a summary")
        return results, summary

    # ------------------------------------------------------------------
    # strategy sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        model: str,
        series: CarFeatureSeries,
        origins: Sequence[int],
        horizon: int,
        rng: Union[np.random.Generator, int, None] = None,
        deadline_ms: Optional[float] = None,
        **options,
    ) -> List:
        """Run ``PitStrategyOptimizer.sweep`` on the served model.

        ``options`` forwards ``earliest``/``latest``/``step``/``mode``/
        ``n_samples``/``field_size``/``precision`` (compute tier; the
        default ``"float64"`` sweep stays bitwise).  Returns ``StrategySweepPoint``
        objects bitwise equal to the in-process sweep seeded with the same
        ``rng``.
        """
        payload = wire.sweep_request_to_wire(
            model,
            series,
            origins,
            horizon,
            rng=rng,
            idempotency_key=self.next_idempotency_key("sweep"),
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
            **options,
        )
        return wire.sweep_points_from_wire(self._call("POST", "/v1/strategy/sweep", payload))

    # ------------------------------------------------------------------
    # live sessions
    # ------------------------------------------------------------------
    def sessions(self) -> List[dict]:
        return self._call("GET", "/v1/sessions")["sessions"]

    def open_session(
        self,
        model: str,
        horizon: int = 2,
        n_samples: int = 50,
        min_history: int = 10,
        rng: Union[np.random.Generator, int, None] = None,
        delay: Optional[int] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        stride: int = 1,
        event: str = "live",
        year: int = 0,
        precision: str = "float64",
        timeout_s: Optional[float] = None,
    ) -> "LiveSessionClient":
        """Open a server-side race session and return its streaming handle.

        ``precision`` picks the compute tier every lap-streamed forecast of
        this session runs on (the default ``"float64"`` keeps the session
        byte-identical to previous protocol revisions).
        """
        if rng is None:
            raise ValueError(
                "a session rng (integer seed or numpy Generator) is required: "
                "it is what makes the lap-streamed forecasts reproducible"
            )
        payload = wire.envelope(
            "session-open",
            model=model,
            horizon=int(horizon),
            n_samples=int(n_samples),
            min_history=int(min_history),
            rng=wire.rng_to_wire(rng),
            delay=delay,
            start=start,
            stop=stop,
            stride=int(stride),
            event=str(event),
            year=int(year),
            precision=str(precision),
        )
        payload["idempotency_key"] = self.next_idempotency_key("open")
        document = self._call("POST", "/v1/sessions", payload)
        return LiveSessionClient(self, document["session"], info=document, timeout_s=timeout_s)


# canonical encoder lives in the wire module; kept under the old private
# name because session tooling imports it from here
_lap_record_to_wire = wire.lap_record_to_wire


class LiveSessionClient:
    """Client handle of one open server-side session: stream laps, read forecasts.

    ``timeout_s`` overrides the owning client's socket timeout for this
    session's calls.  Lap posts carry the deterministic idempotency key
    ``"<session>-lap-<lap>"``: a retried lap (lost response, or a gateway
    that crashed and recovered from its journal) is answered with the
    original forecasts, byte for byte, instead of an out-of-order error.
    """

    def __init__(
        self,
        client: ForecastClient,
        session_id: str,
        info: Optional[dict] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.client = client
        self.session_id = str(session_id)
        self.info = dict(info or {})
        self.timeout_s = None if timeout_s is None else float(timeout_s)
        self.closed = False

    def lap(
        self, lap: int, records: Iterable, deadline_ms: Optional[float] = None
    ) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """Feed one lap of telemetry; returns the newly-final forecasts.

        Same shape as ``RaceSession.observe_lap``:
        ``[(origin, {car_id: (n_samples, horizon) samples}), ...]``.
        """
        payload = wire.envelope(
            "session-lap",
            lap=int(lap),
            records=[_lap_record_to_wire(record) for record in records],
        )
        payload["idempotency_key"] = f"{self.session_id}-lap-{int(lap)}"
        if deadline_ms is None:
            deadline_ms = self.client.deadline_ms
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        document = self.client._call(
            "POST",
            f"/v1/sessions/{self.session_id}/lap",
            payload,
            timeout_s=self.timeout_s,
        )
        return self._decode_results(document)

    def close(self, drain: bool = True) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """Close the session; by default the held-back tail origins flush."""
        document = self.client._call(
            "DELETE",
            f"/v1/sessions/{self.session_id}",
            {"drain": bool(drain)},
            timeout_s=self.timeout_s,
        )
        self.closed = True
        return self._decode_results(document)

    @staticmethod
    def _decode_results(document) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        return [
            (
                int(item["origin"]),
                {
                    int(entry["car_id"]): wire.decode_array(entry["samples"])
                    for entry in item["forecasts"]
                },
            )
            for item in document.get("results", [])
        ]

    def __enter__(self) -> "LiveSessionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.closed:
            try:
                self.close(drain=False)
            except (ServerError, OSError):  # pragma: no cover - best-effort cleanup
                pass
