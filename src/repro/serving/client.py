"""Stdlib HTTP client for the ``repro-serve`` gateway.

:class:`ForecastClient` speaks the ``v1`` wire protocol
(:mod:`repro.serving.wire`) over plain :mod:`http.client` — no third-party
dependencies, mirroring the server side.  It is the reference consumer
used by the tests, the examples, the serving benchmark and the CI smoke
step.

Reproducibility contract: every forecast request must carry its own RNG
stream (an integer seed or a live ``numpy`` ``Generator``), which the wire
protocol transports explicitly — the samples that come back are bitwise
identical to submitting the same request in-process, no matter how the
server's micro-batch scheduler coalesced it with other clients' traffic.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.features import CarFeatureSeries
from . import wire
from .requests import ForecastRequest, NamedForecastRequest
from .wire import WireError

__all__ = ["ForecastClient", "LiveSessionClient", "ServerError"]


class ServerError(RuntimeError):
    """An error envelope returned by the gateway, surfaced client-side."""

    def __init__(self, code: str, message: str, status: int = 400, detail=None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.status = status
        self.detail = detail

    @classmethod
    def from_wire_error(cls, exc: WireError) -> "ServerError":
        return cls(exc.code, str(exc), status=exc.status, detail=exc.detail)


class ForecastClient:
    """Thin, connection-per-call client for one gateway endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 60.0) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServerError(
                "malformed_response",
                f"server returned non-JSON payload (HTTP {response.status}): {exc}",
                status=response.status,
            ) from exc
        try:
            wire.raise_for_error(document)
            wire.check_envelope(document)
        except WireError as exc:
            raise ServerError.from_wire_error(exc) from None
        return document

    # ------------------------------------------------------------------
    # models
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/v1/health")

    def models(self) -> List[dict]:
        """The server's model catalog (name, family, loaded/pinned, ...)."""
        return self._call("GET", "/v1/models")["models"]

    def loaded(self) -> List[str]:
        return self._call("GET", "/v1/models")["loaded"]

    def load(self, name: str) -> dict:
        return self._call("POST", f"/v1/models/{name}/load")

    def unload(self, name: str) -> bool:
        return bool(self._call("POST", f"/v1/models/{name}/unload")["unloaded"])

    # ------------------------------------------------------------------
    # forecasting
    # ------------------------------------------------------------------
    @staticmethod
    def request(
        model: str,
        history_target,
        history_covariates,
        future_covariates,
        n_samples: int = 100,
        rng: Union[np.random.Generator, int, None] = None,
        key=None,
        origin: Optional[int] = None,
    ) -> NamedForecastRequest:
        """Build one named request (``rng`` seed/stream is mandatory)."""
        if rng is None:
            raise ValueError(
                "a per-request rng (integer seed or numpy Generator) is required: "
                "it is what makes the forecast reproducible regardless of how the "
                "server batches it"
            )
        return NamedForecastRequest(
            model=model,
            request=ForecastRequest(
                history_target=history_target,
                history_covariates=history_covariates,
                future_covariates=future_covariates,
                n_samples=n_samples,
                rng=rng,
                key=key,
                origin=origin,
            ),
        )

    def forecast(
        self,
        requests: Sequence[NamedForecastRequest],
        raise_errors: bool = True,
    ) -> List[Union[np.ndarray, ServerError]]:
        """Submit a batch of named requests; samples come back in order.

        With ``raise_errors=False`` failed requests are returned as
        :class:`ServerError` values in their slots instead of raising.
        """
        document = self._call("POST", "/v1/forecast", wire.forecast_batch_to_wire(requests))
        outcomes: List[Union[np.ndarray, ServerError]] = []
        for entry in wire.results_from_wire(document):
            if isinstance(entry, WireError):
                error = ServerError.from_wire_error(entry)
                if raise_errors:
                    raise error
                outcomes.append(error)
            else:
                outcomes.append(entry)
        return outcomes

    # ------------------------------------------------------------------
    # what-if scenarios (streamed)
    # ------------------------------------------------------------------
    def scenario_stream(self, spec_document: dict, seed: int):
        """``POST /v1/scenarios``: yield raw wire events as the server streams.

        The gateway answers with chunked NDJSON; ``http.client`` undoes the
        chunking transparently, so each ``readline`` is one wire document:
        ``scenario-start``, then one ``scenario-race`` per completed race,
        then ``scenario-summary``.  Mid-run failures arrive as a trailing
        ``error`` document and raise :class:`ServerError` here.
        """
        payload = wire.scenario_request_to_wire(spec_document, seed)
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "POST",
                "/v1/scenarios",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status != 200:  # refused before streaming began
                document = json.loads(response.read().decode("utf-8"))
                try:
                    wire.raise_for_error(document)
                except WireError as exc:
                    raise ServerError.from_wire_error(exc) from None
                raise ServerError(
                    "malformed_response",
                    f"server answered HTTP {response.status} without an error envelope",
                    status=response.status,
                )
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServerError(
                        "malformed_response", f"non-JSON stream line: {exc}"
                    ) from exc
                try:
                    wire.raise_for_error(document)
                    wire.check_envelope(document)
                except WireError as exc:
                    raise ServerError.from_wire_error(exc) from None
                yield document
        finally:
            connection.close()

    def run_scenario_iter(self, spec_document: dict, seed: int):
        """Decoded streaming view: yields ``(kind, payload)`` tuples.

        ``("start", info dict)``, then ``("race", ScenarioRaceResult)`` per
        race, then ``("summary", ScenarioSummary)``.
        """
        for document in self.scenario_stream(spec_document, seed):
            kind = document.get("kind")
            if kind == "scenario-start":
                yield "start", document
            elif kind == "scenario-race":
                yield "race", wire.scenario_race_from_wire(document)
            elif kind == "scenario-summary":
                yield "summary", wire.scenario_summary_from_wire(document)
            else:
                raise ServerError(
                    "malformed_response", f"unexpected stream event kind {kind!r}"
                )

    def run_scenario(self, spec_document: dict, seed: int):
        """Run a scenario to completion: ``(race results, summary)``.

        Byte-identical (document-for-document) to the in-process
        ``repro-scenarios`` run of the same spec under the same seed.
        """
        results, summary = [], None
        for kind, payload in self.run_scenario_iter(spec_document, seed):
            if kind == "race":
                results.append(payload)
            elif kind == "summary":
                summary = payload
        if summary is None:
            raise ServerError("malformed_response", "scenario stream ended without a summary")
        return results, summary

    # ------------------------------------------------------------------
    # strategy sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        model: str,
        series: CarFeatureSeries,
        origins: Sequence[int],
        horizon: int,
        rng: Union[np.random.Generator, int, None] = None,
        **options,
    ) -> List:
        """Run ``PitStrategyOptimizer.sweep`` on the served model.

        ``options`` forwards ``earliest``/``latest``/``step``/``mode``/
        ``n_samples``/``field_size``.  Returns ``StrategySweepPoint``
        objects bitwise equal to the in-process sweep seeded with the same
        ``rng``.
        """
        payload = wire.sweep_request_to_wire(
            model, series, origins, horizon, rng=rng, **options
        )
        return wire.sweep_points_from_wire(self._call("POST", "/v1/strategy/sweep", payload))

    # ------------------------------------------------------------------
    # live sessions
    # ------------------------------------------------------------------
    def sessions(self) -> List[dict]:
        return self._call("GET", "/v1/sessions")["sessions"]

    def open_session(
        self,
        model: str,
        horizon: int = 2,
        n_samples: int = 50,
        min_history: int = 10,
        rng: Union[np.random.Generator, int, None] = None,
        delay: Optional[int] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        stride: int = 1,
        event: str = "live",
        year: int = 0,
    ) -> "LiveSessionClient":
        """Open a server-side race session and return its streaming handle."""
        if rng is None:
            raise ValueError(
                "a session rng (integer seed or numpy Generator) is required: "
                "it is what makes the lap-streamed forecasts reproducible"
            )
        payload = wire.envelope(
            "session-open",
            model=model,
            horizon=int(horizon),
            n_samples=int(n_samples),
            min_history=int(min_history),
            rng=wire.rng_to_wire(rng),
            delay=delay,
            start=start,
            stop=stop,
            stride=int(stride),
            event=str(event),
            year=int(year),
        )
        document = self._call("POST", "/v1/sessions", payload)
        return LiveSessionClient(self, document["session"], info=document)


def _lap_record_to_wire(record) -> dict:
    if isinstance(record, dict):
        return record
    # LapRecord-style objects
    return {
        "car_id": int(record.car_id),
        "rank": int(record.rank),
        "lap_time": float(record.lap_time),
        "time_behind_leader": float(record.time_behind_leader),
        "pit": bool(record.is_pit),
        "caution": bool(record.is_caution),
    }


class LiveSessionClient:
    """Client handle of one open server-side session: stream laps, read forecasts."""

    def __init__(self, client: ForecastClient, session_id: str, info: Optional[dict] = None) -> None:
        self.client = client
        self.session_id = str(session_id)
        self.info = dict(info or {})
        self.closed = False

    def lap(self, lap: int, records: Iterable) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """Feed one lap of telemetry; returns the newly-final forecasts.

        Same shape as ``RaceSession.observe_lap``:
        ``[(origin, {car_id: (n_samples, horizon) samples}), ...]``.
        """
        payload = wire.envelope(
            "session-lap",
            lap=int(lap),
            records=[_lap_record_to_wire(record) for record in records],
        )
        document = self.client._call(
            "POST", f"/v1/sessions/{self.session_id}/lap", payload
        )
        return self._decode_results(document)

    def close(self, drain: bool = True) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """Close the session; by default the held-back tail origins flush."""
        document = self.client._call(
            "DELETE", f"/v1/sessions/{self.session_id}", {"drain": bool(drain)}
        )
        self.closed = True
        return self._decode_results(document)

    @staticmethod
    def _decode_results(document) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        return [
            (
                int(item["origin"]),
                {
                    int(entry["car_id"]): wire.decode_array(entry["samples"])
                    for entry in item["forecasts"]
                },
            )
            for item in document.get("results", [])
        ]

    def __enter__(self) -> "LiveSessionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.closed:
            try:
                self.close(drain=False)
            except ServerError:  # pragma: no cover - best-effort cleanup
                pass
