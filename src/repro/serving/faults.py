"""Deterministic fault injection for the serving tier.

A :class:`FaultPlan` is a *schedule* of failures — which request ordinal
on which route suffers what — that the HTTP gateway and the stdlib client
both know how to execute.  Because the schedule is explicit (or derived
from one seed), a chaos run is exactly reproducible: the same plan hits
the same requests every time, which is what lets the chaos harness assert
that a faulted-and-retried run is *byte-identical* to the fault-free run.

Fault kinds
-----------
``drop``
    Server side: close the connection without answering (``when="after"``
    executes the request first and drops only the response — the replay
    case idempotency keys exist for).  Client side: raise
    ``ConnectionError`` before sending (``when="before"``) or after the
    response was received but before it is returned (``when="after"``).
``delay``
    Sleep ``delay_s`` before handling, simulating a slow server (drives
    client socket timeouts and deadline shedding).
``error``
    Answer with a structured ``injected_fault`` envelope at ``status``
    (default 503) without touching the engine.
``truncate``
    ``/v1/scenarios`` only: cut the NDJSON stream after ``after_events``
    events without the terminating chunk, so the client sees a torn
    stream and must resume.
``engine_error``
    Arm the gateway so the next engine submit raises ``RuntimeError``
    (what trips the per-model circuit breaker), instead of failing at the
    HTTP layer.
``kill_worker``
    Worker-pool gateways only: SIGKILL the live worker subprocess serving
    ``model`` (default: the least-recently-started worker) *before* the
    matched request is dispatched — a real process death, exercising the
    supervisor's crash detection, restart backoff and journal failover.
``hang_worker``
    Worker-pool gateways only: SIGSTOP the worker subprocess so it stops
    answering heartbeats without exiting — the hung-replica case.  The
    supervisor's heartbeat deadline detects it and escalates to SIGKILL +
    restart.

Matching is by route — ``"METHOD /path"`` substring or regex — and by the
0-based ordinal of matching requests (``at``), with ``count`` consecutive
firings.  Every spec keeps its own match counter, guarded by one plan
lock, so concurrent HTTP threads observe one consistent schedule.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["FaultSpec", "FaultPlan"]

FAULT_KINDS = (
    "drop",
    "delay",
    "error",
    "truncate",
    "engine_error",
    "kill_worker",
    "hang_worker",
)


@dataclass
class FaultSpec:
    """One scheduled fault (see the module docstring for kind semantics)."""

    kind: str
    route: str = ""  # substring/regex over "METHOD /path"; "" matches everything
    at: int = 0  # 0-based ordinal among requests matching ``route``
    count: int = 1  # consecutive matching requests to fault
    when: str = "before"  # drop only: "before" or "after" the work
    delay_s: float = 0.0  # delay only
    status: int = 503  # error only
    after_events: int = 1  # truncate only: events to let through first
    message: str = "injected fault"
    model: str = ""  # kill_worker/hang_worker only: target replica ("" = any)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
            )
        if self.when not in ("before", "after"):
            raise ValueError("fault 'when' must be 'before' or 'after'")
        self.route = str(self.route)
        self.at = int(self.at)
        self.count = int(self.count)
        self.delay_s = float(self.delay_s)
        self.status = int(self.status)
        self.after_events = int(self.after_events)
        self.model = str(self.model)
        if self.at < 0:
            raise ValueError("fault 'at' ordinal must be >= 0")
        if self.count < 1:
            raise ValueError("fault 'count' must be >= 1")
        if self.delay_s < 0:
            raise ValueError("fault 'delay_s' must be >= 0")
        self._pattern = re.compile(self.route) if self.route else None

    def matches_route(self, route: str) -> bool:
        return self._pattern is None or self._pattern.search(route) is not None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "route": self.route,
            "at": self.at,
            "count": self.count,
            "when": self.when,
            "delay_s": self.delay_s,
            "status": self.status,
            "after_events": self.after_events,
            "message": self.message,
            "model": self.model,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FaultSpec":
        if not isinstance(document, dict):
            raise ValueError("fault spec must be a JSON object")
        known = {
            "kind", "route", "at", "count", "when", "delay_s", "status",
            "after_events", "message", "model",
        }
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(
                f"unknown fault spec key(s): {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        if "kind" not in document:
            raise ValueError("fault spec needs a 'kind'")
        return cls(**document)


class FaultPlan:
    """A deterministic, thread-safe schedule of :class:`FaultSpec` entries.

    The plan keeps one counter per ``route`` pattern *per spec*: request
    ordinals are counted among the requests each spec matches, so two
    specs on the same route fire independently of each other.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._lock = threading.Lock()
        self._counters: List[int] = [0] * len(self.specs)
        self._fired: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, document) -> "FaultPlan":
        if isinstance(document, list):
            document = {"faults": document}
        if not isinstance(document, dict):
            raise ValueError("fault plan must be a JSON object or array")
        unknown = sorted(set(document) - {"faults"})
        if unknown:
            raise ValueError(f"unknown fault plan key(s): {', '.join(unknown)}")
        faults = document.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("fault plan 'faults' must be an array")
        return cls([FaultSpec.from_dict(item) for item in faults])

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> dict:
        return {"faults": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def seeded(
        cls,
        seed: int,
        route: str,
        n_requests: int,
        fault_rate: float = 0.3,
        kinds: Sequence[str] = ("drop", "delay", "error"),
        delay_s: float = 0.05,
    ) -> "FaultPlan":
        """A random-but-reproducible plan: each of ``n_requests`` ordinals
        on ``route`` is faulted with probability ``fault_rate``, the kind
        drawn uniformly from ``kinds`` — same seed, same schedule."""
        rng = np.random.default_rng(seed)
        specs = []
        for ordinal in range(int(n_requests)):
            if float(rng.random()) < fault_rate:
                kind = str(kinds[int(rng.integers(len(kinds)))])
                specs.append(
                    FaultSpec(
                        kind=kind,
                        route=route,
                        at=ordinal,
                        delay_s=delay_s,
                        message=f"seeded fault #{ordinal}",
                    )
                )
        return cls(specs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def intercept(self, method: str, path: str) -> Optional[FaultSpec]:
        """The fault scheduled for this request, or ``None``.

        Advances every matching spec's ordinal counter exactly once per
        call; when several specs would fire on the same request, the first
        in plan order wins (the others still consume the ordinal).
        """
        route = f"{method} {path}"
        fired: Optional[FaultSpec] = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if not spec.matches_route(route):
                    continue
                ordinal = self._counters[index]
                self._counters[index] = ordinal + 1
                if spec.at <= ordinal < spec.at + spec.count and fired is None:
                    fired = spec
                    self._fired[index] = self._fired.get(index, 0) + 1
        return fired

    @property
    def fired(self) -> int:
        """Total faults executed so far (for harness assertions)."""
        with self._lock:
            return sum(self._fired.values())

    def reset(self) -> None:
        with self._lock:
            self._counters = [0] * len(self.specs)
            self._fired = {}

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultPlan({len(self.specs)} specs, fired={self.fired})"
