"""Cross-client micro-batching in front of :class:`ForecastService`.

The fleet engine's throughput comes from batching: one recurrent step
advances every Monte-Carlo trajectory of every request in a group.  A
process boundary would forfeit that — each HTTP connection would submit a
one-request batch.  The :class:`MicroBatchScheduler` restores it: requests
arriving from *concurrent* connections are collected for a short window
(or until a batch fills) and submitted to the service as one mixed-model
batch, so simultaneous clients share per-model engine passes.

Correctness rests on the engine's batch invariance: every request carries
its own RNG stream (the wire protocol requires it) and all recurrent
kernels are batch-size invariant, so a request's samples are bitwise
identical whether it is submitted alone, inside its own client's batch, or
coalesced with strangers' requests — gated by
``tests/serving/test_scheduler.py`` and the serving benchmark.

Failure isolation: when a coalesced batch fails as a whole (one client
naming an unknown model must not poison its batch-mates), the scheduler
retries each collected request individually and reports per-request
outcomes (:meth:`MicroBatchScheduler.submit_settled`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from .requests import NamedForecastRequest

__all__ = ["MicroBatchScheduler"]


@dataclass
class _Pending:
    """One enqueued request waiting for its batch to be flushed."""

    request: NamedForecastRequest
    call_id: int
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[np.ndarray] = None
    error: Optional[BaseException] = None

    def settle(self, result=None, error=None) -> None:
        self.result = result
        self.error = error
        self.done.set()


class MicroBatchScheduler:
    """Coalesces concurrent forecast submissions into shared service batches.

    Parameters
    ----------
    submit_fn:
        The downstream batch submitter — typically the gateway's
        lock-wrapped ``ForecastService.submit``.  Called from the
        scheduler's worker thread only, so the service itself never sees
        concurrent submits.
    window:
        Seconds to hold a batch open after its first request arrives,
        waiting for other clients to join.  ``0.0`` still coalesces
        whatever has accumulated by the time the worker wakes.
    max_batch:
        Flush immediately once this many requests are pending.
    """

    def __init__(
        self,
        submit_fn: Callable[[Sequence[NamedForecastRequest]], List[np.ndarray]],
        window: float = 0.005,
        max_batch: int = 64,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0 seconds")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.submit_fn = submit_fn
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._pending: List[_Pending] = []
        self._opened_at: Optional[float] = None
        self._closed = False
        self._call_counter = 0
        self._stats: Dict[str, int] = {
            "requests": 0,
            "batches": 0,
            "coalesced_batches": 0,
            "max_batch_requests": 0,
            "flush_full": 0,
            "flush_window": 0,
            "isolated_retries": 0,
        }
        self._worker = threading.Thread(
            target=self._run, name="micro-batch-scheduler", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, requests: Sequence[NamedForecastRequest]) -> List[np.ndarray]:
        """Enqueue, wait for the batch, return samples in submission order.

        Raises the first failed request's error; use :meth:`submit_settled`
        for per-request outcomes.
        """
        settled = self.submit_settled(requests)
        for outcome in settled:
            if isinstance(outcome, BaseException):
                raise outcome
        return settled  # type: ignore[return-value]

    def submit_settled(
        self, requests: Sequence[NamedForecastRequest]
    ) -> List[Union[np.ndarray, BaseException]]:
        """Like :meth:`submit`, but failures come back as values per request."""
        return self.collect(self.enqueue(requests))

    def enqueue(self, requests: Sequence[NamedForecastRequest]) -> List[_Pending]:
        """Enqueue without waiting; pair with :meth:`collect`.

        The split exists for the gateway's per-model routing: one incoming
        batch is fanned out to several schedulers (one per model) and only
        then collected, so model A's flush never waits on model B's.
        """
        requests = list(requests)
        if not requests:
            return []
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._call_counter += 1
            entries = [_Pending(request, self._call_counter) for request in requests]
            if not self._pending:
                self._opened_at = time.monotonic()
            self._pending.extend(entries)
            self._stats["requests"] += len(entries)
            self._cond.notify_all()
        return entries

    @staticmethod
    def collect(entries: Sequence[_Pending]) -> List[Union[np.ndarray, BaseException]]:
        """Wait for enqueued entries (possibly from *different* schedulers)."""
        for entry in entries:
            entry.done.wait()
        return [
            entry.error if entry.error is not None else entry.result for entry in entries
        ]

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _take_batch(self) -> Optional[List[_Pending]]:
        """Block until a batch is due (window elapsed / full / closing)."""
        with self._cond:
            while True:
                if self._pending:
                    if len(self._pending) >= self.max_batch:
                        self._stats["flush_full"] += 1
                        break
                    elapsed = time.monotonic() - (self._opened_at or 0.0)
                    remaining = self.window - elapsed
                    if remaining <= 0 or self._closed:
                        self._stats["flush_window"] += 1
                        break
                    self._cond.wait(timeout=remaining)
                elif self._closed:
                    return None
                else:
                    self._cond.wait()
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            self._opened_at = time.monotonic() if self._pending else None
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._stats["batches"] += 1
            self._stats["max_batch_requests"] = max(
                self._stats["max_batch_requests"], len(batch)
            )
            if len({entry.call_id for entry in batch}) > 1:
                self._stats["coalesced_batches"] += 1
            # snapshot every request's RNG state: a failing batch may have
            # consumed some streams before raising (the per-model engine
            # passes run sequentially), and a retry must replay the exact
            # draws a fresh submission would make
            rng_states = [
                None
                if entry.request.request.rng is None
                else entry.request.request.rng.bit_generator.state
                for entry in batch
            ]
            try:
                results = self.submit_fn([entry.request for entry in batch])
            except Exception:
                # the coalesced batch failed as a whole — isolate: one bad
                # request (unknown model, a shape mismatch) must not poison
                # its batch-mates; restoring the snapshots keeps the retried
                # results bitwise equal to direct submission
                self._stats["isolated_retries"] += len(batch)
                for entry, state in zip(batch, rng_states):
                    if state is not None:
                        entry.request.request.rng.bit_generator.state = state
                for entry in batch:
                    try:
                        entry.settle(result=self.submit_fn([entry.request])[0])
                    except Exception as exc:
                        entry.settle(error=exc)
            else:
                for entry, samples in zip(batch, results):
                    entry.settle(result=samples)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        with self._cond:
            return dict(self._stats)

    def close(self, timeout: float = 5.0) -> None:
        """Flush what is pending, stop the worker, reject further submits."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
