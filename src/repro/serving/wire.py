"""The ``v1`` JSON wire protocol of the forecast serving API.

Everything that crosses the process boundary — forecast requests and
results, the model catalog, strategy-sweep requests and outcomes, live
session laps, and error reports — has a canonical JSON form defined here,
with ``to_wire``/``from_wire`` round trips that are *byte-exact*:

* numpy arrays travel base64-encoded with their dtype and shape
  (:func:`encode_array`/:func:`decode_array`), so a float64 forecast
  decoded on the other side is bitwise equal to the one encoded;
* per-request RNG streams travel explicitly (:func:`rng_to_wire` /
  :func:`rng_from_wire`) either as an integer seed or as a full
  bit-generator state snapshot (the same JSON form the checkpoint layer
  uses), so a request reproduces the same Monte-Carlo draws regardless of
  transport, batching, or which process runs it;
* every top-level document carries ``schema_version`` and a ``kind`` tag,
  guarded like the artifacts package: documents written by a *newer*
  schema are refused (:data:`WIRE_SCHEMA_VERSION`), malformed documents
  raise :class:`WireError` with a structured code instead of a bare
  ``KeyError``.

Errors themselves are wire documents (:func:`error_to_wire`), so a client
always receives machine-readable ``{code, message, detail}`` envelopes —
never an HTML traceback.
"""

from __future__ import annotations

import base64
import binascii
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.features import CarFeatureSeries
from ..nn.checkpoint import rng_from_state, rng_state
from ..nn.precision import DEFAULT_PRECISION, PRECISIONS
from .requests import ForecastRequest, NamedForecastRequest

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "check_envelope",
    "decode_array",
    "encode_array",
    "envelope",
    "error_to_wire",
    "forecast_batch_from_wire",
    "forecast_batch_to_wire",
    "lap_record_to_wire",
    "named_request_from_wire",
    "named_request_to_wire",
    "precision_from_wire",
    "raise_for_error",
    "request_from_wire",
    "request_to_wire",
    "results_from_wire",
    "results_to_wire",
    "resume_from_wire",
    "rng_from_wire",
    "rng_to_wire",
    "scenario_race_from_wire",
    "scenario_race_to_wire",
    "scenario_request_from_wire",
    "scenario_request_to_wire",
    "scenario_start_to_wire",
    "scenario_summary_from_wire",
    "scenario_summary_to_wire",
    "series_from_wire",
    "series_to_wire",
    "sweep_points_from_wire",
    "sweep_points_to_wire",
    "sweep_request_from_wire",
    "sweep_request_to_wire",
]

#: Highest wire schema revision this build reads and writes.
#: v2 added the ``/v1/scenarios`` documents (scenario-request and the
#: streamed scenario-start / scenario-race / scenario-summary events).
#: v3 added the resilience fields: optional ``idempotency_key`` and
#: ``deadline_ms`` on forecast-batch / sweep-request / session-lap
#: envelopes, ``resume_from`` on scenario-request, and the structured
#: ``overloaded`` / ``deadline_exceeded`` / ``circuit_open`` error codes
#: (429/504/503) with ``detail.retry_after_ms``.
#: v4 added the supervised worker pool: the ``worker_restarting`` error
#: code (503, ``detail.retry_after_ms``) raised while a crashed model
#: replica is being respawned, and the per-worker health fields
#: (``workers``, ``worker_pool``, ``uptime_s``) on ``/v1/health``.
#: v5 added the low-precision compute tier: an optional ``precision``
#: field (``"float64"`` | ``"float32"`` | ``"int8"``, absent means
#: ``"float64"``) on named forecast requests, sweep requests and
#: session-open documents, and the ``unsupported_precision`` error code
#: (400) for any other value.  ``"float64"`` traffic stays byte-identical
#: to v4; the lower tiers are error-bounded (see ``repro.nn.precision``).
#: v6 added champion/challenger aliases for the continuous-learning loop:
#: the ``/v1/models/aliases`` routes (list, resolve, promote, rollback)
#: with their ``alias-list`` / ``alias-resolved`` / ``alias-promote`` /
#: ``alias-promoted`` / ``alias-rolled-back`` envelope kinds, alias
#: annotations on the ``/v1/models`` catalog, and the structured
#: ``unknown_alias`` (404) / ``model_aliased`` (409) / ``invalid_alias``
#: (400) error codes.  Forecast, sweep and session documents may name an
#: alias wherever they name a model; the gateway resolves it to the
#: current target artifact at submit time.
WIRE_SCHEMA_VERSION = 6


class WireError(ValueError):
    """A structured wire-protocol failure.

    ``code`` is a stable machine-readable identifier (``malformed_request``,
    ``unsupported_schema``, ``unknown_model``, ...), ``status`` the HTTP
    status the gateway maps it to, and ``detail`` an optional JSON-safe
    payload with specifics.
    """

    def __init__(
        self,
        code: str,
        message: str,
        status: int = 400,
        detail: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.code = str(code)
        self.status = int(status)
        self.detail = detail


# ----------------------------------------------------------------------
# envelopes and schema guards
# ----------------------------------------------------------------------
def envelope(kind: str, **payload) -> dict:
    """A versioned wire document: schema version + kind tag + payload."""
    document = {"schema_version": WIRE_SCHEMA_VERSION, "kind": str(kind)}
    document.update(payload)
    return document


def check_envelope(document, kind: Optional[str] = None) -> dict:
    """Validate a wire document's schema version (and optionally its kind).

    Mirrors the artifact store's guard: a document stamped by a *newer*
    schema is refused with ``unsupported_schema`` rather than silently
    misread; a missing or non-integer version is ``malformed_request``.
    """
    if not isinstance(document, dict):
        raise WireError(
            "malformed_request",
            f"expected a JSON object, got {type(document).__name__}",
        )
    version = document.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireError("malformed_request", "document carries no integer schema_version")
    if version > WIRE_SCHEMA_VERSION:
        raise WireError(
            "unsupported_schema",
            f"document has wire schema version {version}; this build reads "
            f"<= {WIRE_SCHEMA_VERSION}",
        )
    if kind is not None and document.get("kind") != kind:
        raise WireError(
            "malformed_request",
            f"expected a {kind!r} document, got kind={document.get('kind')!r}",
        )
    return document


def _require(document: dict, field: str, kind: str):
    if field not in document:
        raise WireError("malformed_request", f"{kind} document is missing {field!r}")
    return document[field]


# ----------------------------------------------------------------------
# arrays
# ----------------------------------------------------------------------
def encode_array(array) -> dict:
    """Base64 + dtype + shape encoding of one numpy array.

    The bytes are taken from a C-contiguous view, so non-contiguous inputs
    (slices, transposes) encode to the same payload as their contiguous
    copies and round-trip bitwise.
    """
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(spec) -> np.ndarray:
    """Rebuild the array encoded by :func:`encode_array` (bitwise)."""
    if not isinstance(spec, dict):
        raise WireError("malformed_request", "array spec must be a JSON object")
    try:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        raw = base64.b64decode(spec["data"].encode("ascii"), validate=True)
    except (KeyError, TypeError, ValueError, AttributeError, binascii.Error) as exc:
        raise WireError("malformed_request", f"malformed array spec: {exc}") from exc
    if dtype.hasobject:
        raise WireError("malformed_request", f"refusing object dtype {dtype.str!r}")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise WireError(
            "malformed_request",
            f"array payload is {len(raw)} bytes, shape/dtype require {expected}",
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
def rng_to_wire(rng: Union[np.random.Generator, int, None]) -> Optional[dict]:
    """Explicit wire form of a request's RNG stream.

    An integer travels as ``{"seed": n}`` (the stream is
    ``np.random.default_rng(n)``); a live ``Generator`` travels as its full
    bit-generator state snapshot, so draws continue bit-exactly on the
    other side of the wire.
    """
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)):
        return {"seed": int(rng)}
    if isinstance(rng, np.random.Generator):
        return {"state": rng_state(rng)}
    raise WireError("malformed_request", f"cannot encode RNG of type {type(rng).__name__}")


def rng_from_wire(spec, required: bool = False) -> Optional[np.random.Generator]:
    """Rebuild the RNG stream encoded by :func:`rng_to_wire`."""
    if spec is None:
        if required:
            raise WireError(
                "malformed_request",
                "request carries no RNG stream; per-request seeds are required "
                "so results are reproducible regardless of transport or batching",
            )
        return None
    if not isinstance(spec, dict):
        raise WireError("malformed_request", "rng spec must be a JSON object")
    if "state" in spec:
        try:
            return rng_from_state(spec["state"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError("malformed_request", f"malformed rng state: {exc}") from exc
    if "seed" in spec:
        seed = spec["seed"]
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise WireError("malformed_request", "rng seed must be an integer")
        return np.random.default_rng(seed)
    raise WireError("malformed_request", "rng spec needs a 'seed' or a 'state' field")


# ----------------------------------------------------------------------
# request keys (tuples survive the list round trip)
# ----------------------------------------------------------------------
def _encode_key(key: Optional[Hashable]):
    if key is None or isinstance(key, (str, bool)):
        return key
    if isinstance(key, (int, np.integer)):
        return int(key)
    if isinstance(key, (float, np.floating)):
        return float(key)
    if isinstance(key, tuple):
        return [_encode_key(item) for item in key]
    raise WireError("malformed_request", f"cannot encode request key of type {type(key).__name__}")


def _decode_key(spec) -> Optional[Hashable]:
    if isinstance(spec, list):
        return tuple(_decode_key(item) for item in spec)
    return spec


# ----------------------------------------------------------------------
# forecast requests / results
# ----------------------------------------------------------------------
def request_to_wire(request: ForecastRequest) -> dict:
    """Wire form of one :class:`ForecastRequest` (RNG stream included)."""
    return {
        "history_target": encode_array(request.target),
        "history_covariates": encode_array(request.history_covariates),
        "future_covariates": encode_array(request.future_covariates),
        "n_samples": int(request.n_samples),
        "rng": rng_to_wire(request.rng),
        "key": _encode_key(request.key),
        "origin": None if request.origin is None else int(request.origin),
    }


def request_from_wire(document, require_rng: bool = False) -> ForecastRequest:
    """Rebuild the request encoded by :func:`request_to_wire`.

    With ``require_rng=True`` (the gateway's setting) a request without an
    explicit RNG stream is refused — a shared model-level generator would
    make the result depend on how the scheduler batches the wire traffic.
    """
    if not isinstance(document, dict):
        raise WireError("malformed_request", "forecast request must be a JSON object")
    kind = "forecast request"
    try:
        return ForecastRequest(
            history_target=decode_array(_require(document, "history_target", kind)),
            history_covariates=decode_array(_require(document, "history_covariates", kind)),
            future_covariates=decode_array(_require(document, "future_covariates", kind)),
            n_samples=_require(document, "n_samples", kind),
            rng=rng_from_wire(document.get("rng"), required=require_rng),
            key=_decode_key(document.get("key")),
            origin=document.get("origin"),
        )
    except WireError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireError("malformed_request", f"invalid forecast request: {exc}") from exc


def precision_from_wire(document, kind: str = "request") -> str:
    """Validate a wire document's optional ``precision`` field (v5).

    Absent (or ``null``) means the exact float64 reference tier — which is
    also why v4 documents keep decoding unchanged.  Any value outside
    :data:`repro.nn.precision.PRECISIONS` is refused with the structured
    ``unsupported_precision`` code rather than a bare ``ValueError`` deep
    inside an engine pass.
    """
    value = document.get("precision") if isinstance(document, dict) else None
    if value is None:
        return DEFAULT_PRECISION
    if not isinstance(value, str) or value not in PRECISIONS:
        raise WireError(
            "unsupported_precision",
            f"{kind} names precision {value!r}; this build serves "
            f"{', '.join(PRECISIONS)}",
            status=400,
            detail={"precision": value if isinstance(value, str) else str(value),
                    "supported": list(PRECISIONS)},
        )
    return value


def named_request_to_wire(named: NamedForecastRequest) -> dict:
    return {
        "model": named.model,
        "request": request_to_wire(named.request),
        "precision": named.precision,
    }


def named_request_from_wire(document, require_rng: bool = False) -> NamedForecastRequest:
    if not isinstance(document, dict):
        raise WireError("malformed_request", "named request must be a JSON object")
    model = _require(document, "model", "named request")
    if not isinstance(model, str) or not model:
        raise WireError("malformed_request", "named request 'model' must be a non-empty string")
    return NamedForecastRequest(
        model=model,
        request=request_from_wire(_require(document, "request", "named request"), require_rng),
        precision=precision_from_wire(document, kind="named request"),
    )


def lap_record_to_wire(record) -> dict:
    """Encode one live lap record for a ``session-lap`` document.

    Accepts either an already-JSON mapping (passed through untouched so a
    relayed document stays byte-identical) or a ``LapRecord``-style object
    from the data layer.  The gateway applies the same encoding before a
    lap crosses a worker pipe, so in-process callers may hand over raw
    ``LapRecord`` objects in worker mode too.
    """
    if isinstance(record, dict):
        return record
    return {
        "car_id": int(record.car_id),
        "rank": int(record.rank),
        "lap_time": float(record.lap_time),
        "time_behind_leader": float(record.time_behind_leader),
        "pit": bool(record.is_pit),
        "caution": bool(record.is_caution),
    }


def forecast_batch_to_wire(
    requests: Sequence[NamedForecastRequest],
    idempotency_key: Optional[str] = None,
    deadline_ms: Optional[float] = None,
) -> dict:
    """The ``POST /v1/forecast`` body: a batch of named requests.

    ``idempotency_key`` lets the gateway dedupe a retried POST (the stored
    response is replayed byte-identically); ``deadline_ms`` is the
    *relative* time budget the server may spend before shedding the work
    with ``deadline_exceeded`` — relative because client and server clocks
    are unrelated.
    """
    document = envelope(
        "forecast-batch", requests=[named_request_to_wire(named) for named in requests]
    )
    if idempotency_key is not None:
        document["idempotency_key"] = str(idempotency_key)
    if deadline_ms is not None:
        document["deadline_ms"] = float(deadline_ms)
    return document


def forecast_batch_from_wire(document, require_rng: bool = True) -> List[NamedForecastRequest]:
    check_envelope(document, kind="forecast-batch")
    requests = _require(document, "requests", "forecast-batch")
    if not isinstance(requests, list):
        raise WireError("malformed_request", "'requests' must be a JSON array")
    return [named_request_from_wire(item, require_rng=require_rng) for item in requests]


def results_to_wire(results: Sequence) -> dict:
    """The ``/v1/forecast`` response: one entry per request, in order.

    Each entry is either ``{"samples": <array>}`` or ``{"error": {...}}``,
    so one failed request does not discard its batch-mates' forecasts.
    """
    entries = []
    for result in results:
        if isinstance(result, BaseException):
            entries.append({"error": _error_body(result)})
        else:
            entries.append({"samples": encode_array(result)})
    return envelope("forecast-results", results=entries)


def results_from_wire(document) -> List[Union[np.ndarray, WireError]]:
    """Decode forecast results; failed entries come back as WireError values."""
    check_envelope(document, kind="forecast-results")
    entries = _require(document, "results", "forecast-results")
    decoded: List[Union[np.ndarray, WireError]] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise WireError("malformed_request", "result entry must be a JSON object")
        if "error" in entry:
            body = entry["error"]
            decoded.append(
                WireError(
                    body.get("code", "request_failed"),
                    body.get("message", "request failed"),
                    status=int(body.get("status", 400)),
                    detail=body.get("detail"),
                )
            )
        else:
            decoded.append(decode_array(_require(entry, "samples", "result entry")))
    return decoded


# ----------------------------------------------------------------------
# feature series (strategy sweeps ship the car's series to the server)
# ----------------------------------------------------------------------
def series_to_wire(series: CarFeatureSeries) -> dict:
    return {
        "race_id": series.race_id,
        "event": series.event,
        "year": int(series.year),
        "car_id": int(series.car_id),
        "laps": encode_array(series.laps),
        "rank": encode_array(series.rank),
        "lap_time": encode_array(series.lap_time),
        "time_behind_leader": encode_array(series.time_behind_leader),
        "covariates": encode_array(series.covariates),
    }


def series_from_wire(document) -> CarFeatureSeries:
    if not isinstance(document, dict):
        raise WireError("malformed_request", "feature series must be a JSON object")
    kind = "feature series"
    try:
        return CarFeatureSeries(
            race_id=str(_require(document, "race_id", kind)),
            event=str(_require(document, "event", kind)),
            year=int(_require(document, "year", kind)),
            car_id=int(_require(document, "car_id", kind)),
            laps=decode_array(_require(document, "laps", kind)),
            rank=decode_array(_require(document, "rank", kind)),
            lap_time=decode_array(_require(document, "lap_time", kind)),
            time_behind_leader=decode_array(_require(document, "time_behind_leader", kind)),
            covariates=decode_array(_require(document, "covariates", kind)),
        )
    except WireError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireError("malformed_request", f"invalid feature series: {exc}") from exc


# ----------------------------------------------------------------------
# strategy sweeps
# ----------------------------------------------------------------------
def sweep_request_to_wire(
    model: str,
    series: CarFeatureSeries,
    origins: Sequence[int],
    horizon: int,
    earliest: int = 1,
    latest: Optional[int] = None,
    step: int = 1,
    mode: str = "carry",
    n_samples: int = 100,
    field_size: Optional[int] = None,
    rng: Union[np.random.Generator, int, None] = None,
    precision: str = DEFAULT_PRECISION,
    idempotency_key: Optional[str] = None,
    deadline_ms: Optional[float] = None,
) -> dict:
    """The ``POST /v1/strategy/sweep`` body."""
    document = envelope(
        "sweep-request",
        model=str(model),
        series=series_to_wire(series),
        origins=[int(o) for o in origins],
        horizon=int(horizon),
        earliest=int(earliest),
        latest=None if latest is None else int(latest),
        step=int(step),
        mode=str(mode),
        n_samples=int(n_samples),
        field_size=None if field_size is None else int(field_size),
        rng=rng_to_wire(rng),
        precision=str(precision),
    )
    if idempotency_key is not None:
        document["idempotency_key"] = str(idempotency_key)
    if deadline_ms is not None:
        document["deadline_ms"] = float(deadline_ms)
    return document


def sweep_request_from_wire(document) -> dict:
    """Decode a sweep request into keyword arguments for the gateway."""
    check_envelope(document, kind="sweep-request")
    kind = "sweep-request"
    origins = _require(document, "origins", kind)
    if not isinstance(origins, list) or not all(
        isinstance(o, int) and not isinstance(o, bool) for o in origins
    ):
        raise WireError("malformed_request", "'origins' must be an array of integers")
    try:
        return {
            "model": str(_require(document, "model", kind)),
            "series": series_from_wire(_require(document, "series", kind)),
            "origins": [int(o) for o in origins],
            "horizon": int(_require(document, "horizon", kind)),
            "earliest": int(document.get("earliest", 1)),
            "latest": None if document.get("latest") is None else int(document["latest"]),
            "step": int(document.get("step", 1)),
            "mode": str(document.get("mode", "carry")),
            "n_samples": int(document.get("n_samples", 100)),
            "field_size": (
                None if document.get("field_size") is None else int(document["field_size"])
            ),
            "rng": rng_from_wire(document.get("rng"), required=True),
            "precision": precision_from_wire(document, kind="sweep request"),
        }
    except WireError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireError("malformed_request", f"invalid sweep request: {exc}") from exc


#: float fields of one wire strategy outcome, in canonical order
_OUTCOME_FIELDS = (
    "expected_final_rank",
    "median_final_rank",
    "p_gain",
    "p_lose",
    "rank_samples_std",
)


def sweep_points_to_wire(points: Sequence) -> dict:
    """Wire form of ``PitStrategyOptimizer.sweep`` results.

    Plain JSON floats round-trip exactly (shortest-repr float encoding),
    so the decoded outcomes are bitwise equal to the in-process sweep.
    """
    wired = []
    for point in points:
        wired.append(
            {
                "origin": int(point.origin),
                "current_rank": float(point.current_rank),
                "outcomes": [
                    {
                        "pit_in_laps": int(outcome.pit_in_laps),
                        **{name: float(getattr(outcome, name)) for name in _OUTCOME_FIELDS},
                    }
                    for outcome in point.outcomes
                ],
            }
        )
    return envelope("sweep-results", points=wired)


def sweep_points_from_wire(document) -> List:
    """Decode sweep results back into ``StrategySweepPoint`` objects."""
    # imported here: repro.strategy pulls in the deep-model stack, which the
    # wire module must not force on lightweight clients
    from ..strategy.optimizer import StrategyOutcome, StrategySweepPoint

    check_envelope(document, kind="sweep-results")
    points = []
    for item in _require(document, "points", "sweep-results"):
        try:
            outcomes = [
                StrategyOutcome(
                    pit_in_laps=int(entry["pit_in_laps"]),
                    **{name: float(entry[name]) for name in _OUTCOME_FIELDS},
                )
                for entry in item["outcomes"]
            ]
            points.append(
                StrategySweepPoint(
                    origin=int(item["origin"]),
                    current_rank=float(item["current_rank"]),
                    outcomes=outcomes,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError("malformed_request", f"invalid sweep point: {exc}") from exc
    return points


# ----------------------------------------------------------------------
# what-if scenarios (the streamed /v1/scenarios route)
# ----------------------------------------------------------------------
def scenario_request_to_wire(
    spec_document: dict, seed: int, resume_from: int = 0
) -> dict:
    """The ``POST /v1/scenarios`` body: a scenario spec plus its base seed.

    Unlike forecast requests, scenario RNG transport is *seed-only*: every
    per-race and per-forecast stream is derived from this one integer with
    the process-stable construction of
    :func:`repro.scenarios.spec.derive_seed`, which is what makes a sweep
    bitwise reproducible from a single number.

    ``resume_from`` asks the gateway to suppress the first ``resume_from``
    stream events: a client whose connection died mid-stream resubmits the
    same spec and seed with the count of events it already holds, and —
    because the run is bitwise deterministic from the seed — the resumed
    tail continues exactly where the torn stream stopped.
    """
    if not isinstance(spec_document, dict):
        raise WireError("malformed_request", "scenario spec must be a JSON object")
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise WireError("malformed_request", "scenario seed must be an integer")
    document = envelope(
        "scenario-request", spec=dict(spec_document), rng={"seed": int(seed)}
    )
    if resume_from:
        document["resume_from"] = int(resume_from)
    return document


def scenario_request_from_wire(document):
    """Decode and validate a scenario request: ``(ScenarioSpec, seed)``."""
    # imported here: the scenarios package pulls in the simulation stack,
    # which lightweight wire consumers must not pay for
    from ..scenarios.spec import ScenarioError, parse_scenario

    check_envelope(document, kind="scenario-request")
    rng_spec = _require(document, "rng", "scenario-request")
    if not isinstance(rng_spec, dict) or "seed" not in rng_spec:
        raise WireError(
            "malformed_request",
            "scenario requests carry {'seed': n} RNG transport only: every "
            "per-race stream is derived from that one seed",
        )
    seed = rng_spec["seed"]
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise WireError("malformed_request", "scenario rng seed must be an integer")
    try:
        spec = parse_scenario(_require(document, "spec", "scenario-request"))
    except ScenarioError as exc:
        raise WireError("invalid_scenario", str(exc)) from exc
    return spec, seed


def resume_from_wire(document) -> int:
    """Validate a scenario request's optional ``resume_from`` event index."""
    resume_from = document.get("resume_from", 0) if isinstance(document, dict) else 0
    if not isinstance(resume_from, int) or isinstance(resume_from, bool) or resume_from < 0:
        raise WireError("malformed_request", "resume_from must be a non-negative integer")
    return resume_from


def scenario_start_to_wire(spec, seed: int, races: int) -> dict:
    """First streamed event: what is about to run and how long it is."""
    return envelope(
        "scenario-start",
        scenario=spec.name,
        scenario_kind=spec.kind,
        races=int(races),
        seed=int(seed),
    )


def scenario_race_to_wire(result, index: int, total: int) -> dict:
    """One streamed per-race event (``result`` is a ScenarioRaceResult)."""
    return envelope(
        "scenario-race", index=int(index), total=int(total), result=result.to_doc()
    )


def scenario_race_from_wire(document):
    from ..scenarios.engine import ScenarioRaceResult

    check_envelope(document, kind="scenario-race")
    try:
        return ScenarioRaceResult.from_doc(_require(document, "result", "scenario-race"))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError("malformed_request", f"invalid scenario race result: {exc}") from exc


def scenario_summary_to_wire(summary) -> dict:
    """The closing streamed event (``summary`` is a ScenarioSummary)."""
    return envelope("scenario-summary", summary=summary.to_doc())


def scenario_summary_from_wire(document):
    from ..scenarios.engine import ScenarioSummary

    check_envelope(document, kind="scenario-summary")
    try:
        return ScenarioSummary.from_doc(_require(document, "summary", "scenario-summary"))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError("malformed_request", f"invalid scenario summary: {exc}") from exc


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
def _error_body(exc: BaseException) -> dict:
    if isinstance(exc, WireError):
        body: Dict[str, object] = {
            "code": exc.code,
            "message": str(exc),
            "status": exc.status,
        }
        if exc.detail is not None:
            body["detail"] = exc.detail
        return body
    return {"code": "internal_error", "message": str(exc), "status": 500}


def error_to_wire(exc: BaseException) -> Tuple[int, dict]:
    """``(http_status, document)`` form of any failure."""
    body = _error_body(exc)
    return int(body["status"]), envelope("error", error=body)


def raise_for_error(document) -> dict:
    """Raise the :class:`WireError` carried by an error document, else pass through."""
    if isinstance(document, dict) and document.get("kind") == "error":
        body = document.get("error", {})
        raise WireError(
            body.get("code", "request_failed"),
            body.get("message", "request failed"),
            status=int(body.get("status", 400)),
            detail=body.get("detail"),
        )
    return document
