"""Resilience primitives of the serving tier.

The HTTP gateway (:mod:`repro.serving.server`) and the stdlib client
(:mod:`repro.serving.client`) share a small vocabulary of fault-tolerance
building blocks, all deterministic where randomness is involved:

* :class:`RetryPolicy` — exponential backoff with *seeded* jitter, so a
  retried run sleeps the exact same schedule every time and chaos tests
  can assert byte-identity between a faulted and a fault-free run;
* :class:`Deadline` — a relative time budget carried as ``deadline_ms``
  on the wire (relative, never absolute: client and server clocks are
  unrelated) and checked server-side before expensive engine work;
* :class:`CircuitBreaker` — per-model failure accounting: after
  ``threshold`` consecutive engine failures the model's circuit opens and
  requests fail fast with ``circuit_open`` instead of queueing behind a
  broken engine; after ``cooldown_s`` one half-open probe is admitted and
  a success closes the circuit again;
* :class:`AdmissionController` — a bounded in-flight counter in front of
  the gateway lock: past the bound, work is shed immediately with a
  structured ``429 overloaded`` envelope carrying ``retry_after_ms``
  rather than queueing without limit;
* :class:`IdempotencyCache` — replay dedup for retried POSTs: a request
  carrying an ``idempotency_key`` the gateway has already answered gets
  the stored response document back, byte for byte, without re-running
  the engine (safe because per-request RNG transport already makes the
  first execution deterministic).

Everything takes an injectable ``clock`` so tests drive state machines
without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .wire import WireError

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "IdempotencyCache",
    "OverloadedError",
    "RetryPolicy",
    "WorkerRestartingError",
]


# ----------------------------------------------------------------------
# the structured failures the resilience layer introduces
# ----------------------------------------------------------------------
class OverloadedError(WireError):
    """Admission control shed this request; retry after ``retry_after_ms``."""

    def __init__(self, message: str, retry_after_ms: int = 50) -> None:
        super().__init__(
            "overloaded",
            message,
            status=429,
            detail={"retry_after_ms": int(retry_after_ms)},
        )
        self.retry_after_ms = int(retry_after_ms)


class DeadlineExceededError(WireError):
    """The request's time budget ran out before (or during) its engine work."""

    def __init__(self, message: str) -> None:
        super().__init__("deadline_exceeded", message, status=504)


class CircuitOpenError(WireError):
    """The named model's circuit is open; requests fail fast until it cools."""

    def __init__(self, message: str, retry_after_ms: int = 1000) -> None:
        super().__init__(
            "circuit_open",
            message,
            status=503,
            detail={"retry_after_ms": int(retry_after_ms)},
        )
        self.retry_after_ms = int(retry_after_ms)


class WorkerRestartingError(WireError):
    """The model's worker replica is down and being restarted by the supervisor.

    Raised instead of queueing behind a dead process: the request was never
    executed, so a retry after ``retry_after_ms`` (sized from the
    supervisor's backoff) is always safe.  Subclassing :class:`WireError`
    keeps the restart window out of the circuit breaker's failure counts —
    the supervisor already knows the replica is down; tripping the breaker
    on top would only delay recovery visibility.
    """

    def __init__(self, message: str, retry_after_ms: int = 250) -> None:
        super().__init__(
            "worker_restarting",
            message,
            status=503,
            detail={"retry_after_ms": int(retry_after_ms)},
        )
        self.retry_after_ms = int(retry_after_ms)


# ----------------------------------------------------------------------
# retry policy (seeded backoff-with-jitter)
# ----------------------------------------------------------------------
#: error codes a client may retry without changing the outcome: the server
#: either never executed the request, or idempotency keys dedupe the replay
RETRYABLE_CODES = frozenset(
    {
        "overloaded",
        "circuit_open",
        "injected_fault",
        "internal_error",
        "worker_restarting",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential-backoff-with-jitter retry schedule.

    ``delays()`` yields the sleep before each retry (so ``max_attempts``
    attempts → ``max_attempts - 1`` delays).  The jitter is drawn from a
    generator seeded with ``seed``, which makes a retried run — and
    therefore a chaos test asserting byte-identity against the fault-free
    run — fully reproducible.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0 seconds")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The deterministic sleep schedule, one entry per retry."""
        rng = np.random.default_rng(self.seed)
        for attempt in range(self.max_attempts - 1):
            raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
            # "equal jitter": keep (1 - jitter) of the backoff, randomise the rest
            yield raw * (1.0 - self.jitter) + raw * self.jitter * float(rng.random())

    @staticmethod
    def retryable_status(status: int, code: Optional[str] = None) -> bool:
        """Whether a structured server error is safe and useful to retry."""
        if code is not None and code in RETRYABLE_CODES:
            return True
        return int(status) >= 500 or int(status) == 429


# ----------------------------------------------------------------------
# deadlines (relative budgets, explicit clocks)
# ----------------------------------------------------------------------
class Deadline:
    """A monotonic time budget: ``Deadline.after(0.2)`` expires in 200 ms."""

    __slots__ = ("expires_at", "clock")

    def __init__(self, expires_at: float, clock: Callable[[], float] = time.monotonic) -> None:
        self.expires_at = float(expires_at)
        self.clock = clock

    @classmethod
    def after(
        cls, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        if budget_s <= 0:
            raise ValueError("deadline budget must be > 0 seconds")
        return cls(clock() + float(budget_s), clock=clock)

    @classmethod
    def from_ms(
        cls, budget_ms, clock: Callable[[], float] = time.monotonic
    ) -> Optional["Deadline"]:
        """Build from a wire ``deadline_ms`` field (``None`` → no deadline)."""
        if budget_ms is None:
            return None
        if (
            not isinstance(budget_ms, (int, float))
            or isinstance(budget_ms, bool)
            or budget_ms <= 0
        ):
            raise WireError(
                "malformed_request", "deadline_ms must be a positive number of milliseconds"
            )
        return cls.after(float(budget_ms) / 1e3, clock=clock)

    def remaining(self) -> float:
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceededError(
                f"{what} exceeded its deadline by {-remaining * 1e3:.1f} ms"
            )


# ----------------------------------------------------------------------
# circuit breaker (per served model)
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open after ``threshold`` consecutive failures → half-open probe.

    The gateway keeps one per served model.  While open, :meth:`allow`
    returns ``False`` (callers raise :class:`CircuitOpenError`) until
    ``cooldown_s`` has passed; then exactly one caller is admitted as the
    half-open probe — its success closes the circuit, its failure re-opens
    the cooldown window.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        if self._state == self.OPEN and self._opened_at is not None:
            if self.clock() - self._opened_at >= self.cooldown_s:
                return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a request may proceed right now (claims the half-open probe)."""
        with self._lock:
            state = self._peek_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                # claim the probe: concurrent callers stay shed until it settles
                self._state = self.HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or self._consecutive_failures >= self.threshold:
                if self._state != self.OPEN:
                    self._trips += 1
                self._state = self.OPEN
                self._opened_at = self.clock()

    def retry_after_ms(self) -> int:
        with self._lock:
            if self._opened_at is None:
                return 0
            remaining = self.cooldown_s - (self.clock() - self._opened_at)
            return max(0, int(remaining * 1e3))

    def describe(self) -> Dict[str, object]:
        """JSON-safe state for ``/v1/health``."""
        with self._lock:
            return {
                "state": self._peek_state(),
                "consecutive_failures": self._consecutive_failures,
                "threshold": self.threshold,
                "trips": self._trips,
                "retry_after_ms": (
                    0
                    if self._opened_at is None
                    else max(0, int((self.cooldown_s - (self.clock() - self._opened_at)) * 1e3))
                ),
            }


# ----------------------------------------------------------------------
# admission control (bounded in-flight work)
# ----------------------------------------------------------------------
class AdmissionController:
    """Sheds work past a bound instead of queueing it without limit.

    The gateway serializes engine work behind one lock, so every admitted
    request past the first is effectively queued.  ``limit`` bounds that
    queue: request ``limit + 1`` is refused *immediately* with
    :class:`OverloadedError` and a ``retry_after_ms`` hint sized from the
    recent per-request service time — overload becomes a fast, structured
    signal instead of unbounded latency.
    """

    def __init__(
        self,
        limit: int = 32,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if limit < 1:
            raise ValueError("admission limit must be >= 1")
        self.limit = int(limit)
        self.clock = clock
        self._lock = threading.Lock()
        self._in_flight = 0
        self._stats = {"admitted": 0, "rejected": 0, "completed": 0}
        # exponential moving average of service time, seeds retry_after_ms
        self._avg_service_s = 0.05

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting behind the one holding the gateway lock."""
        with self._lock:
            return max(0, self._in_flight - 1)

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)

    def retry_after_ms(self) -> int:
        with self._lock:
            # a freed slot needs roughly one service time per queued request
            return max(1, int(self._avg_service_s * (self._in_flight + 1) * 1e3))

    def admit(self, what: str = "request") -> "_Admission":
        """Context manager: admit or raise :class:`OverloadedError`."""
        with self._lock:
            if self._in_flight >= self.limit:
                self._stats["rejected"] += 1
                retry_after = max(1, int(self._avg_service_s * (self._in_flight + 1) * 1e3))
                raise OverloadedError(
                    f"{what} shed: {self._in_flight} requests already in flight "
                    f"(admission limit {self.limit})",
                    retry_after_ms=retry_after,
                )
            self._in_flight += 1
            self._stats["admitted"] += 1
        return _Admission(self)

    def _release(self, elapsed_s: float) -> None:
        with self._lock:
            self._in_flight -= 1
            self._stats["completed"] += 1
            self._avg_service_s = 0.8 * self._avg_service_s + 0.2 * max(elapsed_s, 1e-4)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "limit": self.limit,
                "in_flight": self._in_flight,
                "queue_depth": max(0, self._in_flight - 1),
                **self._stats,
            }


class _Admission:
    """The held admission slot; releases on ``__exit__``."""

    __slots__ = ("_controller", "_entered_at", "_released")

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller
        self._entered_at = controller.clock()
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._controller.clock() - self._entered_at)

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


# ----------------------------------------------------------------------
# idempotency replay cache
# ----------------------------------------------------------------------
class IdempotencyCache:
    """Bounded LRU of answered ``idempotency_key`` → response documents.

    A retried POST whose first execution already completed (the response
    was lost on the wire, not the work) replays the stored document instead
    of re-running the engine.  The stored response is byte-identical to
    the first one, so a client cannot distinguish a replay from the
    original — which is exactly the retry contract the chaos harness
    gates.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("idempotency capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[int, dict]]" = OrderedDict()
        self._stats = {"hits": 0, "misses": 0, "stored": 0}

    def get(self, key: Optional[str]) -> Optional[Tuple[int, dict]]:
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self._stats["hits"] += 1
            return entry

    def put(self, key: Optional[str], status: int, document: dict) -> None:
        if key is None:
            return
        with self._lock:
            self._entries[key] = (int(status), document)
            self._entries.move_to_end(key)
            self._stats["stored"] += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def validate_idempotency_key(key) -> Optional[str]:
    """Check a wire ``idempotency_key`` field (``None`` passes through)."""
    if key is None:
        return None
    if not isinstance(key, str) or not key or len(key) > 256:
        raise WireError(
            "malformed_request",
            "idempotency_key must be a non-empty string of at most 256 characters",
        )
    return key


def sleep_schedule(policy: Optional[RetryPolicy]) -> List[float]:
    """Materialised delays for ``policy`` (empty when retries are disabled)."""
    return [] if policy is None else list(policy.delays())
