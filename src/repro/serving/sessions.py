"""Server-side live-race sessions: stream laps in, get fleet forecasts out.

A :class:`RaceSession` is the stateful core behind the gateway's
``/v1/sessions`` API and behind
:meth:`repro.simulation.live.LiveRaceForecaster.stream`: a timing-feed
client posts one lap of telemetry at a time
(:meth:`RaceSession.observe_lap`) instead of re-sending whole lap
histories, and the session keeps everything incremental on the server —

* features are grown lap by lap through
  :class:`~repro.data.features.LiveFeatureBuilder`, whose output is
  byte-identical to rebuilding :func:`~repro.data.features.build_race_features`
  from scratch over the telemetry seen so far;
* forecasts run through the live forecaster's **carry-mode** fleet engine,
  so consecutive origins advance each car's recurrent warm-up state by one
  teacher-forcing step instead of replaying the history window;
* a forecast origin ``O`` is emitted as soon as its features are *final* —
  once lap ``O + 1 + delay`` has been observed — which is what makes a
  lap-streamed session bitwise equal to replaying the finished race
  through ``LiveRaceForecaster.stream``.

``delay`` defaults to the feature pipeline's forward-shift lag (the Fig. 7
shift features look ``shift_lag`` laps ahead).  Forecasters that condition
on *future* covariates taken from the series (the RankNet oracle variant)
additionally need the horizon to be final: use ``delay = shift_lag +
horizon`` for those (``LiveRaceForecaster.stream`` always does).

:class:`SessionManager` is the gateway's registry of open sessions: id
allocation, per-session locks for the threaded HTTP server, and bounded
concurrency.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.features import DEFAULT_MIN_LAPS, DEFAULT_SHIFT_LAG, LiveFeatureBuilder

__all__ = ["RaceSession", "SessionManager", "ManagedSession", "build_live_session"]


class RaceSession:
    """One live race streamed lap by lap through a fitted forecaster.

    Parameters
    ----------
    live:
        A :class:`~repro.simulation.live.LiveRaceForecaster` (duck-typed:
        anything with ``forecast_at(series_list, origin)``, ``min_history``
        and ``horizon``).  The session owns no model state of its own — it
        owns the *race* state: the streamed telemetry, the incremental
        feature builder, and the next origin cursor.
    delay:
        Laps to hold back before forecasting an origin, so its features are
        final (>= the feature pipeline's ``shift_lag``); origin ``O`` is
        emitted once lap ``O + 1 + delay`` has been observed.
    start, stop, stride:
        Origin window, matching ``LiveRaceForecaster.stream``:  origins run
        from ``max(start, min_history)`` to ``stop`` inclusive in steps of
        ``stride``; ``stop=None`` keeps the session open-ended.
    """

    def __init__(
        self,
        live,
        event: str = "live",
        year: int = 0,
        race_id: Optional[str] = None,
        delay: Optional[int] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        stride: int = 1,
        min_laps: int = DEFAULT_MIN_LAPS,
        shift_lag: int = DEFAULT_SHIFT_LAG,
    ) -> None:
        self.live = live
        self.delay = int(shift_lag if delay is None else delay)
        if self.delay < shift_lag:
            raise ValueError(
                f"delay must be >= the feature shift lag ({shift_lag}): an origin's "
                f"shift covariates are only final {shift_lag} laps later"
            )
        min_history = int(live.min_history)
        self._next_origin = min_history if start is None else max(int(start), min_history)
        self._stop = None if stop is None else int(stop)
        self._stride = max(int(stride), 1)
        self._builder = LiveFeatureBuilder(
            race_id=race_id if race_id is not None else f"{event}-{year}",
            event=event,
            year=year,
            shift_lag=shift_lag,
            min_laps=min_laps,
        )
        self.laps_observed = 0
        self.forecasts_emitted = 0
        # per-lap emission log: what each observed lap's drain produced.
        # This is the replay side of the crash-safety story — a client
        # whose lap post was applied but whose response was lost (a torn
        # connection, or a gateway SIGKILL after the journal append)
        # retries the same lap and gets the original forecasts back,
        # byte-identical, without the engine running (or the RNG
        # advancing) a second time.
        self._emitted_by_lap: Dict[int, List[Tuple[int, Dict[int, np.ndarray]]]] = {}
        # raw telemetry retained in arrival order, ``(lap, records)`` per
        # observed lap.  This is the continuous-learning tap: when the
        # session closes, the telemetry accumulator drains the exact laps
        # the race streamed (repro.learning.windows) instead of requiring
        # a separate offline telemetry export.
        self.lap_log: List[Tuple[int, list]] = []

    # ------------------------------------------------------------------
    @property
    def latest_lap(self) -> int:
        return self._builder.latest_lap

    @property
    def next_origin(self) -> int:
        return self._next_origin

    @property
    def num_cars(self) -> int:
        return self._builder.num_cars

    def observe_lap(self, lap: int, records) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """Feed one lap of telemetry; returns every newly-final forecast.

        Each returned item is ``(origin, {car_id: (n_samples, horizon)})``
        — usually zero or one per lap.  Origins whose whole-field forecast
        is empty (no eligible cars yet) are consumed silently, exactly as
        ``LiveRaceForecaster.stream`` skips them.
        """
        self._builder.observe_lap(lap, records)
        self.laps_observed += 1
        self.lap_log.append((int(lap), list(records)))
        emitted = self._drain(final=False)
        self._emitted_by_lap[int(lap)] = emitted
        return emitted

    def replay_lap(self, lap: int) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """The forecasts lap ``lap`` emitted when it was first observed.

        Raises :class:`KeyError` when the lap was never observed — the
        caller distinguishes a duplicate (idempotent replay) from a lap
        that is genuinely out of order.
        """
        return self._emitted_by_lap[int(lap)]

    def apply_lap(
        self, lap: int, records
    ) -> Tuple[List[Tuple[int, Dict[int, np.ndarray]]], bool]:
        """Observe a new lap, or replay a duplicate idempotently.

        Returns ``(emitted, replayed)``.  Keeping the new-vs-duplicate
        decision *inside* the session (rather than in the gateway) is what
        makes failover safe: after a worker restart the replacement session
        is rebuilt from the journal, so the gateway's view of ``latest_lap``
        can be stale — the session itself is the only authority on whether
        a lap is a duplicate.  Raises :class:`ValueError` for a lap that is
        neither newer than ``latest_lap`` nor a known duplicate (genuinely
        out of order).
        """
        lap = int(lap)
        if lap <= self.latest_lap:
            try:
                return self.replay_lap(lap), True
            except KeyError:
                raise ValueError(
                    f"lap {lap} is not newer than lap {self.latest_lap} "
                    f"and was never observed by this session"
                ) from None
        return self.observe_lap(lap, records), False

    def finish(self) -> List[Tuple[int, Dict[int, np.ndarray]]]:
        """Flush the origins still held back by ``delay`` at end of feed.

        Once the feed is over no further laps can revise the features, so
        every remaining origin up to ``stop`` is final and can be forecast
        immediately.  An open-ended session (``stop=None``) drains up to
        the last origin whose whole forecast horizon stays inside the
        observed feed — the same ``max_len - horizon - 1`` bound
        ``LiveRaceForecaster.stream`` uses, so a drained session never
        emits an origin a full-race replay would not.
        """
        if self._stop is None:
            limit = self.latest_lap - int(self.live.horizon) - 1
        else:
            limit = self._stop
        return self._drain(final=True, limit=limit)

    def _drain(self, final: bool, limit: Optional[int] = None) -> List:
        emitted: List[Tuple[int, Dict[int, np.ndarray]]] = []
        series_list = None
        while True:
            origin = self._next_origin
            if self._stop is not None and origin > self._stop:
                break
            if limit is not None and origin > limit:
                break
            if not final and self.latest_lap < origin + 1 + self.delay:
                break
            if series_list is None:
                # one materialisation per drain: the feature arrays cannot
                # change between origins while no new lap arrives
                series_list = self._builder.series()
            forecasts = self.live.forecast_at(series_list, origin)
            self._next_origin = origin + self._stride
            if forecasts:
                self.forecasts_emitted += 1
                emitted.append((origin, forecasts))
        return emitted


# ----------------------------------------------------------------------
# the gateway's session registry
# ----------------------------------------------------------------------
@dataclass
class ManagedSession:
    """A registered session plus the bookkeeping the gateway needs."""

    session_id: str
    session: RaceSession
    model: str
    opened_at: float
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: set (under ``lock``) once the session is closed, so a lap request
    #: that raced the close and already holds the ManagedSession cannot
    #: observe laps on a session whose model pin was released
    closed: bool = False
    #: the session's write-ahead journal (``repro.serving.journal``), when
    #: the gateway runs with crash-safe sessions enabled
    journal: Optional[object] = field(default=None, repr=False, compare=False)
    #: True when this session was rebuilt from its journal after a restart
    recovered: bool = False

    def describe(self) -> dict:
        return {
            "session": self.session_id,
            "model": self.model,
            "latest_lap": self.session.latest_lap,
            "next_origin": self.session.next_origin,
            "laps_observed": self.session.laps_observed,
            "forecasts_emitted": self.session.forecasts_emitted,
            "cars": self.session.num_cars,
            "recovered": self.recovered,
        }


class SessionManager:
    """Thread-safe registry of the gateway's open live sessions."""

    def __init__(self, limit: int = 32) -> None:
        if limit < 1:
            raise ValueError("session limit must be >= 1")
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._sessions: Dict[str, ManagedSession] = {}
        self._counter = 0

    def allocate_id(self) -> str:
        """Reserve the next ``sess-NNNNNN`` id without registering anything.

        The worker-mode gateway opens the session inside the worker
        process *before* registering it here (so a registration failure
        can roll the worker back by id) — the id must exist first.
        """
        with self._lock:
            self._counter += 1
            return f"sess-{self._counter:06d}"

    def open(
        self, session: RaceSession, model: str, session_id: Optional[str] = None
    ) -> ManagedSession:
        """Register a session; ``session_id`` pins the id (journal recovery).

        When an explicit id carries the standard ``sess-NNNNNN`` shape the
        allocation counter advances past it, so sessions opened after a
        crash recovery can never collide with the recovered ids.
        """
        with self._lock:
            if len(self._sessions) >= self.limit:
                raise RuntimeError(
                    f"session limit reached ({self.limit} open); close one first"
                )
            if session_id is None:
                self._counter += 1
                session_id = f"sess-{self._counter:06d}"
            else:
                session_id = str(session_id)
                if session_id in self._sessions:
                    raise RuntimeError(f"session id {session_id!r} is already open")
                match = re.fullmatch(r"sess-(\d+)", session_id)
                if match is not None:
                    self._counter = max(self._counter, int(match.group(1)))
            managed = ManagedSession(
                session_id=session_id,
                session=session,
                model=str(model),
                opened_at=time.time(),
            )
            self._sessions[session_id] = managed
            return managed

    def get(self, session_id: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.get(session_id)
        if managed is None:
            raise KeyError(session_id)
        return managed

    def close(self, session_id: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.pop(session_id, None)
        if managed is None:
            raise KeyError(session_id)
        return managed

    def close_all(self) -> List[ManagedSession]:
        with self._lock:
            closed = list(self._sessions.values())
            self._sessions.clear()
        return closed

    def describe(self) -> List[dict]:
        with self._lock:
            managed = list(self._sessions.values())
        return [m.describe() for m in managed]

    def snapshot(self) -> List[ManagedSession]:
        """The open :class:`ManagedSession` objects (supervision/failover)."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


def build_live_session(document: dict, forecaster) -> RaceSession:
    """Construct a :class:`RaceSession` from a validated ``session-open`` doc.

    Shared by the gateway's in-process path, the worker processes, and
    journal failover — all three must build *identical* sessions from the
    same wire document or the byte-identity contract across a worker
    restart breaks.  ``document`` is assumed envelope-checked; field
    coercion errors surface as ``ValueError``/``TypeError`` for the caller
    to map onto wire errors.
    """
    from ..simulation.live import LiveRaceForecaster
    from . import wire

    live = LiveRaceForecaster(
        forecaster,
        horizon=int(document.get("horizon", 2)),
        n_samples=int(document.get("n_samples", 50)),
        min_history=int(document.get("min_history", 10)),
        rng=wire.rng_from_wire(document.get("rng"), required=True),
        precision=wire.precision_from_wire(document, kind="session-open"),
    )
    return RaceSession(
        live,
        event=str(document.get("event", "live")),
        year=int(document.get("year", 0)),
        delay=document.get("delay"),
        start=document.get("start"),
        stop=document.get("stop"),
        stride=int(document.get("stride", 1)),
    )
