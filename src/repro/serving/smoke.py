"""Cross-process serving smoke check (the CI gate for ``repro-serve``).

One command::

    python -m repro.serving.smoke --dir /tmp/serve-smoke

It fits a tiny forecaster into a scratch
:class:`~repro.artifacts.ArtifactStore`, writes a ``repro-serve`` config,
launches the gateway as a **subprocess** (the real process boundary, not an
in-process test server), and then drives it with the stdlib
:class:`~repro.serving.ForecastClient`:

1. a batch forecast through ``/v1/forecast`` (and the micro-batch
   scheduler) must be byte-identical to submitting the same seeded
   requests to an in-process :class:`~repro.serving.ForecastService`;
2. a live race streamed lap by lap through ``/v1/sessions`` must be
   byte-identical to replaying the same race through an in-process
   :class:`~repro.simulation.live.LiveRaceForecaster`.

Exit status is non-zero on any mismatch — this is the on-the-wire version
of the artifact smoke's reload guarantee.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
from dataclasses import replace
from typing import List, Optional

import numpy as np

from ..artifacts import ArtifactStore
from ..data.features import build_race_features
from ..models import DeepARForecaster
from ..simulation import RaceSimulator, track_for_year
from ..simulation.live import LiveRaceForecaster
from .client import ForecastClient
from .service import ForecastService

MODEL_NAME = "smoke-deepar"
_LISTEN_RE = re.compile(r"listening on http://[^:]+:(\d+)")

_FORECAST_SEEDS = (11, 12, 13)
_SESSION = {"horizon": 2, "n_samples": 5, "min_history": 12, "start": 14, "stop": 30, "rng": 0}


def _race():
    track = replace(track_for_year("Indy500", 2018), total_laps=45, num_cars=8)
    return RaceSimulator(track, event="Indy500", year=2019, seed=3).run()


def _fit_store(root: str):
    race = _race()
    series = build_race_features(race)
    model = DeepARForecaster(
        encoder_length=12,
        decoder_length=2,
        hidden_dim=8,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_train_windows=150,
        seed=5,
    )
    model.fit(series[:4])
    ArtifactStore(root).save_model(MODEL_NAME, model)
    return race, series


def _named_batch(forecaster, series) -> List:
    return [
        ForecastClient.request(
            MODEL_NAME,
            forecaster._history_target(series, 20 + i),
            forecaster._history_covariates(series, 20 + i),
            forecaster._future_covariates(series, 20 + i, 2),
            n_samples=7,
            rng=seed,
            key=(series.race_id, series.car_id),
            origin=20 + i,
        )
        for i, seed in enumerate(_FORECAST_SEEDS)
    ]


def _spawn_server(config_path: str) -> "tuple[subprocess.Popen, int]":
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serving.server", "--config", config_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=os.environ.copy(),
    )
    deadline = time.monotonic() + 60.0
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _LISTEN_RE.search(line)
        if match:
            return process, int(match.group(1))
    process.kill()
    raise RuntimeError("repro-serve subprocess never reported a listening port")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Serving gateway smoke check")
    parser.add_argument("--dir", required=True, help="scratch directory for store + config")
    args = parser.parse_args(argv)
    os.makedirs(args.dir, exist_ok=True)

    print("fitting the smoke model into a scratch artifact store...", flush=True)
    race, series = _fit_store(args.dir)

    config_path = os.path.join(args.dir, "serve.json")
    with open(config_path, "w", encoding="utf-8") as fh:
        json.dump(
            {"store": ".", "port": 0, "preload": [MODEL_NAME], "batch_window_ms": 2.0}, fh
        )

    print("starting repro-serve as a subprocess...", flush=True)
    process, port = _spawn_server(config_path)
    try:
        client = ForecastClient(port=port)

        # 1. forecast byte-identity across the process boundary
        reference_service = ForecastService(ArtifactStore(args.dir))
        forecaster = reference_service.load(MODEL_NAME).forecaster
        via_http = client.forecast(_named_batch(forecaster, series[0]))
        direct = reference_service.submit(_named_batch(forecaster, series[0]))
        for got, expected in zip(via_http, direct):
            if not np.array_equal(got, expected):
                print("FAIL: HTTP forecast differs from in-process submit")
                return 1
        print(
            f"OK: /v1/forecast reproduced {len(direct)} in-process forecasts "
            f"byte-identically ({direct[0].shape} each)"
        )

        # 2. lap-streamed session byte-identity
        session = client.open_session(
            MODEL_NAME, event=race.event, year=race.year, delay=4, **_SESSION
        )
        streamed = []
        for lap, records in race.iter_laps():
            streamed.extend(session.lap(lap, records))
        streamed.extend(session.close())

        live = LiveRaceForecaster(
            ArtifactStore(args.dir).load_model(MODEL_NAME),
            horizon=_SESSION["horizon"],
            n_samples=_SESSION["n_samples"],
            min_history=_SESSION["min_history"],
            rng=_SESSION["rng"],
        )
        reference = list(live.stream(race, start=_SESSION["start"], stop=_SESSION["stop"]))
        if [o for o, _ in streamed] != [o for o, _ in reference]:
            print("FAIL: session emitted different origins than the in-process stream")
            return 1
        for (origin, got), (_, expected) in zip(streamed, reference):
            for car_id in set(got) | set(expected):
                if not np.array_equal(got.get(car_id), expected.get(car_id)):
                    print(f"FAIL: session forecast differs at origin {origin}, car {car_id}")
                    return 1
        cars = sum(len(f) for _, f in streamed)
        print(
            f"OK: a lap-streamed /v1/sessions race reproduced {len(streamed)} origins "
            f"({cars} car-forecasts) byte-identically"
        )
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
