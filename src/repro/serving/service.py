"""Multi-model serving front-end over the artifact registry.

:class:`ForecastService` is the model manager of the serving layer, in the
style of OpenNMT-py's translation server: models live on disk as named
artifacts (:class:`~repro.artifacts.ArtifactStore`), ``load(name)`` brings
one into memory and hands back a :class:`ModelHandle`, and each loaded
model owns its :class:`~repro.serving.engine.FleetForecaster` so that
concurrent workloads over different models never share warm-up caches.

Memory is bounded by a capacity knob: the service keeps at most
``capacity`` models resident and unloads the least-recently-used one when
a load would exceed it.  Because fitted models are durable artifacts, an
evicted model costs one disk read to bring back — not a refit.

Batches of :class:`~repro.serving.requests.NamedForecastRequest` are
routed per model: requests naming the same model are grouped and submitted
to its fleet engine together (one batched engine pass per distinct model),
and the results come back in submission order.  Routing through the
engines preserves the fleet guarantees — given per-request RNG streams,
the routed results are byte-identical to submitting each request directly
to its model's engine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..artifacts import ArtifactStore
from .engine import FleetForecaster
from .requests import NamedForecastRequest

__all__ = ["ForecastService", "ModelHandle"]


@dataclass
class ModelHandle:
    """A resident served model: the forecaster plus its manifest record."""

    name: str
    forecaster: object
    entry: dict = field(default_factory=dict)

    @property
    def family(self) -> str:
        return str(self.entry.get("family", type(self.forecaster).__name__))

    def engine(self, mode: Optional[str] = None) -> FleetForecaster:
        """The model's fleet engine (deep forecaster families only)."""
        fleet_engine = getattr(self.forecaster, "fleet_engine", None)
        if fleet_engine is None:
            raise TypeError(
                f"model {self.name!r} ({self.family}) has no fleet engine; "
                "use forecast()/forecast_fleet() for non-deep families"
            )
        return fleet_engine(mode) if mode is not None else fleet_engine()

    def __repr__(self) -> str:  # pragma: no cover
        return f"ModelHandle(name={self.name!r}, family={self.family!r})"


class ForecastService:
    """LRU-bounded manager serving forecasts from named model artifacts."""

    def __init__(
        self,
        store: Union[ArtifactStore, str],
        capacity: int = 4,
        mode: str = "exact",
        verify: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.capacity = int(capacity)
        self.mode = mode
        self.verify = bool(verify)
        self._resident: "OrderedDict[str, ModelHandle]" = OrderedDict()
        self._stats: Dict[str, int] = {"loads": 0, "hits": 0, "evictions": 0}

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def load(self, name: str) -> ModelHandle:
        """Return a handle to the named model, reading it from disk if needed.

        A resident model is promoted to most-recently-used; loading beyond
        ``capacity`` unloads the least-recently-used model first.
        """
        handle = self._resident.get(name)
        if handle is not None:
            self._resident.move_to_end(name)
            self._stats["hits"] += 1
            return handle
        forecaster = self.store.load_model(name, verify=self.verify)
        handle = ModelHandle(
            name=name,
            forecaster=forecaster,
            entry=self.store.entry(name),
        )
        self._resident[name] = handle
        self._stats["loads"] += 1
        while len(self._resident) > self.capacity:
            evicted, _ = self._resident.popitem(last=False)
            self._stats["evictions"] += 1
        return handle

    def unload(self, name: str) -> bool:
        """Drop the named model from memory; returns whether it was resident."""
        return self._resident.pop(name, None) is not None

    def loaded(self) -> List[str]:
        """Resident model names, least-recently-used first."""
        return list(self._resident)

    def available(self) -> List[str]:
        """Every artifact name the underlying store can serve."""
        return self.store.names()

    @property
    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    # ------------------------------------------------------------------
    # forecasting
    # ------------------------------------------------------------------
    def forecast(self, name: str, series, origin: int, horizon: int, n_samples: int = 100):
        """Single forecast through the named model (any family)."""
        return self.load(name).forecaster.forecast(
            series, int(origin), int(horizon), n_samples=n_samples
        )

    def forecast_fleet(self, name: str, tasks: Sequence[Tuple], n_samples: int = 100):
        """Batched ``(series, origin, horizon)`` forecasts through one model."""
        return self.load(name).forecaster.forecast_fleet(tasks, n_samples=n_samples)

    def submit(self, requests: Sequence[NamedForecastRequest]) -> List[np.ndarray]:
        """Route a mixed-model batch of named requests to the fleet engines.

        Requests are grouped by model name (one engine submit per distinct
        model); the returned sample arrays line up with the submission
        order.  All named models are loaded first — so a batch naming more
        distinct models than ``capacity`` raises rather than thrashing the
        LRU mid-flight.
        """
        requests = list(requests)
        if not requests:
            return []
        order: "OrderedDict[str, List[int]]" = OrderedDict()
        for i, named in enumerate(requests):
            if not isinstance(named, NamedForecastRequest):
                raise TypeError(
                    f"submit expects NamedForecastRequest, got {type(named).__name__}"
                )
            order.setdefault(named.model, []).append(i)
        if len(order) > self.capacity:
            raise ValueError(
                f"batch names {len(order)} distinct models, capacity is "
                f"{self.capacity}; raise the capacity or split the batch"
            )
        handles = {name: self.load(name) for name in order}
        outputs: List[Optional[np.ndarray]] = [None] * len(requests)
        for name, indices in order.items():
            engine = handles[name].engine(self.mode)
            results = engine.submit([requests[i].request for i in indices])
            for i, samples in zip(indices, results):
                outputs[i] = samples
        return outputs  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ForecastService(root={self.store.root!r}, "
            f"resident={self.loaded()}, capacity={self.capacity})"
        )
