"""Multi-model serving front-end over the artifact registry.

:class:`ForecastService` is the model manager of the serving layer, in the
style of OpenNMT-py's translation server: models live on disk as named
artifacts (:class:`~repro.artifacts.ArtifactStore`), ``load(name)`` brings
one into memory and hands back a :class:`ModelHandle`, and each loaded
model owns its :class:`~repro.serving.engine.FleetForecaster` so that
concurrent workloads over different models never share warm-up caches.

Memory is bounded by a capacity knob: the service keeps at most
``capacity`` models resident and unloads the least-recently-used one when
a load would exceed it.  Because fitted models are durable artifacts, an
evicted model costs one disk read to bring back — not a refit.

LRU accounting covers *serving*, not just loading: :meth:`submit` marks
every routed model most-recently-used again when its engine pass
completes, :meth:`touch` lets long-lived consumers (the HTTP gateway's
lap-streaming sessions) refresh a model they use without re-loading it,
and :meth:`pin`/:meth:`unpin` exclude a model from eviction entirely while
stateful work (a live session carrying warm-up states) depends on that
exact resident instance — evicting it would silently reset the carried
states on reload.

Batches of :class:`~repro.serving.requests.NamedForecastRequest` are
routed per model: requests naming the same model are grouped and submitted
to its fleet engine together (one batched engine pass per distinct model),
and the results come back in submission order.  Routing through the
engines preserves the fleet guarantees — given per-request RNG streams,
the routed results are byte-identical to submitting each request directly
to its model's engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..artifacts import ArtifactAliasError, ArtifactStore
from .engine import FleetForecaster
from .requests import NamedForecastRequest

__all__ = ["ForecastService", "ModelHandle"]


@dataclass
class ModelHandle:
    """A resident served model: the forecaster plus its manifest record."""

    name: str
    forecaster: object
    entry: dict = field(default_factory=dict)

    @property
    def family(self) -> str:
        return str(self.entry.get("family", type(self.forecaster).__name__))

    def engine(
        self, mode: Optional[str] = None, precision: Optional[str] = None
    ) -> FleetForecaster:
        """The model's fleet engine (deep forecaster families only).

        ``precision`` selects the compute tier the engine runs on (see
        :mod:`repro.nn.precision`); each ``(mode, precision)`` pair is a
        separate cached engine on the forecaster, so low-precision traffic
        never perturbs the byte-identical float64 reference replica.
        """
        fleet_engine = getattr(self.forecaster, "fleet_engine", None)
        if fleet_engine is None:
            raise TypeError(
                f"model {self.name!r} ({self.family}) has no fleet engine; "
                "use forecast()/forecast_fleet() for non-deep families"
            )
        kwargs = {}
        if mode is not None:
            kwargs["mode"] = mode
        if precision is not None:
            kwargs["precision"] = precision
        return fleet_engine(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ModelHandle(name={self.name!r}, family={self.family!r})"


class ForecastService:
    """LRU-bounded manager serving forecasts from named model artifacts."""

    def __init__(
        self,
        store: Union[ArtifactStore, str],
        capacity: int = 4,
        mode: str = "exact",
        verify: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.capacity = int(capacity)
        self.mode = mode
        self.verify = bool(verify)
        self._resident: "OrderedDict[str, ModelHandle]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        # guards the registry (residency, pins, LRU order, stats) — not the
        # engine passes themselves, which run outside it so that different
        # models can forecast concurrently.  Callers running *the same*
        # model concurrently must serialize externally (the gateway holds a
        # per-model lock / routes through a per-model worker).
        self._registry_lock = threading.RLock()
        self._stats: Dict[str, int] = {
            "loads": 0,
            "hits": 0,
            "evictions": 0,
            "touches": 0,
        }

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def load(self, name: str) -> ModelHandle:
        """Return a handle to the named model, reading it from disk if needed.

        A resident model is promoted to most-recently-used; loading beyond
        ``capacity`` unloads the least-recently-used model first.

        Aliases resolve to their current target *here*, at load time, and
        the handle is cached under the target's own name — so traffic
        addressed to ``champion`` and to the target artifact directly share
        one resident instance, and re-pointing the alias can never leave a
        stale handle cached under the alias name.
        """
        with self._registry_lock:
            name = self.store.resolve(name)
            handle = self._resident.get(name)
            if handle is not None:
                self._resident.move_to_end(name)
                self._stats["hits"] += 1
                return handle
            if len(self._pins) >= self.capacity:
                raise ValueError(
                    f"cannot load {name!r}: all {self.capacity} capacity slots are "
                    f"held by pinned models {sorted(self._pins)}; raise the capacity "
                    "or close the sessions pinning them"
                )
            forecaster = self.store.load_model(name, verify=self.verify)
            handle = ModelHandle(
                name=name,
                forecaster=forecaster,
                entry=self.store.entry(name),
            )
            self._resident[name] = handle
            self._stats["loads"] += 1
            while len(self._resident) > self.capacity:
                victim = next((n for n in self._resident if n not in self._pins), None)
                if victim is None:  # unreachable given the pre-load pin guard
                    break
                del self._resident[victim]
                self._stats["evictions"] += 1
            return handle

    def touch(self, name: str) -> bool:
        """Mark a resident model most-recently-used without reloading it.

        The refresh path for consumers that hold a model across many uses
        (a lap-streaming session, a long rolling evaluation) — without it,
        a model can sit at the LRU end while actively serving and be
        evicted by unrelated loads.  Returns whether the model was
        resident.
        """
        with self._registry_lock:
            name = self.store.resolve(name)
            if name not in self._resident:
                return False
            self._resident.move_to_end(name)
            self._stats["touches"] += 1
            return True

    def pin(self, name: str) -> ModelHandle:
        """Load the named model and exclude it from LRU eviction.

        Pins nest (one per open session); a model stays pinned until every
        :meth:`unpin` matched its :meth:`pin`.  Pinning matters for carry-
        mode consumers: their warm-up states live on the resident engine
        instance, so a silent evict-and-reload would reset them.
        """
        with self._registry_lock:
            name = self.store.resolve(name)
            handle = self.load(name)
            self._pins[name] = self._pins.get(name, 0) + 1
            return handle

    def unpin(self, name: str) -> bool:
        """Release one pin on the named model; returns whether it was pinned."""
        with self._registry_lock:
            name = self.store.resolve(name)
            count = self._pins.get(name)
            if count is None:
                return False
            if count <= 1:
                del self._pins[name]
            else:
                self._pins[name] = count - 1
            return True

    def pinned(self) -> List[str]:
        """Names currently excluded from eviction, sorted."""
        with self._registry_lock:
            return sorted(self._pins)

    def unload(self, name: str) -> bool:
        """Drop the named model from memory; returns whether it was resident.

        Pinned models refuse to unload — a live session still depends on
        the resident instance and its carried states.  So do models an
        alias points at (and alias names themselves): silently dropping
        the target of ``champion`` would turn the next aliased request
        into a surprise cold load — or, worse, a stale handle — so the
        caller must re-point or delete the alias first
        (:class:`~repro.artifacts.ArtifactAliasError`).
        """
        with self._registry_lock:
            if self.store.is_alias(name):
                raise ArtifactAliasError(
                    f"{name!r} is an alias; unload its target or delete the "
                    "alias instead"
                )
            referencing = self.store.aliases_for(name)
            if referencing:
                raise ArtifactAliasError(
                    f"model {name!r} is the target of alias(es) "
                    f"{', '.join(repr(a) for a in referencing)} and cannot be "
                    "unloaded while they point at it"
                )
            if name in self._pins:
                raise ValueError(
                    f"model {name!r} is pinned by {self._pins[name]} active consumer(s) "
                    "and cannot be unloaded"
                )
            return self._resident.pop(name, None) is not None

    def loaded(self) -> List[str]:
        """Resident model names, least-recently-used first."""
        with self._registry_lock:
            return list(self._resident)

    def available(self) -> List[str]:
        """Every artifact name the underlying store can serve."""
        return self.store.names()

    @property
    def stats(self) -> Dict[str, int]:
        with self._registry_lock:
            return dict(self._stats)

    # ------------------------------------------------------------------
    # forecasting
    # ------------------------------------------------------------------
    def forecast(self, name: str, series, origin: int, horizon: int, n_samples: int = 100):
        """Single forecast through the named model (any family)."""
        return self.load(name).forecaster.forecast(
            series, int(origin), int(horizon), n_samples=n_samples
        )

    def forecast_fleet(self, name: str, tasks: Sequence[Tuple], n_samples: int = 100):
        """Batched ``(series, origin, horizon)`` forecasts through one model."""
        return self.load(name).forecaster.forecast_fleet(tasks, n_samples=n_samples)

    def submit(self, requests: Sequence[NamedForecastRequest]) -> List[np.ndarray]:
        """Route a mixed-model batch of named requests to the fleet engines.

        Requests are grouped by ``(model, precision)`` (one engine submit
        per distinct replica); the returned sample arrays line up with the
        submission order.  All named models are loaded first — so a batch
        naming more distinct models than ``capacity`` raises rather than
        thrashing the LRU mid-flight.

        Alias targets are resolved here, at submit time — a batch mixing
        ``champion`` and its target artifact by name routes through a
        single engine pass, and every request in one batch sees the same
        resolution even if a promotion lands mid-flight.
        """
        requests = list(requests)
        if not requests:
            return []
        resolved: Dict[str, str] = {}
        order: "OrderedDict[Tuple[str, str], List[int]]" = OrderedDict()
        for i, named in enumerate(requests):
            if not isinstance(named, NamedForecastRequest):
                raise TypeError(
                    f"submit expects NamedForecastRequest, got {type(named).__name__}"
                )
            if named.model not in resolved:
                resolved[named.model] = self.store.resolve(named.model)
            order.setdefault((resolved[named.model], named.precision), []).append(i)
        names = OrderedDict((model, None) for model, _ in order)
        with self._registry_lock:
            # slots held by pinned models outside this batch are not available —
            # loading past them would evict a batch-mate mid-flight instead
            reserved = sum(1 for name in self._pins if name not in names)
            if len(names) > self.capacity - reserved:
                raise ValueError(
                    f"batch names {len(names)} distinct models, but only "
                    f"{self.capacity - reserved} of {self.capacity} slots are free "
                    f"({reserved} pinned); raise the capacity or split the batch"
                )
            handles = {name: self.load(name) for name in names}
        outputs: List[Optional[np.ndarray]] = [None] * len(requests)
        for (name, precision), indices in order.items():
            engine = handles[name].engine(self.mode, precision)
            results = engine.submit([requests[i].request for i in indices])
            for i, samples in zip(indices, results):
                outputs[i] = samples
            # re-promote on completion, not just on the upfront load: an
            # engine pass can be long, and loads interleaved by other
            # consumers must not leave an actively-serving model at the
            # LRU end of the order
            self.touch(name)
        return outputs  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ForecastService(root={self.store.root!r}, "
            f"resident={self.loaded()}, capacity={self.capacity})"
        )
