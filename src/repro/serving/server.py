"""The HTTP gateway of the serving layer (``repro-serve``).

A stdlib :class:`ThreadingHTTPServer` front-end over the in-process
serving stack, in the style of OpenNMT-py's REST translation server: a
JSON config file names the :class:`~repro.artifacts.ArtifactStore` and the
models to preload, and the process exposes the versioned wire API
(:mod:`repro.serving.wire`):

``GET  /v1/health``
    Liveness/readiness probe.
``GET  /v1/models``
    The store's model catalog, with per-model loaded/pinned state and the
    service's LRU counters.
``POST /v1/models/<name>/load`` / ``POST /v1/models/<name>/unload``
    Model lifecycle against the :class:`~repro.serving.ForecastService`.
``POST /v1/forecast``
    A batch of named forecast requests.  Requests from concurrent
    connections are coalesced by the
    :class:`~repro.serving.scheduler.MicroBatchScheduler` into shared
    per-model fleet passes — byte-identical to direct submission because
    every wire request carries its own RNG stream.
``POST /v1/scenarios``
    A what-if scenario run (:mod:`repro.scenarios`): the response streams
    chunked NDJSON — one wire event per completed race, then the summary —
    so season-scale sweeps report progress instead of blocking.  Forecast
    passes coalesce through the same micro-batch scheduler as
    ``/v1/forecast`` traffic and are byte-identical to the in-process
    ``repro-scenarios`` runner under the same request seed.
``POST /v1/strategy/sweep``
    A rolling pit-strategy sweep through a served RankNet model.
``POST /v1/sessions`` / ``POST /v1/sessions/<id>/lap`` / ``DELETE``
    Server-side live race sessions (:mod:`repro.serving.sessions`): open a
    race, stream one lap of telemetry at a time, receive the whole-field
    forecast for every origin that became final — the carry-mode state
    lives on the server, the client only ships new laps.  A session pins
    its model so LRU pressure from other clients cannot evict the engine
    holding its carried states.

Every response is a versioned wire document; failures are structured
error envelopes, never tracebacks.

Concurrency: there is **no global gateway lock**.  Engine work serializes
*per model* — each model gets its own micro-batch scheduler, and behind it
either a per-model lock around the shared in-process service (default) or,
with ``"workers": true``, a dedicated supervised worker subprocess
(:mod:`repro.serving.supervisor`).  A slow sweep on model A never blocks a
forecast on model B, health always answers, and in worker mode a crashed
replica is restarted with exponential backoff while its live sessions fail
over by journal replay — byte-identical to an uncrashed run.  One meta
lock guards only cheap registries (breakers, schedulers, armed faults).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from ..artifacts import ArtifactAliasError, ArtifactNotFoundError, ArtifactStore
from . import wire
from .faults import FaultPlan
from .journal import SessionJournal, journal_dir, load_session, recover_sessions
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    IdempotencyCache,
    validate_idempotency_key,
)
from .scheduler import MicroBatchScheduler
from .service import ForecastService
from .sessions import SessionManager, build_live_session
from .supervisor import RaceSessionProxy, WorkerSupervisor
from .wire import WireError
from .workers import execute_sweep

__all__ = ["ServerConfig", "ForecastGateway", "ForecastServer", "main"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: every key a server config file may carry — anything else is an error
CONFIG_KEYS = {
    "store": "path of the ArtifactStore directory (required)",
    "host": f"bind address (default {DEFAULT_HOST})",
    "port": f"bind port, 0 picks a free one (default {DEFAULT_PORT})",
    "capacity": "max resident models in the ForecastService (default 4)",
    "mode": "fleet engine warm-up mode for /v1/forecast: exact|carry (default exact)",
    "verify": "checksum artifacts on load (default true)",
    "preload": "model names to load at startup (default [])",
    "batch_window_ms": "micro-batch collection window in milliseconds (default 5.0)",
    "max_batch": "micro-batch flush size (default 64)",
    "max_sessions": "max concurrently open live sessions (default 32)",
    "max_inflight": "admission bound on concurrently admitted work requests (default 32)",
    "request_deadline_ms": "default server-side time budget per request (default none)",
    "breaker_threshold": "consecutive engine failures before a model's circuit opens (default 5)",
    "breaker_cooldown_s": "seconds an open circuit waits before a half-open probe (default 30)",
    "journal": "crash-safe session write-ahead journal on/off (default true)",
    "journal_compact_laps": "laps between session journal compactions; null disables (default 50)",
    "fault_plan": "deterministic fault-injection plan: inline object or JSON file path (default none)",
    "drain_grace_s": "seconds a SIGTERM drain waits for in-flight work (default 10)",
    "workers": "serve each model from a supervised worker subprocess (default false)",
    "worker_queue": "per-worker bounded queue depth before shedding overloaded (default 8)",
    "worker_restart_budget": "rapid consecutive worker restarts allowed before the replica is failed (default 3)",
    "worker_backoff_s": "base of the exponential backoff between worker restarts (default 0.05)",
    "heartbeat_interval_s": "worker heartbeat ping period in seconds (default 0.25)",
    "heartbeat_timeout_s": "missed-heartbeat deadline before a worker counts as hung (default 2.0)",
}


@dataclass
class ServerConfig:
    """Validated gateway configuration (see :data:`CONFIG_KEYS`)."""

    store: str
    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    capacity: int = 4
    mode: str = "exact"
    verify: bool = True
    preload: List[str] = field(default_factory=list)
    batch_window_ms: float = 5.0
    max_batch: int = 64
    max_sessions: int = 32
    max_inflight: int = 32
    request_deadline_ms: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    journal: bool = True
    journal_compact_laps: Optional[int] = 50
    fault_plan: Optional[object] = None
    drain_grace_s: float = 10.0
    workers: bool = False
    worker_queue: int = 8
    worker_restart_budget: int = 3
    worker_backoff_s: float = 0.05
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0

    def __post_init__(self) -> None:
        self.store = str(self.store)
        self.host = str(self.host)
        self.port = int(self.port)
        self.capacity = int(self.capacity)
        self.mode = str(self.mode)
        self.verify = bool(self.verify)
        self.preload = [str(name) for name in self.preload]
        self.batch_window_ms = float(self.batch_window_ms)
        self.max_batch = int(self.max_batch)
        self.max_sessions = int(self.max_sessions)
        self.max_inflight = int(self.max_inflight)
        if self.request_deadline_ms is not None:
            self.request_deadline_ms = float(self.request_deadline_ms)
            if self.request_deadline_ms <= 0:
                raise ValueError("request_deadline_ms must be > 0 when set")
        self.breaker_threshold = int(self.breaker_threshold)
        self.breaker_cooldown_s = float(self.breaker_cooldown_s)
        self.journal = bool(self.journal)
        if self.journal_compact_laps is not None:
            self.journal_compact_laps = int(self.journal_compact_laps)
            if self.journal_compact_laps < 1:
                raise ValueError("journal_compact_laps must be >= 1 when set")
        self.drain_grace_s = float(self.drain_grace_s)
        self.workers = bool(self.workers)
        self.worker_queue = int(self.worker_queue)
        self.worker_restart_budget = int(self.worker_restart_budget)
        self.worker_backoff_s = float(self.worker_backoff_s)
        self.heartbeat_interval_s = float(self.heartbeat_interval_s)
        self.heartbeat_timeout_s = float(self.heartbeat_timeout_s)
        if self.worker_queue < 1:
            raise ValueError("worker_queue must be >= 1")
        if self.worker_restart_budget < 1:
            raise ValueError("worker_restart_budget must be >= 1")
        if self.worker_backoff_s < 0:
            raise ValueError("worker_backoff_s must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")

    def load_fault_plan(self, base_dir: Optional[str] = None) -> Optional[FaultPlan]:
        """Resolve the ``fault_plan`` key: inline object, file path, or none."""
        if self.fault_plan is None:
            return None
        if isinstance(self.fault_plan, FaultPlan):
            return self.fault_plan
        if isinstance(self.fault_plan, str):
            path = self.fault_plan
            if base_dir is not None and not os.path.isabs(path):
                path = os.path.join(base_dir, path)
            return FaultPlan.from_file(path)
        return FaultPlan.from_dict(self.fault_plan)

    @classmethod
    def from_dict(cls, document: dict, base_dir: Optional[str] = None) -> "ServerConfig":
        """Build a config from a parsed JSON document.

        Unknown keys are rejected with the full known-key list — a typo
        (``"window_ms"`` for ``"batch_window_ms"``) must fail loudly, not
        silently serve with the default.
        """
        if not isinstance(document, dict):
            raise ValueError("server config must be a JSON object")
        unknown = sorted(set(document) - set(CONFIG_KEYS))
        if unknown:
            known = ", ".join(sorted(CONFIG_KEYS))
            raise ValueError(
                f"unknown server config key(s): {', '.join(unknown)}; known keys: {known}"
            )
        if "store" not in document:
            raise ValueError("server config must name a 'store' directory")
        document = dict(document)
        if base_dir is not None and not os.path.isabs(document["store"]):
            document["store"] = os.path.join(base_dir, document["store"])
        plan = document.get("fault_plan")
        if base_dir is not None and isinstance(plan, str) and not os.path.isabs(plan):
            document["fault_plan"] = os.path.join(base_dir, plan)
        return cls(**document)

    @classmethod
    def from_file(cls, path: str) -> "ServerConfig":
        """Load and validate a JSON config file (store paths relative to it)."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                document = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"config file {path!r} is not valid JSON: {exc}") from exc
        return cls.from_dict(document, base_dir=os.path.dirname(os.path.abspath(path)))


# ----------------------------------------------------------------------
# the gateway (transport-independent request handling)
# ----------------------------------------------------------------------
_ROUTES = (
    ("GET", re.compile(r"^/v1/health$"), "health"),
    ("GET", re.compile(r"^/v1/models$"), "models_list"),
    # alias routes come before the per-model ones: ``/v1/models/aliases/x``
    # must dispatch as an alias operation, never as model name "aliases"
    ("GET", re.compile(r"^/v1/models/aliases$"), "alias_list"),
    ("GET", re.compile(r"^/v1/models/aliases/(?P<alias>[^/]+)$"), "alias_resolve"),
    ("POST", re.compile(r"^/v1/models/aliases/(?P<alias>[^/]+)/promote$"), "alias_promote"),
    ("POST", re.compile(r"^/v1/models/aliases/(?P<alias>[^/]+)/rollback$"), "alias_rollback"),
    ("POST", re.compile(r"^/v1/models/(?P<name>[^/]+)/load$"), "model_load"),
    ("POST", re.compile(r"^/v1/models/(?P<name>[^/]+)/unload$"), "model_unload"),
    ("POST", re.compile(r"^/v1/forecast$"), "forecast"),
    ("POST", re.compile(r"^/v1/scenarios$"), "scenarios"),
    ("POST", re.compile(r"^/v1/strategy/sweep$"), "strategy_sweep"),
    ("GET", re.compile(r"^/v1/sessions$"), "sessions_list"),
    ("POST", re.compile(r"^/v1/sessions$"), "session_open"),
    ("POST", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)/lap$"), "session_lap"),
    ("DELETE", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)$"), "session_close"),
)


class ForecastGateway:
    """Routes wire documents to the serving stack; owns all its state."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.started_at = time.monotonic()
        self.store = ArtifactStore(config.store)
        self.service = ForecastService(
            self.store, capacity=config.capacity, mode=config.mode, verify=config.verify
        )
        # No global gateway lock.  Engine work serializes per model — a
        # per-model lock around the shared service in-process, a per-model
        # worker subprocess in worker mode — so cross-model traffic runs
        # concurrently.  This meta lock guards only the cheap registries
        # below (breakers, schedulers, locks, the armed-fault counter).
        self._meta_lock = threading.RLock()
        self._model_locks: Dict[str, threading.RLock] = {}
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self.supervisor: Optional[WorkerSupervisor] = None
        if config.workers:
            self.supervisor = WorkerSupervisor(
                config.store,
                capacity=config.capacity,
                mode=config.mode,
                verify=config.verify,
                queue_limit=config.worker_queue,
                restart_budget=config.worker_restart_budget,
                backoff_base_s=config.worker_backoff_s,
                heartbeat_interval_s=config.heartbeat_interval_s,
                heartbeat_timeout_s=config.heartbeat_timeout_s,
                on_worker_restarted=self._failover_sessions,
            )
        self.sessions = SessionManager(limit=config.max_sessions)
        # ---- resilience state ------------------------------------------
        self.admission = AdmissionController(limit=config.max_inflight)
        self.idempotency = IdempotencyCache()
        #: injectable for tests: drives breaker cooldown without sleeping
        self.breaker_clock = time.monotonic
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.faults = config.load_fault_plan()
        self._armed_engine_errors = 0
        self.draining = False
        self.journal_dir = journal_dir(config.store) if config.journal else None
        self.sessions_recovered = 0
        self.recovery_errors: List[str] = []
        for name in config.preload:
            if self.supervisor is not None:
                self.supervisor.ensure(name)
            else:
                self.service.load(name)
        self._recover_journaled_sessions()

    # ------------------------------------------------------------------
    # per-model routing
    # ------------------------------------------------------------------
    def _model_lock(self, name: str) -> threading.RLock:
        """The lock serializing in-process engine work on one model."""
        with self._meta_lock:
            lock = self._model_locks.get(name)
            if lock is None:
                lock = self._model_locks[name] = threading.RLock()
            return lock

    def _scheduler(self, model: str) -> MicroBatchScheduler:
        """The micro-batch scheduler owning one model's engine passes."""
        with self._meta_lock:
            scheduler = self._schedulers.get(model)
            if scheduler is None:
                scheduler = self._schedulers[model] = MicroBatchScheduler(
                    lambda requests, name=model: self._submit_model(name, requests),
                    window=self.config.batch_window_ms / 1e3,
                    max_batch=self.config.max_batch,
                )
            return scheduler

    def scheduler_stats(self) -> Dict[str, int]:
        """Micro-batch counters summed over the per-model schedulers."""
        with self._meta_lock:
            schedulers = list(self._schedulers.values())
        totals: Dict[str, int] = {}
        for scheduler in schedulers:
            for key, value in scheduler.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def submit_settled(self, requests):
        """Fan a mixed-model batch out to the per-model schedulers.

        Each named model has its own scheduler (created on first sight),
        so model A's flush — or its crashed worker — never blocks model
        B's; collection spans the per-model entries, preserving the
        submission-order contract of ``MicroBatchScheduler.submit_settled``.
        Requests naming unregistered models settle immediately instead of
        growing the scheduler registry.
        """
        requests = list(requests)
        if not requests:
            return []
        outcomes: List[object] = [None] * len(requests)
        groups: Dict[str, List[int]] = {}
        resolved: Dict[str, object] = {}
        for index, named in enumerate(requests):
            # alias targets resolve here, at submit time: requests naming
            # ``champion`` and its target artifact share one scheduler (and
            # therefore one coalesced engine pass), and a promotion landing
            # mid-flight never splits a batch across two targets
            if named.model not in resolved:
                try:
                    resolved[named.model] = self.store.resolve(named.model)
                except ArtifactNotFoundError as exc:  # dangling alias
                    resolved[named.model] = exc
            model = resolved[named.model]
            if isinstance(model, ArtifactNotFoundError):
                outcomes[index] = model
                continue
            groups.setdefault(model, []).append(index)
        waiting = []
        for model, indices in groups.items():
            if model not in self._schedulers and model not in self.store:
                error = ArtifactNotFoundError(
                    f"artifact {model!r} is not registered in {self.store.root}"
                )
                for index in indices:
                    outcomes[index] = error
                continue
            entries = self._scheduler(model).enqueue([requests[i] for i in indices])
            waiting.extend(zip(indices, entries))
        if waiting:
            settled = MicroBatchScheduler.collect([entry for _, entry in waiting])
            for (index, _), outcome in zip(waiting, settled):
                outcomes[index] = outcome
        return outcomes

    def _submit_model(self, model: str, requests):
        """One model's scheduler downstream: guards, then its engine.

        Runs only on that model's scheduler worker thread.  Raising here
        fails the *coalesced* batch; the scheduler then isolates by
        retrying each request alone, so every guard below also fires with
        single-request precision on the retry pass.
        """
        with self._meta_lock:
            breaker = self._breakers.get(model)
        # fail fast while the model's circuit is open — no queueing behind
        # an engine that is known-broken
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"model {model!r} circuit is open after repeated engine "
                f"failures; retry after cooldown",
                retry_after_ms=breaker.retry_after_ms() or 1000,
            )
        # shed queued work whose budget ran out while it waited
        deadlines = []
        for named in requests:
            if named.deadline is not None:
                named.deadline.check(f"forecast for model {model!r}")
                deadlines.append(named.deadline)
        with self._meta_lock:
            armed = self._armed_engine_errors > 0
            if armed:
                self._armed_engine_errors -= 1
        if armed:
            self._breaker(model).record_failure()
            raise RuntimeError("injected engine failure (fault plan)")
        try:
            if self.supervisor is not None:
                timeout_s = None
                if deadlines:
                    timeout_s = max(min(d.remaining() for d in deadlines), 1e-3)
                results = self.supervisor.submit(model, requests, timeout_s=timeout_s)
            else:
                with self._model_lock(model):
                    results = self.service.submit(requests)
        except Exception as exc:
            # engine failures feed the breaker; request-shaped failures
            # (unknown model, malformed arrays) and structured wire errors
            # (worker_restarting, an overloaded worker queue) do not —
            # they say nothing about the engine's health
            if not isinstance(
                exc, (WireError, ArtifactNotFoundError, TypeError, ValueError)
            ):
                self._breaker(model).record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return results

    def _breaker(self, name: str) -> CircuitBreaker:
        with self._meta_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    cooldown_s=self.config.breaker_cooldown_s,
                    clock=lambda: self.breaker_clock(),
                )
            return breaker

    def arm_engine_errors(self, count: int) -> None:
        """Make the next ``count`` engine submits raise (fault injection)."""
        with self._meta_lock:
            self._armed_engine_errors += int(count)

    def inject_worker_fault(self, kind: str, model: str = "") -> Optional[int]:
        """Execute a ``kill_worker``/``hang_worker`` fault; returns the pid hit.

        A no-op (``None``) on gateways without a worker pool — the fault
        kinds are only meaningful against real replica subprocesses.
        """
        if self.supervisor is None:
            return None
        if kind == "kill_worker":
            return self.supervisor.kill_worker(model)
        return self.supervisor.hang_worker(model)

    def close(self) -> None:
        with self._meta_lock:
            schedulers = list(self._schedulers.values())
        for scheduler in schedulers:
            scheduler.close()
        for managed in self.sessions.close_all():
            # keep the journal: a session open at shutdown is exactly what
            # the next boot must recover
            if managed.journal is not None:
                managed.journal.close(remove=False)
            if self.supervisor is not None:
                self.supervisor.unpin(managed.model)
            else:
                self.service.unpin(managed.model)
        if self.supervisor is not None:
            self.supervisor.close()

    # ------------------------------------------------------------------
    # session journal recovery (runs once, at boot)
    # ------------------------------------------------------------------
    def _recover_journaled_sessions(self) -> None:
        """Rebuild every journaled live session left behind by a dead gateway.

        Replaying the ``open`` document re-seeds the session's RNG
        transport and replaying the laps re-consumes its streams and
        carry-mode warm-ups in the original order, so the rebuilt session
        continues producing forecasts byte-identical to a gateway that
        never died.  A journal that cannot be replayed (its model left the
        store, say) is kept on disk and reported, never silently dropped.
        """
        if self.journal_dir is None:
            return
        for recovered in recover_sessions(self.journal_dir):
            try:
                managed = self._open_session(
                    recovered.open_document, session_id=recovered.session_id
                )
                managed.recovered = True
                for record in recovered.laps:
                    # drained forecasts were already delivered before the
                    # crash; replaying repopulates the per-lap emission log
                    # so a retried lap post still gets its original answer
                    managed.session.observe_lap(record["lap"], record["records"])
                self.sessions_recovered += 1
            except Exception as exc:
                self.recovery_errors.append(f"{recovered.session_id}: {exc}")

    def _failover_sessions(self, model: str) -> None:
        """Replay journaled live sessions into a freshly restarted worker.

        Runs on the supervisor's restart thread *before* the replacement
        replica is marked live, so no client op can interleave with the
        replay.  The journal's open document and lap records rebuild the
        worker-side session through the exact construction the dead worker
        ran — RNG transport included — so every forecast after the
        failover is byte-identical to an uncrashed worker's.  A session
        that cannot fail over (journaling off, or a replay error) is
        closed and reported in ``recovery_errors`` rather than silently
        served from a blank replica.
        """
        if self.supervisor is None:
            return
        for managed in self.sessions.snapshot():
            if managed.model != model:
                continue
            with managed.lock:
                if managed.closed:
                    continue
                try:
                    recovered = (
                        load_session(self.journal_dir, managed.session_id)
                        if self.journal_dir is not None
                        else None
                    )
                    if recovered is None:
                        raise RuntimeError("no journal to fail over from")
                    self.supervisor.session_open(
                        model, managed.session_id, recovered.open_document, internal=True
                    )
                    for record in recovered.laps:
                        # re-applying repopulates the worker-side emission
                        # log too, so a duplicate lap posted after the
                        # failover still replays its original forecasts
                        managed.session.apply_lap(
                            record["lap"], record["records"], internal=True
                        )
                    managed.recovered = True
                    self.sessions_recovered += 1
                except Exception as exc:
                    self.recovery_errors.append(
                        f"{managed.session_id}: worker failover failed: {exc}"
                    )
                    managed.closed = True
                    try:
                        self.sessions.close(managed.session_id)
                    except KeyError:
                        pass
                    self.supervisor.unpin(model)
                    if managed.journal is not None:
                        managed.journal.close(remove=False)

    # ------------------------------------------------------------------
    #: handlers that do engine/session work and therefore pass admission
    #: control; probes (health, catalogs, listings) always answer
    _WORK_HANDLERS = frozenset(
        {"forecast", "strategy_sweep", "session_open", "session_lap", "session_close"}
    )

    def handle(self, method: str, path: str, body: Optional[dict]) -> Tuple[int, dict]:
        """Dispatch one request; always returns ``(status, wire document)``."""
        try:
            path_matched = False
            for route_method, pattern, handler in _ROUTES:
                match = pattern.match(path)
                if match is None:
                    continue
                path_matched = True
                if method == route_method:
                    return self._execute(handler, body, match.groupdict())
            if path_matched:
                raise WireError(
                    "method_not_allowed", f"{method} not allowed on {path}", status=405
                )
            raise WireError("unknown_route", f"no route for {method} {path}", status=404)
        except WireError as exc:
            return wire.error_to_wire(exc)
        except ArtifactNotFoundError as exc:
            return wire.error_to_wire(WireError("unknown_model", str(exc), status=404))
        except Exception as exc:  # structured envelope instead of a traceback
            return wire.error_to_wire(exc)

    def _execute(self, handler: str, body: Optional[dict], path_params: dict) -> Tuple[int, dict]:
        """Run one routed handler under the resilience envelope.

        Work handlers pass admission control (bounded queue, structured
        ``429 overloaded`` past the bound), are refused while the gateway
        drains, and participate in idempotent replay: a request carrying
        an ``idempotency_key`` the gateway already answered gets the
        stored document back without re-executing.
        """
        bound = getattr(self, f"_handle_{handler}")
        if handler not in self._WORK_HANDLERS:
            return 200, bound(body, **path_params)
        self._check_draining()
        key = None
        if isinstance(body, dict):
            key = validate_idempotency_key(body.get("idempotency_key"))
            cached = self.idempotency.get(key)
            if cached is not None:
                status, document = cached
                return status, document
        with self.admission.admit(handler):
            document = bound(body, **path_params)
        # only successful outcomes replay: a shed/failed request must be
        # re-executed by its retry, not echoed back
        self.idempotency.put(key, 200, document)
        return 200, document

    def _check_draining(self) -> None:
        if self.draining:
            raise WireError(
                "overloaded",
                "gateway is draining (shutdown in progress); retry against "
                "a live replica",
                status=429,
                detail={"retry_after_ms": 1000, "draining": True},
            )

    def _deadline_from(self, body: Optional[dict]) -> Optional[Deadline]:
        """The request's server-side time budget (wire field or config default)."""
        budget_ms = None
        if isinstance(body, dict):
            budget_ms = body.get("deadline_ms")
        if budget_ms is None:
            budget_ms = self.config.request_deadline_ms
        return Deadline.from_ms(budget_ms)

    # ------------------------------------------------------------------
    # models
    # ------------------------------------------------------------------
    def _handle_health(self, body, **_) -> dict:
        # deliberately lock-light: health must keep answering — with
        # uptime and per-model breaker state — even while an engine pass
        # holds a model lock or a worker replica is mid-restart
        with self._meta_lock:
            breakers = {name: b.describe() for name, b in sorted(self._breakers.items())}
        if self.supervisor is not None:
            models_loaded = len(self.supervisor.models())
            workers = self.supervisor.describe()
            worker_pool = self.supervisor.stats
        else:
            models_loaded = len(self.service.loaded())
            workers = []
            worker_pool = None
        return wire.envelope(
            "health",
            status="draining" if self.draining else "ok",
            uptime_s=round(time.monotonic() - self.started_at, 3),
            models_available=len(self.store),
            models_loaded=models_loaded,
            sessions_open=len(self.sessions),
            in_flight=self.admission.in_flight,
            queue_depth=self.admission.queue_depth,
            admission=self.admission.describe(),
            breakers=breakers,
            workers=workers,
            worker_pool=worker_pool,
            idempotency=self.idempotency.stats,
            sessions_recovered=self.sessions_recovered,
            recovery_errors=list(self.recovery_errors),
        )

    def _handle_models_list(self, body, **_) -> dict:
        if self.supervisor is not None:
            loaded_list = self.supervisor.models()
            pinned = set(self.supervisor.pinned())
            stats = self.supervisor.stats
        else:
            loaded_list = self.service.loaded()
            pinned = set(self.service.pinned())
            stats = self.service.stats
        loaded = set(loaded_list)
        aliases = self.store.aliases()
        models = [
            {
                **entry,
                "loaded": entry["name"] in loaded,
                "pinned": entry["name"] in pinned,
                "aliases": sorted(a for a, t in aliases.items() if t == entry["name"]),
            }
            for entry in self.store.catalog()
        ]
        return wire.envelope(
            "model-catalog",
            models=models,
            loaded=loaded_list,
            aliases=[{"alias": a, "target": t} for a, t in sorted(aliases.items())],
            stats=stats,
        )

    def _handle_model_load(self, body, name: str) -> dict:
        name = self.store.resolve(name)
        if self.supervisor is not None:
            if name not in self.store:
                raise ArtifactNotFoundError(
                    f"artifact {name!r} is not registered in {self.store.root}"
                )
            entry = self.store.entry(name)
            try:
                self.supervisor.ensure(name)
            except ValueError as exc:  # capacity exhausted by pins
                raise WireError("capacity_exhausted", str(exc), status=409) from exc
            return wire.envelope(
                "model-loaded", name=name, family=str(entry.get("family", "")), entry=entry
            )
        try:
            handle = self.service.load(name)
        except ValueError as exc:  # capacity exhausted by pins
            raise WireError("capacity_exhausted", str(exc), status=409) from exc
        return wire.envelope(
            "model-loaded", name=handle.name, family=handle.family, entry=handle.entry
        )

    def _handle_model_unload(self, body, name: str) -> dict:
        # alias guards live at the gateway so both serving modes refuse
        # identically: unloading an alias name, or a model an alias still
        # points at, would leave aliased traffic on a stale/cold handle
        if self.store.is_alias(name):
            raise WireError(
                "model_aliased",
                f"{name!r} is an alias; unload its target or delete the alias",
                status=409,
            )
        referencing = self.store.aliases_for(name)
        if referencing:
            raise WireError(
                "model_aliased",
                f"model {name!r} is the target of alias(es) "
                f"{', '.join(repr(a) for a in referencing)} and cannot be unloaded",
                status=409,
                detail={"aliases": referencing},
            )
        try:
            if self.supervisor is not None:
                unloaded = self.supervisor.stop(name)
            else:
                unloaded = self.service.unload(name)
        except ArtifactAliasError as exc:  # raced with a concurrent promotion
            raise WireError("model_aliased", str(exc), status=409) from exc
        except ValueError as exc:  # pinned by an open session
            raise WireError("model_pinned", str(exc), status=409) from exc
        return wire.envelope("model-unloaded", name=name, unloaded=unloaded)

    # ------------------------------------------------------------------
    # champion/challenger aliases (wire schema v6)
    # ------------------------------------------------------------------
    def _handle_alias_list(self, body, **_) -> dict:
        return wire.envelope(
            "alias-list",
            aliases=[
                {"alias": alias, "target": target}
                for alias, target in sorted(self.store.aliases().items())
            ],
        )

    def _handle_alias_resolve(self, body, alias: str) -> dict:
        if not self.store.is_alias(alias):
            raise WireError(
                "unknown_alias", f"alias {alias!r} is not registered", status=404
            )
        target = self.store.resolve(alias)
        return wire.envelope(
            "alias-resolved", alias=alias, target=target, entry=self.store.entry(target)
        )

    def _handle_alias_promote(self, body, alias: str) -> dict:
        document = wire.check_envelope(body, kind="alias-promote")
        target = document.get("target")
        if not isinstance(target, str) or not target:
            raise WireError("malformed_request", "alias-promote needs a 'target' model name")
        note = document.get("note", "")
        # imported lazily: repro.learning is a consumer of the serving
        # stack; importing it at module load would be circular
        from ..learning.promote import PromotionManager

        try:
            record = PromotionManager(self.store).promote(alias, target, note=str(note))
        except ArtifactAliasError as exc:
            raise WireError("invalid_alias", str(exc), status=400) from exc
        except ValueError as exc:  # no-op promotion (target already champion)
            raise WireError("invalid_alias", str(exc), status=400) from exc
        # warm the promoted replica so the first aliased request after a
        # promotion doesn't pay a cold load; in worker mode this (re)spawns
        # the target's worker subprocess
        warmed = True
        try:
            if self.supervisor is not None:
                self.supervisor.ensure(target)
            else:
                self.service.load(target)
        except ValueError:  # capacity held by pins — promotion still stands
            warmed = False
        return wire.envelope(
            "alias-promoted",
            alias=alias,
            target=record["target"],
            previous=record["previous"],
            warmed=warmed,
        )

    def _handle_alias_rollback(self, body, alias: str) -> dict:
        if not self.store.is_alias(alias):
            raise WireError(
                "unknown_alias", f"alias {alias!r} is not registered", status=404
            )
        from ..learning.promote import PromotionManager

        try:
            record = PromotionManager(self.store).rollback(alias)
        except ValueError as exc:  # no previous champion recorded
            raise WireError("invalid_alias", str(exc), status=400) from exc
        warmed = True
        try:
            if self.supervisor is not None:
                self.supervisor.ensure(record["target"])
            else:
                self.service.load(record["target"])
        except ValueError:
            warmed = False
        return wire.envelope(
            "alias-rolled-back",
            alias=alias,
            target=record["target"],
            previous=record["previous"],
            warmed=warmed,
        )

    # ------------------------------------------------------------------
    # forecasting
    # ------------------------------------------------------------------
    def _handle_forecast(self, body, **_) -> dict:
        named = wire.forecast_batch_from_wire(body, require_rng=True)
        if not named:
            return wire.results_to_wire([])
        deadline = self._deadline_from(body)
        if deadline is not None:
            deadline.check("forecast batch")  # cheap pre-flight
            for request in named:
                request.deadline = deadline
        settled = self.submit_settled(named)
        return wire.results_to_wire(
            [self._classify_failure(outcome) for outcome in settled]
        )

    @staticmethod
    def _classify_failure(outcome):
        if isinstance(outcome, ArtifactNotFoundError):
            return WireError("unknown_model", str(outcome), status=404)
        if isinstance(outcome, (TypeError, ValueError)) and not isinstance(outcome, WireError):
            return WireError("invalid_request", str(outcome), status=400)
        return outcome

    # ------------------------------------------------------------------
    # what-if scenarios
    # ------------------------------------------------------------------
    def open_scenario_stream(self, body):
        """Validate a scenario request and return its event iterator.

        Validation errors raise *before* the iterator exists, so the HTTP
        layer can still answer with a plain error status; failures during
        the run are emitted as a trailing error envelope on the stream.
        The simulation itself never holds an engine lock — only model
        resolution and the coalesced fleet passes (through the per-model
        schedulers, like any other client's traffic) serialize per model.
        """
        self._check_draining()
        spec, seed = wire.scenario_request_from_wire(body)
        resume_from = wire.resume_from_wire(body)
        # imported lazily: the scenarios engine pulls in the simulation stack
        from ..scenarios.engine import ScenarioEngine, ScenarioRaceResult

        engine = ScenarioEngine(
            resolve=self._resolve_forecaster, submit=self.submit_settled
        )
        total = len(spec.jobs())
        # the stream occupies one admission slot for its whole lifetime —
        # a scenario run is engine work like any forecast; acquired here so
        # an overloaded gateway refuses before any HTTP headers go out
        slot = self.admission.admit("scenarios")

        def _events():
            # A resumed stream re-runs the scenario from the same seed and
            # suppresses the first ``resume_from`` events: runs are bitwise
            # deterministic, so re-execution IS the stream replay — no
            # server-side buffering of past events.
            emitted = 0

            def _due() -> bool:
                nonlocal emitted
                emitted += 1
                return emitted > resume_from

            try:
                if _due():
                    yield wire.scenario_start_to_wire(spec, seed, total)
                index = 0
                try:
                    for item in engine.run_iter(spec, seed):
                        if isinstance(item, ScenarioRaceResult):
                            document = wire.scenario_race_to_wire(item, index, total)
                            index += 1
                        else:
                            document = wire.scenario_summary_to_wire(item)
                        if _due():
                            yield document
                except Exception as exc:  # surfaced on-stream: headers are long gone
                    _status, document = wire.error_to_wire(self._classify_failure(exc))
                    yield document
            finally:
                slot.release()

        return _events()

    def _resolve_forecaster(self, name: str):
        # the service registry is thread-safe; the scenario engine needs
        # the forecaster only to *shape* requests — every engine pass
        # routes through submit_settled like any other client's traffic.
        # (In worker mode this keeps a read-only gateway-side copy of the
        # model for request construction; the passes still hit the worker.)
        return self.service.load(name).forecaster

    def _handle_scenarios(self, body, **_) -> dict:
        """Non-streaming fallback: the whole event list in one document."""
        events = list(self.open_scenario_stream(body))
        return wire.envelope("scenario-results", events=events)

    def _handle_strategy_sweep(self, body, **_) -> dict:
        parsed = wire.sweep_request_from_wire(body)
        deadline = self._deadline_from(body)
        # resolve an alias to its target so aliased and direct sweeps
        # serialize on the same per-model lock / worker
        model = self.store.resolve(parsed["model"])
        if self.supervisor is not None:
            if deadline is not None:
                deadline.check(f"strategy sweep for model {model!r}")
            timeout_s = None if deadline is None else max(deadline.remaining(), 1e-3)
            # the worker re-parses the same wire document and runs the
            # shared execute_sweep, so failures map onto identical errors
            return self.supervisor.sweep(model, body, timeout_s=timeout_s)
        with self._model_lock(model):
            # shed a sweep whose budget ran out while it queued for the
            # model's lock; a sweep on model A no longer delays model B
            if deadline is not None:
                deadline.check(f"strategy sweep for model {model!r}")
            forecaster = self.service.load(model).forecaster
            points = execute_sweep(forecaster, parsed)
        return wire.sweep_points_to_wire(points)

    # ------------------------------------------------------------------
    # live sessions
    # ------------------------------------------------------------------
    def _handle_sessions_list(self, body, **_) -> dict:
        return wire.envelope("session-list", sessions=self.sessions.describe())

    def _handle_session_open(self, body, **_) -> dict:
        managed = self._open_session(body)
        return wire.envelope("session-opened", **managed.describe())

    def _open_session(self, body, session_id: Optional[str] = None):
        """Open (or, with ``session_id``, recover) one managed session.

        The journal recovery path replays the exact wire ``session-open``
        document through this same code, so a recovered session is built
        by the identical construction — including the RNG transport — as
        the one the dead gateway ran.
        """
        document = wire.check_envelope(body, kind="session-open")
        model = document.get("model")
        if not isinstance(model, str) or not model:
            raise WireError("malformed_request", "session-open needs a 'model' name")
        # sessions bind to the *resolved* target for their whole lifetime:
        # the pinned handle carries warm-up states, so a promotion landing
        # mid-race must not re-point laps of an already-open session.  (A
        # journal-recovered session re-resolves at recovery time — the
        # replayed laps rebuild deterministically on the then-current
        # champion.)
        model = self.store.resolve(model)
        known = {
            "schema_version", "kind", "model", "horizon", "n_samples", "min_history",
            "delay", "start", "stop", "stride", "event", "year", "rng",
            "idempotency_key", "deadline_ms", "precision",
        }
        unknown = sorted(set(document) - known)
        if unknown:
            raise WireError(
                "malformed_request", f"unknown session-open field(s): {', '.join(unknown)}"
            )
        if self.supervisor is not None:
            managed = self._open_worker_session(document, model, session_id)
        else:
            managed = self._open_local_session(document, model, session_id)
        if self.journal_dir is not None:
            journal = SessionJournal(
                self.journal_dir,
                managed.session_id,
                compact_every=self.config.journal_compact_laps,
            )
            if session_id is None:
                # WAL: the open document hits disk before the open is
                # acknowledged; a recovered session's file already has it
                journal.record_open(document)
            managed.journal = journal
        return managed

    def _open_local_session(self, document, model, session_id):
        try:
            handle = self.service.pin(model)
        except ValueError as exc:
            raise WireError("capacity_exhausted", str(exc), status=409) from exc
        try:
            # the RNG transport is required: the session's forecasts must
            # be reproducible regardless of transport, same contract as
            # /v1/forecast (build_live_session enforces it)
            session = build_live_session(document, handle.forecaster)
            return self.sessions.open(session, model=model, session_id=session_id)
        except Exception as exc:
            self.service.unpin(model)
            if isinstance(exc, WireError):
                raise
            if isinstance(exc, RuntimeError):  # session limit
                raise WireError("too_many_sessions", str(exc), status=429) from exc
            raise WireError("invalid_request", f"cannot open session: {exc}") from exc

    def _open_worker_session(self, document, model, session_id):
        # the id is allocated before the worker op so a registration
        # failure can roll the worker-side session back by that id
        sid = session_id if session_id is not None else self.sessions.allocate_id()
        try:
            self.supervisor.pin(model)
        except ValueError as exc:
            raise WireError("capacity_exhausted", str(exc), status=409) from exc
        try:
            info = self.supervisor.session_open(model, sid, document)
        except BaseException:
            # WireErrors (invalid document, worker_restarting) pass through
            # structured; a worker death surfaces as the generic envelope
            self.supervisor.unpin(model)
            raise
        try:
            proxy = RaceSessionProxy(self.supervisor, model, sid, info)
            return self.sessions.open(proxy, model=model, session_id=sid)
        except Exception as exc:
            self.supervisor.session_drop(model, sid)
            self.supervisor.unpin(model)
            if isinstance(exc, RuntimeError):  # session limit
                raise WireError("too_many_sessions", str(exc), status=429) from exc
            raise

    def _get_session(self, sid: str):
        try:
            return self.sessions.get(sid)
        except KeyError as exc:
            raise WireError("unknown_session", f"no open session {sid!r}", status=404) from exc

    def _handle_session_lap(self, body, sid: str) -> dict:
        document = wire.check_envelope(body, kind="session-lap")
        managed = self._get_session(sid)
        lap = document.get("lap")
        records = document.get("records")
        if not isinstance(lap, int) or isinstance(lap, bool):
            raise WireError("malformed_request", "session-lap needs an integer 'lap'")
        if not isinstance(records, list):
            raise WireError("malformed_request", "session-lap needs a 'records' array")
        # normalise LapRecord-style objects from in-process callers: the
        # journal and the worker pipes both require JSON-clean records
        records = [wire.lap_record_to_wire(record) for record in records]
        deadline = self._deadline_from(document)
        with managed.lock:
            if managed.closed:  # lost a race against DELETE on this session
                raise WireError(
                    "unknown_session", f"session {sid!r} was closed", status=404
                )
            if deadline is not None:
                deadline.check(f"lap {lap} for session {sid!r}")
            # the session itself decides duplicate-vs-new (apply_lap): a
            # duplicate — the retry of a lap whose response was lost (torn
            # connection, or a crash after the WAL append) — replays the
            # original forecasts byte-identically from the emission log
            # without running the engine again; and after a worker
            # failover only the rebuilt worker-side session knows where
            # its journal replay left off
            try:
                if self.supervisor is not None:
                    timeout_s = (
                        None if deadline is None else max(deadline.remaining(), 1e-3)
                    )
                    self.supervisor.touch(managed.model)
                    emitted, replayed = managed.session.apply_lap(
                        lap, records, timeout_s=timeout_s
                    )
                else:
                    with self._model_lock(managed.model):
                        # keep the session's model MRU while actively serving
                        self.service.touch(managed.model)
                        emitted, replayed = managed.session.apply_lap(lap, records)
            except WireError:
                # already structured (worker_restarting, overloaded, ...);
                # WireError subclasses ValueError, so this must come first
                raise
            except ValueError as exc:
                raise WireError("invalid_request", str(exc)) from exc
            except RuntimeError:
                # a worker death mid-lap: count it against the model's
                # breaker and surface the (retryable) internal error — the
                # supervisor's restart + journal failover brings the
                # session back for the retry
                self._breaker(managed.model).record_failure()
                raise
            if managed.journal is not None and not replayed:
                # journaled after a successful apply, fsynced before the
                # response: an acknowledged lap is always on disk, a
                # rejected lap never poisons the journal, and a lap lost
                # in the crash window is simply re-applied
                # (deterministically) by the retry
                managed.journal.record_lap(lap, records)
        document = self._emitted_to_wire(emitted)
        document["replayed"] = replayed
        return document

    @staticmethod
    def _emitted_to_wire(emitted) -> dict:
        return wire.envelope(
            "session-lap-results",
            results=[
                {
                    "origin": int(origin),
                    "forecasts": [
                        {"car_id": int(car_id), "samples": wire.encode_array(samples)}
                        for car_id, samples in forecasts.items()
                    ],
                }
                for origin, forecasts in emitted
            ],
        )

    def _handle_session_close(self, body, sid: str) -> dict:
        try:
            managed = self.sessions.close(sid)
        except KeyError as exc:
            raise WireError("unknown_session", f"no open session {sid!r}", status=404) from exc
        # the feed is over: by default flush the origins still held back by
        # the finality delay ({"drain": false} skips the flush)
        drain = True if body is None else bool(body.get("drain", True))
        # same lock order as a lap (session lock, then the model's lock)
        with managed.lock:
            managed.closed = True
            try:
                if self.supervisor is not None:
                    remaining = managed.session.finish(drain=drain)
                else:
                    with self._model_lock(managed.model):
                        remaining = managed.session.finish() if drain else []
            finally:
                if self.supervisor is not None:
                    self.supervisor.unpin(managed.model)
                else:
                    self.service.unpin(managed.model)
            if managed.journal is not None:
                # a clean close deletes the journal: nothing left to recover
                managed.journal.close(remove=True)
        document = self._emitted_to_wire(remaining)
        document["kind"] = "session-closed"
        document.update(managed.describe())
        return document


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _GatewayRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    gateway: ForecastGateway  # injected by ForecastServer
    quiet = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError("malformed_request", f"request body is not valid JSON: {exc}") from exc

    def _apply_fault(self, method: str):
        """Execute the fault plan's ``before`` phase for this request.

        Returns ``(handled, fault)``: ``handled`` means the fault consumed
        the request entirely (nothing more to send); ``fault`` is passed on
        so ``when="after"`` drops and stream truncation fire later.
        """
        plan = self.gateway.faults
        if plan is None:
            return False, None
        fault = plan.intercept(method, self.path)
        if fault is None:
            return False, None
        if fault.kind == "delay":
            time.sleep(fault.delay_s)
            return False, None
        if fault.kind == "engine_error":
            # the fault surfaces downstream, when the engine submit raises
            self.gateway.arm_engine_errors(1)
            return False, None
        if fault.kind in ("kill_worker", "hang_worker"):
            # a real SIGKILL/SIGSTOP lands on the worker subprocess before
            # this request dispatches; the request then proceeds into the
            # degraded gateway (worker_restarting, breaker, failover)
            self.gateway.inject_worker_fault(fault.kind, fault.model)
            return False, None
        if fault.kind == "error":
            status, document = wire.error_to_wire(
                WireError("injected_fault", fault.message, status=fault.status)
            )
            self._send_document(status, document)
            return True, None
        if fault.kind == "drop" and fault.when == "before":
            # sever the connection without reading or answering — the
            # request was never executed, so a retry is trivially safe
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:  # pragma: no cover - already gone
                pass
            return True, None
        return False, fault  # drop-after / truncate execute the work first

    def _dispatch(self, method: str) -> None:
        handled, fault = self._apply_fault(method)
        if handled:
            return
        if method == "POST" and self.path == "/v1/scenarios":
            return self._dispatch_scenario_stream(fault)
        try:
            body = self._read_body()
        except WireError as exc:
            status, document = wire.error_to_wire(exc)
        else:
            status, document = self.gateway.handle(method, self.path, body)
        if fault is not None and fault.kind == "drop":
            # when="after": the work ran (and journaled) but the response
            # is lost on the wire — the replay case idempotency keys and
            # the per-lap emission log exist for
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:  # pragma: no cover - already gone
                pass
            return
        self._send_document(status, document)

    def _send_document(self, status: int, document: dict) -> None:
        payload = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch_scenario_stream(self, fault=None) -> None:
        """``POST /v1/scenarios``: chunked NDJSON, one wire event per line.

        Season sweeps take a while; instead of buffering the whole run
        behind Content-Length, each completed race is flushed as its own
        chunk so clients report progress while the gateway still works.
        A ``truncate`` fault cuts the stream after ``after_events`` chunks
        without the terminating chunk — the torn stream the resumable
        client recovers from.
        """
        try:
            body = self._read_body()
            events = self.gateway.open_scenario_stream(body)
        except WireError as exc:
            status, document = wire.error_to_wire(exc)
            return self._send_document(status, document)
        except Exception as exc:  # pragma: no cover - defensive
            status, document = wire.error_to_wire(exc)
            return self._send_document(status, document)
        truncate_after = (
            fault.after_events if fault is not None and fault.kind == "truncate" else None
        )
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        sent = 0
        try:
            for document in events:
                if truncate_after is not None and sent >= truncate_after:
                    # torn mid-stream: no terminating 0-chunk, dead socket
                    self.close_connection = True
                    try:
                        self.connection.close()
                    except OSError:  # pragma: no cover - already gone
                        pass
                    return
                line = json.dumps(document).encode("utf-8") + b"\n"
                self.wfile.write(f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n")
                self.wfile.flush()
                sent += 1
        finally:
            # the generator's finally releases its admission slot even when
            # the stream is cut (truncate fault, client hang-up)
            events.close()
        self.wfile.write(b"0\r\n\r\n")

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class ForecastServer:
    """A running gateway: ThreadingHTTPServer + the shared serving stack."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.gateway = ForecastGateway(config)
        handler = type(
            "BoundGatewayHandler", (_GatewayRequestHandler,), {"gateway": self.gateway}
        )
        self.httpd = ThreadingHTTPServer((config.host, config.port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when the config asked for port 0)."""
        return int(self.httpd.server_address[1])

    def start(self) -> "ForecastServer":
        """Serve on a daemon thread (the in-process/test entry point)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.gateway.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ForecastServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# CLI (the ``repro-serve`` console script)
# ----------------------------------------------------------------------
def _install_drain_handler(server: ForecastServer) -> None:
    """SIGTERM → graceful drain: refuse new work, finish in-flight, exit.

    The handler flips the gateway into draining mode (work requests get a
    structured ``429 overloaded`` with ``draining: true``) and a helper
    thread stops the listener once in-flight work hits zero or the grace
    period runs out.  Open sessions keep their journals, so the next boot
    recovers them.
    """

    def _drain(signum, frame):  # pragma: no cover - exercised via subprocess
        gateway = server.gateway
        gateway.draining = True

        def _wait_and_stop():
            grace_until = time.monotonic() + server.config.drain_grace_s
            while time.monotonic() < grace_until and gateway.admission.in_flight > 0:
                time.sleep(0.05)
            server.httpd.shutdown()

        threading.Thread(
            target=_wait_and_stop, name="repro-serve-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve forecast models from an artifact store over HTTP.",
    )
    parser.add_argument("--config", required=True, help="JSON server config file")
    parser.add_argument("--host", default=None, help="override the config's bind address")
    parser.add_argument("--port", default=None, type=int, help="override the config's port")
    args = parser.parse_args(argv)
    try:
        config = ServerConfig.from_file(args.config)
    except (OSError, ValueError, TypeError) as exc:
        print(f"repro-serve: bad config: {exc}", file=sys.stderr)
        return 2
    if args.host is not None:
        config.host = args.host
    if args.port is not None:
        config.port = args.port
    try:
        server = ForecastServer(config)
    except Exception as exc:  # missing store/model, port in use, ...
        print(f"repro-serve: cannot start: {exc}", file=sys.stderr)
        return 2
    _install_drain_handler(server)
    print(
        f"repro-serve: listening on http://{server.host}:{server.port} "
        f"(store={config.store}, preloaded={config.preload})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
