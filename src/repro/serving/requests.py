"""Forecast request descriptors consumed by the fleet engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

import numpy as np

__all__ = ["ForecastRequest", "NamedForecastRequest", "spawn_request_rngs"]


@dataclass
class ForecastRequest:
    """One Monte-Carlo forecast task for the :class:`FleetForecaster`.

    Parameters
    ----------
    history_target:
        ``(L,)`` or ``(L, target_dim)`` observed targets up to and including
        the forecast origin lap.
    history_covariates:
        ``(L, num_covariates)`` covariates aligned with the history.
    future_covariates:
        ``(H, num_covariates)`` covariates over the forecast horizon.
    n_samples:
        Number of Monte-Carlo trajectories to draw.
    rng:
        Per-request RNG stream.  Supplying independent streams (see
        :func:`spawn_request_rngs`) makes the forecast reproducible and
        independent of how requests are batched; an integer is accepted as
        a seed (``np.random.default_rng(rng)`` — the convention the wire
        protocol uses for explicit per-request seeds); when omitted the
        engine falls back to the model's shared generator.
    key:
        Stable identity of the forecast subject (e.g. ``(race_id, car_id)``).
        Requests sharing ``key`` and ``origin`` also share their warm-up
        computation, and ``carry`` mode uses ``key`` to cache recurrent
        state between consecutive origins.
    origin:
        Absolute lap index of the last history lap; required for ``carry``
        mode so the engine knows how far to advance a cached state.
    """

    history_target: np.ndarray
    history_covariates: np.ndarray
    future_covariates: np.ndarray
    n_samples: int = 100
    rng: Optional[np.random.Generator] = None
    key: Optional[Hashable] = None
    origin: Optional[int] = None
    _target: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rng is not None and not isinstance(self.rng, np.random.Generator):
            self.rng = np.random.default_rng(self.rng)
        target = np.asarray(self.history_target, dtype=np.float64)
        if target.ndim == 1:
            target = target[:, None]
        if target.ndim != 2 or target.shape[0] < 1:
            raise ValueError(f"history_target must be (L,) or (L, D) with L >= 1, got {target.shape}")
        self._target = target
        self.history_covariates = np.asarray(self.history_covariates, dtype=np.float64)
        self.future_covariates = np.asarray(self.future_covariates, dtype=np.float64)
        if self.history_covariates.ndim != 2:
            raise ValueError("history_covariates must be 2-D (L, C)")
        if self.future_covariates.ndim != 2:
            raise ValueError("future_covariates must be 2-D (H, C)")
        if self.history_covariates.shape[0] != target.shape[0]:
            raise ValueError(
                "history covariates misaligned with history target: "
                f"{self.history_covariates.shape[0]} != {target.shape[0]}"
            )
        self.n_samples = int(self.n_samples)
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if self.origin is not None:
            self.origin = int(self.origin)

    # ------------------------------------------------------------------
    @property
    def target(self) -> np.ndarray:
        """History targets normalised to ``(L, target_dim)``."""
        return self._target

    @property
    def length(self) -> int:
        return int(self._target.shape[0])

    @property
    def horizon(self) -> int:
        return int(self.future_covariates.shape[0])

    @property
    def target_dim(self) -> int:
        return int(self._target.shape[1])

    def warmup_key(self) -> Hashable:
        """Identity used to deduplicate warm-up computations inside a batch."""
        if self.key is not None and self.origin is not None:
            return (self.key, self.origin, self.length)
        return id(self)


@dataclass
class NamedForecastRequest:
    """A :class:`ForecastRequest` addressed to a named served model.

    The :class:`~repro.serving.service.ForecastService` routes batches of
    these: requests naming the same ``(model, precision)`` pair are grouped
    and dispatched to that replica's fleet engine in one submit, so a
    mixed-model batch costs one engine pass per distinct replica rather
    than one per request.
    """

    model: str
    request: ForecastRequest
    #: compute tier the forecast runs on: ``"float64"`` (the exact
    #: reference, default), ``"float32"`` or ``"int8"`` — see
    #: :mod:`repro.nn.precision`
    precision: str = "float64"
    #: optional server-side time budget (a ``repro.serving.resilience.Deadline``)
    #: the gateway attaches from the envelope's ``deadline_ms``; checked by
    #: the submit path so queued work past budget is shed, not executed
    deadline: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.model = str(self.model)
        if not isinstance(self.request, ForecastRequest):
            raise TypeError(
                f"request must be a ForecastRequest, got {type(self.request).__name__}"
            )
        # validated eagerly so a bad tier fails at construction, not inside
        # an engine pass half-way through a batch
        from ..nn.precision import normalize_precision

        self.precision = normalize_precision(self.precision)


def spawn_request_rngs(root: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Independent child streams for ``n`` requests (one stream per request).

    Using per-request streams makes forecasts independent of batching and
    submission order: the fleet-batched path and a per-car loop consume the
    exact same random numbers for each request.
    """
    return list(root.spawn(n)) if n else []
