"""Crash-safe write-ahead journal for live race sessions.

Every open ``/v1/sessions`` session owns one NDJSON file under
``<store>/_session_journal/``: first an ``open`` record holding the exact
wire ``session-open`` document (including its explicit RNG transport),
then one ``lap`` record per accepted lap post.  A lap is appended **and
fsynced after a successful apply but before the HTTP response goes
out** — the journal is the session's only durable state, so the ordering
that matters is acknowledge-after-journal, which gives after any crash,
including ``SIGKILL``:

* every lap the client ever got an answer for is in the journal;
* a lap rejected by the session (malformed records) never reaches the
  journal, so a bad post cannot poison recovery;
* a lap lost in the apply→append crash window, like a torn tail (a
  partial last line), can only be one whose response was never sent —
  the client's retry re-applies it, deterministically, on the recovered
  session.

Recovery (:func:`recover_sessions`) scans the directory and replays each
journal: the session is re-opened from its ``open`` document (re-seeding
the forecaster's RNG stream from the journaled transport) and every lap
is re-observed in order.  Because the whole serving stack is
deterministic given explicit RNG transport, the rebuilt session's RNG
and carry-mode warm-up state land exactly where the crashed process left
them — subsequent forecasts are *byte-identical* to a gateway that never
died (the chaos harness gates this with a real SIGKILL).

A cleanly closed session deletes its journal; files left behind are, by
construction, exactly the sessions that were live at the moment of death.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, List, Optional

__all__ = [
    "SessionJournal",
    "RecoveredSession",
    "recover_sessions",
    "load_session",
    "journal_dir",
]

JOURNAL_DIRNAME = "_session_journal"
JOURNAL_SUFFIX = ".journal.ndjson"


def journal_dir(store_root: str) -> str:
    """The journal directory living alongside (inside) the artifact store."""
    return os.path.join(store_root, JOURNAL_DIRNAME)


class SessionJournal:
    """Append-only WAL of one live session (open record + lap records).

    ``compact_every`` (laps) turns on periodic compaction: every N lap
    appends the journal is rewritten atomically as its ``open`` record plus
    one batched ``laps`` record, shedding per-line framing, duplicates and
    any torn tail so a season-length session's WAL stays proportional to
    its telemetry instead of its append history.
    """

    def __init__(
        self,
        directory: str,
        session_id: str,
        compact_every: Optional[int] = None,
    ) -> None:
        self.directory = str(directory)
        self.session_id = str(session_id)
        self.path = os.path.join(self.directory, f"{self.session_id}{JOURNAL_SUFFIX}")
        self._fh: Optional[IO[str]] = None
        if compact_every is not None:
            compact_every = int(compact_every)
            if compact_every < 1:
                raise ValueError("compact_every must be >= 1 lap")
        self.compact_every = compact_every
        self._laps_since_compact = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._fh is None:
            os.makedirs(self.directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_open(self, open_document: dict) -> None:
        """Journal the wire ``session-open`` document verbatim.

        Written (and fsynced) before the session exists, so a crash
        between open and first lap still recovers an empty session with
        the right RNG transport.
        """
        self._append({"kind": "open", "session": self.session_id, "open": open_document})

    def record_lap(self, lap: int, records: list) -> None:
        """Journal one applied lap — call *before* acknowledging it."""
        self._append({"kind": "lap", "lap": int(lap), "records": records})
        self._laps_since_compact += 1
        if self.compact_every is not None and self._laps_since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Rewrite the journal as ``open`` + one batched ``laps`` record.

        The rewrite is atomic (tmp file, fsync, ``os.replace``, directory
        fsync): at every instant the on-disk path holds either the old
        journal or the compacted one, never a torn mix, so a crash during
        compaction recovers exactly like a crash before it.  The compacted
        form replays byte-identically — laps are irreducible inputs to the
        feature builder, so compaction dedupes and re-frames them but never
        summarises them away.
        """
        recovered = load_session(self.directory, self.session_id)
        if recovered is None:
            return
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        seen = set()
        laps = []
        for record in recovered.laps:
            lap = int(record["lap"])
            if lap in seen:
                continue
            seen.add(lap)
            laps.append([lap, record["records"]])
        tmp = f"{self.path}.compact"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "open",
                        "session": self.session_id,
                        "open": recovered.open_document,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            if laps:
                fh.write(json.dumps({"kind": "laps", "laps": laps}, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._laps_since_compact = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, remove: bool = True) -> None:
        """Stop journaling; a cleanly closed session removes its file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if remove:
            try:
                os.remove(self.path)
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:  # pragma: no cover
        return f"SessionJournal({self.path!r})"


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveredSession:
    """One journal's replayable content: the open document plus its laps."""

    session_id: str
    open_document: dict
    laps: List[dict] = field(default_factory=list)
    #: lines dropped from the tail (torn writes from the crash); > 1 would
    #: mean corruption *before* the tail, which read_journal refuses
    torn_records: int = 0


def _read_journal(path: str, session_id: str) -> Optional[RecoveredSession]:
    with open(path, "r", encoding="utf-8") as fh:
        raw_lines = fh.read().split("\n")
    # a well-formed journal ends with "\n", so the final split element is ""
    if raw_lines and raw_lines[-1] == "":
        raw_lines.pop()
    records: List[dict] = []
    torn = 0
    for index, line in enumerate(raw_lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError("journal record is not an object with a 'kind'")
        except ValueError as exc:
            if index == len(raw_lines) - 1:
                torn = 1  # torn tail: the crash interrupted this append
                break
            raise ValueError(
                f"journal {path!r} is corrupt at line {index + 1} "
                f"(not a torn tail): {exc}"
            ) from exc
        records.append(record)
    if not records or records[0].get("kind") != "open":
        # the crash tore even the open record — there was no session yet
        return None
    recovered = RecoveredSession(
        session_id=session_id,
        open_document=records[0].get("open", {}),
        torn_records=torn,
    )
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "lap":
            recovered.laps.append(record)
        elif kind == "laps":
            # a compacted batch: one record carrying [lap, records] pairs
            pairs = record.get("laps")
            if not isinstance(pairs, list):
                raise ValueError(f"journal {path!r} carries a malformed 'laps' batch")
            for pair in pairs:
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise ValueError(f"journal {path!r} carries a malformed 'laps' batch")
                recovered.laps.append(
                    {"kind": "lap", "lap": int(pair[0]), "records": pair[1]}
                )
        elif kind == "open":
            raise ValueError(f"journal {path!r} carries a second 'open' record")
        # unknown kinds are skipped: a newer build may add record kinds
    return recovered


def load_session(directory: str, session_id: str) -> Optional[RecoveredSession]:
    """Read one session's journal by id (``None`` when no journal exists).

    The single-session flavour of :func:`recover_sessions` — used by the
    worker supervisor to fail a *live* session over to a restarted replica
    without scanning the whole directory.
    """
    path = os.path.join(str(directory), f"{session_id}{JOURNAL_SUFFIX}")
    if not os.path.isfile(path):
        return None
    return _read_journal(path, str(session_id))


def recover_sessions(directory: str) -> List[RecoveredSession]:
    """Scan a journal directory; returns replayable sessions, oldest id first.

    Journals whose open record never made it to disk are deleted (no
    session was ever acknowledged on them); corrupt journals (damage not
    at the tail) raise — silent data loss is worse than a failed boot.
    """
    if not os.path.isdir(directory):
        return []
    recovered: List[RecoveredSession] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(JOURNAL_SUFFIX):
            continue
        path = os.path.join(directory, name)
        session_id = name[: -len(JOURNAL_SUFFIX)]
        session = _read_journal(path, session_id)
        if session is None:
            os.remove(path)
            continue
        recovered.append(session)
    return recovered
