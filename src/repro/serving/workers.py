"""Worker-process side of the supervised model pool.

One worker process serves exactly one model replica: it owns a private
single-slot :class:`~repro.serving.service.ForecastService` (its own
fleet engine, warm-up caches and live sessions), and speaks length-framed
JSON over two ``multiprocessing`` pipes back to the gateway:

* the **work pipe** carries one op frame at a time —
  ``{"id": n, "op": name, "body": {...}}`` in, ``{"id": n, "ok": true,
  "body": {...}}`` (or a structured error) out.  Payloads ride the
  existing wire codecs (:mod:`repro.serving.wire`): named forecast
  requests with explicit RNG transport, base64 sample arrays, verbatim
  ``session-open`` documents.  Because the codecs and the engines are
  deterministic, a forecast through a worker is byte-identical to the
  in-process path — which is what lets the supervisor fail sessions over
  to a *replacement* process by journal replay.
* the **control pipe** answers heartbeat pings from a dedicated daemon
  thread, so a worker grinding through a long sweep still proves it is
  alive — only a genuinely stuck process (SIGSTOP, a wedged allocator)
  misses the supervisor's heartbeat deadline.

Error replies carry an ``engine_failure`` flag mirroring the gateway's
breaker attribution: request-shaped failures (unknown model, malformed
arrays, wire errors) say nothing about the replica's health, while
anything else counts against the model's circuit breaker gateway-side.

The module is transport only — no supervision state lives here.  The
gateway-side :class:`~repro.serving.supervisor.WorkerSupervisor` owns
spawning, heartbeat deadlines, restarts and failover.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..artifacts import ArtifactNotFoundError
from . import wire
from .service import ForecastService
from .sessions import RaceSession, build_live_session
from .wire import WireError

__all__ = [
    "worker_main",
    "execute_sweep",
    "emitted_to_wire",
    "emitted_from_wire",
]


# ----------------------------------------------------------------------
# helpers shared with the gateway's in-process path
# ----------------------------------------------------------------------
def execute_sweep(forecaster, parsed: dict):
    """Run one parsed strategy sweep; shared by gateway and workers.

    ``parsed`` is the output of :func:`wire.sweep_request_from_wire`.
    Both execution paths must map optimizer failures onto the same wire
    errors, or worker mode would change the protocol.
    """
    # imported lazily: the optimizer pulls in the full deep-model stack
    from ..strategy.optimizer import PitStrategyOptimizer

    try:
        optimizer = PitStrategyOptimizer(
            forecaster,
            n_samples=parsed["n_samples"],
            field_size=parsed["field_size"],
            precision=parsed.get("precision", "float64"),
        )
    except (TypeError, ValueError) as exc:
        raise WireError(
            "unsupported_family",
            f"model {parsed['model']!r} cannot drive the strategy optimizer: {exc}",
        ) from exc
    try:
        return optimizer.sweep(
            parsed["series"],
            parsed["origins"],
            parsed["horizon"],
            earliest=parsed["earliest"],
            latest=parsed["latest"],
            step=parsed["step"],
            mode=parsed["mode"],
            rng=parsed["rng"],
        )
    except (TypeError, ValueError, IndexError) as exc:
        raise WireError("invalid_request", f"sweep failed: {exc}") from exc


def emitted_to_wire(emitted) -> List[dict]:
    """Encode a session drain (``[(origin, {car: samples})]``) for the pipe."""
    return [
        {
            "origin": int(origin),
            "forecasts": [
                {"car_id": int(car_id), "samples": wire.encode_array(samples)}
                for car_id, samples in forecasts.items()
            ],
        }
        for origin, forecasts in emitted
    ]


def emitted_from_wire(items: List[dict]) -> List[Tuple[int, Dict[int, np.ndarray]]]:
    """Decode :func:`emitted_to_wire` back into session-drain structure."""
    return [
        (
            int(item["origin"]),
            {
                int(entry["car_id"]): wire.decode_array(entry["samples"])
                for entry in item["forecasts"]
            },
        )
        for item in items
    ]


# ----------------------------------------------------------------------
# pipe framing
# ----------------------------------------------------------------------
def _send(conn, frame: dict) -> bool:
    try:
        conn.send_bytes(json.dumps(frame).encode("utf-8"))
        return True
    except (OSError, ValueError, BrokenPipeError):
        return False


def _recv(conn) -> Optional[dict]:
    try:
        return json.loads(conn.recv_bytes().decode("utf-8"))
    except (EOFError, OSError):
        return None


def _serve_control(control) -> None:
    """Answer heartbeat pings until the gateway hangs up.

    Runs on a daemon thread so a long engine pass on the main loop never
    reads as a missed heartbeat — only a process that is truly stuck
    (stopped, wedged) stops answering.
    """
    while True:
        frame = _recv(control)
        if frame is None:
            return
        if not _send(control, {"id": frame.get("id"), "op": "pong", "pid": os.getpid()}):
            return


# ----------------------------------------------------------------------
# the worker process entry point
# ----------------------------------------------------------------------
class _WorkerState:
    """One worker's model handle plus its resident live sessions."""

    def __init__(self, store_root: str, model: str, options: dict) -> None:
        self.model = str(model)
        self.service = ForecastService(
            store_root,
            capacity=1,
            mode=str(options.get("mode", "exact")),
            verify=bool(options.get("verify", True)),
        )
        self.handle = self.service.load(self.model)
        self.sessions: Dict[str, RaceSession] = {}

    # ------------------------------------------------------------------
    def _session(self, session_id: str) -> RaceSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise WireError(
                "unknown_session",
                f"worker for model {self.model!r} holds no session {session_id!r}",
                status=404,
            )
        return session

    @staticmethod
    def _describe(session: RaceSession) -> dict:
        return {
            "latest_lap": session.latest_lap,
            "next_origin": session.next_origin,
            "laps_observed": session.laps_observed,
            "forecasts_emitted": session.forecasts_emitted,
            "cars": session.num_cars,
        }

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def op_forecast(self, body: dict) -> dict:
        named = [wire.named_request_from_wire(item) for item in body.get("requests", [])]
        results = self.service.submit(named)
        return {"results": [wire.encode_array(samples) for samples in results]}

    def op_sweep(self, body: dict) -> dict:
        # the raw sweep-request wire document, forwarded verbatim by the
        # gateway; parse and execute exactly like the in-process path
        parsed = wire.sweep_request_from_wire(body.get("document"))
        points = execute_sweep(self.handle.forecaster, parsed)
        return {"document": wire.sweep_points_to_wire(points)}

    def op_session_open(self, body: dict) -> dict:
        session_id = str(body.get("session_id"))
        if session_id in self.sessions:
            raise WireError(
                "invalid_request",
                f"worker already holds session {session_id!r}",
            )
        document = body.get("document")
        if not isinstance(document, dict):
            raise WireError("malformed_request", "session_open needs a 'document'")
        try:
            session = build_live_session(document, self.handle.forecaster)
        except WireError:
            raise
        except (TypeError, ValueError) as exc:
            raise WireError("invalid_request", f"cannot open session: {exc}") from exc
        self.sessions[session_id] = session
        return self._describe(session)

    def op_session_lap(self, body: dict) -> dict:
        session = self._session(str(body.get("session_id")))
        try:
            emitted, replayed = session.apply_lap(body.get("lap"), body.get("records"))
        except WireError:
            raise  # WireError subclasses ValueError: keep it structured
        except ValueError as exc:
            raise WireError("invalid_request", str(exc)) from exc
        return {
            "results": emitted_to_wire(emitted),
            "replayed": bool(replayed),
            **self._describe(session),
        }

    def op_session_finish(self, body: dict) -> dict:
        session_id = str(body.get("session_id"))
        session = self._session(session_id)
        remaining = session.finish() if bool(body.get("drain", True)) else []
        del self.sessions[session_id]
        return {"results": emitted_to_wire(remaining), **self._describe(session)}

    def op_session_drop(self, body: dict) -> dict:
        # rollback path (the gateway-side registration failed): discard
        # quietly, dropping an unknown id is not an error
        dropped = self.sessions.pop(str(body.get("session_id")), None) is not None
        return {"dropped": dropped}


def _error_reply(frame_id, exc: BaseException) -> dict:
    status, document = wire.error_to_wire(exc)
    engine_failure = not isinstance(
        exc, (WireError, ArtifactNotFoundError, TypeError, ValueError)
    )
    return {
        "id": frame_id,
        "ok": False,
        "error": document["error"],
        "status": int(status),
        "engine_failure": engine_failure,
    }


def worker_main(work, control, store_root: str, model: str, options: Optional[dict] = None) -> None:
    """Serve one model replica over the given pipes until the gateway hangs up.

    Runs as the target of a forked ``multiprocessing.Process``; any
    exception during model load is fatal (the supervisor's readiness
    deadline catches the death and applies its restart budget).
    """
    options = dict(options or {})
    # the forked child inherits the parent's signal dispositions (the CLI
    # installs a SIGTERM drain handler); workers must die plainly instead
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    threading.Thread(
        target=_serve_control, args=(control,), name="worker-heartbeat", daemon=True
    ).start()
    state = _WorkerState(store_root, model, options)
    handlers = {
        "forecast": state.op_forecast,
        "sweep": state.op_sweep,
        "session_open": state.op_session_open,
        "session_lap": state.op_session_lap,
        "session_finish": state.op_session_finish,
        "session_drop": state.op_session_drop,
    }
    while True:
        frame = _recv(work)
        if frame is None:  # gateway is gone; nothing to serve for
            return
        frame_id = frame.get("id")
        handler = handlers.get(frame.get("op"))
        if handler is None:
            reply = _error_reply(
                frame_id, WireError("invalid_request", f"unknown worker op {frame.get('op')!r}")
            )
        else:
            try:
                reply = {"id": frame_id, "ok": True, "body": handler(frame.get("body") or {})}
            except BaseException as exc:  # noqa: BLE001 - every failure crosses the pipe structured
                reply = _error_reply(frame_id, exc)
        if not _send(work, reply):
            return
