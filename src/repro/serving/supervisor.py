"""Gateway-side supervision tree for the multi-process worker pool.

:class:`WorkerSupervisor` owns one worker subprocess per served model
replica (:func:`repro.serving.workers.worker_main`) and supervises it the
way an Erlang supervision tree would:

* **heartbeats** — a monitor thread pings every live worker's control
  pipe each ``heartbeat_interval_s``; a worker that misses the
  ``heartbeat_timeout_s`` deadline is declared hung and SIGKILLed (a
  SIGSTOPped process cannot answer, but SIGKILL still lands on it);
* **crash detection** — a dead process is noticed both by the monitor
  and, faster, by any op waiting on its pipe (EOF mid-request);
* **restarts** — a dead replica is restarted on a dedicated thread with
  exponential backoff (``backoff_base_s`` doubling up to
  ``backoff_max_s``) under a **restart budget**: crashes arriving less
  than ``min_uptime_s`` apart count into one failure episode, and once
  an episode exceeds ``restart_budget`` the replica is marked ``failed``
  instead of flap-restarting forever (Erlang's max restart intensity);
* **failover** — after a replacement process answers its readiness ping,
  the ``on_worker_restarted(model)`` callback runs *before* the replica
  is marked live again.  The gateway uses it to replay each affected
  session's write-ahead journal into the fresh process, so subsequent
  forecasts are byte-identical to an uncrashed run.  While a replica is
  down, its requests fail fast with a structured
  :class:`~repro.serving.resilience.WorkerRestartingError` (503,
  ``retry_after_ms`` sized from the backoff) — graceful degradation, not
  a stalled gateway.

Per-worker **bounded queues** (``queue_limit``) sit in front of each
replica: once a worker has that many ops in flight or waiting, further
calls shed with ``overloaded`` instead of queueing without limit — the
per-replica refinement of the gateway's global admission control.

:class:`RaceSessionProxy` duck-types :class:`~repro.serving.sessions.RaceSession`
over a worker-resident session so the gateway's session bookkeeping
(:class:`~repro.serving.sessions.ManagedSession`) is mode-agnostic.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from . import wire
from .resilience import DeadlineExceededError, OverloadedError, WorkerRestartingError
from .wire import WireError
from .workers import emitted_from_wire, worker_main

__all__ = ["WorkerSupervisor", "WorkerHandle", "RaceSessionProxy"]

#: worker lifecycle states (see docs/robustness.md for the state machine)
STARTING = "starting"
LIVE = "live"
RESTARTING = "restarting"
FAILED = "failed"


def _fork_context():
    """Prefer fork: near-instant worker spawn, no re-import of the stack."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerHandle:
    """One supervised replica: process, pipes, lifecycle and counters."""

    def __init__(self, model: str) -> None:
        self.model = str(model)
        self.process = None
        self.work = None  # work pipe (op frames), parent end
        self.control = None  # heartbeat pipe, parent end
        self.state = STARTING
        self.ready = threading.Event()  # set once the initial spawn settles
        #: serializes op frames on the work pipe (one replica = one engine)
        self.op_lock = threading.Lock()
        self.control_lock = threading.Lock()
        self.depth_lock = threading.Lock()
        self.depth = 0  # ops in flight or waiting on op_lock
        self.frame_id = 0
        self.control_frame_id = 0
        self.restarts = 0  # replacements that reached live, lifetime
        self.episode = 0  # consecutive crashes within min_uptime_s
        self.started_at: Optional[float] = None
        self.last_heartbeat: Optional[float] = None
        self.last_used = 0.0
        self.pins = 0
        self.last_failure: Optional[str] = None

    @property
    def pid(self) -> Optional[int]:
        process = self.process
        return None if process is None else process.pid

    def describe(self) -> dict:
        now = time.monotonic()
        return {
            "model": self.model,
            "pid": self.pid,
            "state": self.state,
            "restarts": self.restarts,
            "episode": self.episode,
            "queue_depth": self.depth,
            "pinned": self.pins,
            "uptime_s": None if self.started_at is None else round(now - self.started_at, 3),
            "last_heartbeat_age_s": (
                None if self.last_heartbeat is None else round(now - self.last_heartbeat, 3)
            ),
            "last_failure": self.last_failure,
        }


class WorkerSupervisor:
    """Spawns, health-checks, restarts and routes to model worker replicas."""

    def __init__(
        self,
        store_root: str,
        *,
        capacity: int = 4,
        mode: str = "exact",
        verify: bool = True,
        queue_limit: int = 8,
        restart_budget: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        min_uptime_s: float = 1.0,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 2.0,
        spawn_timeout_s: float = 60.0,
        on_worker_restarted: Optional[Callable[[str], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if restart_budget < 1:
            raise ValueError("restart_budget must be >= 1")
        self.store_root = str(store_root)
        self.capacity = int(capacity)
        self.queue_limit = int(queue_limit)
        self.restart_budget = int(restart_budget)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.min_uptime_s = float(min_uptime_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.on_worker_restarted = on_worker_restarted
        self._options = {"mode": str(mode), "verify": bool(verify)}
        self._ctx = _fork_context()
        self._lock = threading.RLock()
        self._handles: Dict[str, WorkerHandle] = {}
        self._closed = False
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._stats = {"spawns": 0, "restarts": 0, "heartbeat_kills": 0, "shed": 0}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def ensure(self, model: str) -> WorkerHandle:
        """The live handle for ``model``, spawning its worker if needed.

        Mirrors ``ForecastService.load`` semantics: capacity-bounded with
        LRU eviction of unpinned replicas; all slots pinned raises
        ``ValueError`` (the gateway maps it to ``capacity_exhausted``).
        """
        model = str(model)
        victim: Optional[WorkerHandle] = None
        with self._lock:
            if self._closed:
                raise RuntimeError("worker supervisor is closed")
            handle = self._handles.get(model)
            creator = False
            if handle is None:
                if len(self._handles) >= self.capacity:
                    candidates = [h for h in self._handles.values() if h.pins == 0]
                    if not candidates:
                        raise ValueError(
                            f"cannot start a worker for {model!r}: all {self.capacity} "
                            f"replica slots are held by pinned models "
                            f"{sorted(self._handles)}; raise the capacity or close "
                            "the sessions pinning them"
                        )
                    victim = min(candidates, key=lambda h: h.last_used)
                    del self._handles[victim.model]
                handle = self._handles[model] = WorkerHandle(model)
                creator = True
        if victim is not None:
            self._kill_process(victim)
        if creator:
            try:
                self._spawn_into(handle)
            except Exception:
                with self._lock:
                    if self._handles.get(model) is handle:
                        del self._handles[model]
                handle.state = FAILED
                handle.ready.set()
                self._kill_process(handle)
                raise
            with self._lock:
                handle.state = LIVE
                handle.started_at = time.monotonic()
            handle.ready.set()
            self._ensure_monitor()
            return handle
        if not handle.ready.wait(self.spawn_timeout_s):
            raise RuntimeError(f"worker for model {model!r} never became ready")
        with self._lock:
            if self._handles.get(model) is not handle:
                # the concurrent spawn failed and removed the handle
                raise RuntimeError(f"worker for model {model!r} failed to start")
        return handle

    def pin(self, model: str) -> WorkerHandle:
        handle = self.ensure(model)
        with self._lock:
            handle.pins += 1
        return handle

    def unpin(self, model: str) -> bool:
        with self._lock:
            handle = self._handles.get(str(model))
            if handle is None or handle.pins == 0:
                return False
            handle.pins -= 1
            return True

    def touch(self, model: str) -> None:
        with self._lock:
            handle = self._handles.get(str(model))
            if handle is not None:
                handle.last_used = time.monotonic()

    def stop(self, model: str) -> bool:
        """Stop and forget the named replica; pinned replicas refuse."""
        with self._lock:
            handle = self._handles.get(str(model))
            if handle is None:
                return False
            if handle.pins > 0:
                raise ValueError(
                    f"model {model!r} is pinned by {handle.pins} active consumer(s) "
                    "and cannot be unloaded"
                )
            del self._handles[str(model)]
        self._kill_process(handle)
        return True

    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._handles)

    def pinned(self) -> List[str]:
        with self._lock:
            return sorted(m for m, h in self._handles.items() if h.pins > 0)

    def describe(self) -> List[dict]:
        with self._lock:
            handles = sorted(self._handles.values(), key=lambda h: h.model)
            return [h.describe() for h in handles]

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
            self._handles.clear()
        self._stop.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=5.0)
        for handle in handles:
            self._kill_process(handle)

    # ------------------------------------------------------------------
    # fault injection (the kill_worker / hang_worker fault kinds)
    # ------------------------------------------------------------------
    def kill_worker(self, model: str = "") -> Optional[int]:
        """SIGKILL a live replica (``model`` or any); returns the pid hit."""
        return self._signal_worker(model, signal.SIGKILL)

    def hang_worker(self, model: str = "") -> Optional[int]:
        """SIGSTOP a live replica so it hangs without exiting."""
        return self._signal_worker(model, signal.SIGSTOP)

    def _signal_worker(self, model: str, signum: int) -> Optional[int]:
        with self._lock:
            if model:
                candidates = [self._handles.get(str(model))]
            else:
                candidates = [self._handles[m] for m in sorted(self._handles)]
            target = next(
                (h for h in candidates if h is not None and h.state == LIVE and h.pid),
                None,
            )
            pid = None if target is None else target.pid
        if pid is None:
            return None
        try:
            os.kill(pid, signum)
        except ProcessLookupError:  # already gone; the monitor will notice
            return None
        return pid

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def submit(self, model, requests, timeout_s: Optional[float] = None) -> List[np.ndarray]:
        """Route one single-model batch of named requests to its replica."""
        body = {"requests": [wire.named_request_to_wire(named) for named in requests]}
        reply = self._call(model, "forecast", body, timeout_s=timeout_s)
        return [wire.decode_array(spec) for spec in reply["results"]]

    def sweep(self, model, document: dict, timeout_s: Optional[float] = None) -> dict:
        """Forward a raw sweep-request document; returns the results doc."""
        reply = self._call(model, "sweep", {"document": document}, timeout_s=timeout_s)
        return reply["document"]

    def session_open(
        self, model, session_id: str, document: dict, internal: bool = False
    ) -> dict:
        return self._call(
            model,
            "session_open",
            {"session_id": str(session_id), "document": document},
            internal=internal,
        )

    def session_lap(
        self,
        model,
        session_id: str,
        lap,
        records,
        timeout_s: Optional[float] = None,
        internal: bool = False,
    ) -> dict:
        return self._call(
            model,
            "session_lap",
            {
                "session_id": str(session_id),
                "lap": lap,
                # normalise LapRecord-style objects so in-process callers
                # can feed the pipe exactly like HTTP clients do
                "records": [wire.lap_record_to_wire(record) for record in records],
            },
            timeout_s=timeout_s,
            internal=internal,
        )

    def session_finish(self, model, session_id: str, drain: bool = True) -> dict:
        return self._call(
            model, "session_finish", {"session_id": str(session_id), "drain": bool(drain)}
        )

    def session_drop(self, model, session_id: str) -> None:
        try:
            self._call(model, "session_drop", {"session_id": str(session_id)})
        except Exception:  # rollback path: the worker may be mid-restart
            pass

    # ------------------------------------------------------------------
    def _call(
        self,
        model,
        op: str,
        body: dict,
        timeout_s: Optional[float] = None,
        internal: bool = False,
    ) -> dict:
        model = str(model)
        with self._lock:
            handle = self._handles.get(model)
        if handle is None:
            handle = self.ensure(model)
        self.touch(model)
        with handle.depth_lock:
            if handle.depth >= self.queue_limit:
                with self._lock:
                    self._stats["shed"] += 1
                raise OverloadedError(
                    f"worker queue for model {model!r} is full "
                    f"({handle.depth} ops in flight, limit {self.queue_limit})",
                    retry_after_ms=max(50, int(100 * handle.depth)),
                )
            handle.depth += 1
        try:
            with handle.op_lock:
                self._check_state(handle, internal)
                return self._exchange(handle, op, body, timeout_s)
        finally:
            with handle.depth_lock:
                handle.depth -= 1

    def _check_state(self, handle: WorkerHandle, internal: bool) -> None:
        with self._lock:
            state = handle.state
            episode = handle.episode
        if state == LIVE or (internal and state == RESTARTING):
            return
        backoff = min(self.backoff_base_s * (2 ** max(episode, 0)), self.backoff_max_s)
        if state == FAILED:
            raise WorkerRestartingError(
                f"worker for model {handle.model!r} exhausted its restart budget "
                f"({self.restart_budget}) and is down: {handle.last_failure}",
                retry_after_ms=5000,
            )
        raise WorkerRestartingError(
            f"worker for model {handle.model!r} is restarting "
            f"({handle.last_failure}); retry shortly",
            retry_after_ms=int(backoff * 1e3) + 50,
        )

    def _exchange(self, handle: WorkerHandle, op: str, body: dict, timeout_s) -> dict:
        conn = handle.work
        handle.frame_id += 1
        frame_id = handle.frame_id
        try:
            conn.send_bytes(
                json.dumps({"id": frame_id, "op": op, "body": body}).encode("utf-8")
            )
        except (OSError, ValueError, AttributeError) as exc:
            self._declare_dead(handle, f"work pipe closed on send ({exc})")
            raise RuntimeError(
                f"worker for model {handle.model!r} died before accepting {op!r}"
            ) from exc
        deadline_at = None if timeout_s is None else time.monotonic() + float(timeout_s)
        while True:
            step = 0.2
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    # abandon the op: the (serialized) reply, if it ever
                    # comes, is discarded by the next op's frame-id check
                    raise DeadlineExceededError(
                        f"{op!r} on worker for model {handle.model!r} exceeded "
                        "its deadline"
                    )
                step = min(step, remaining)
            try:
                has_data = conn.poll(step)
            except (OSError, EOFError):
                has_data = False
            if has_data:
                try:
                    raw = conn.recv_bytes()
                except (EOFError, OSError) as exc:
                    self._declare_dead(handle, "work pipe closed mid-request")
                    raise RuntimeError(
                        f"worker for model {handle.model!r} died executing {op!r}"
                    ) from exc
                reply = json.loads(raw.decode("utf-8"))
                if reply.get("id") != frame_id:
                    continue  # stale reply from an op abandoned at its deadline
                if reply.get("ok"):
                    return reply.get("body") or {}
                error = reply.get("error") or {}
                message = str(error.get("message", "worker error"))
                if reply.get("engine_failure"):
                    # surfaces as RuntimeError so the gateway's breaker
                    # attribution counts it against the model
                    raise RuntimeError(
                        f"worker for model {handle.model!r}: {message}"
                    )
                raise WireError(
                    str(error.get("code", "internal_error")),
                    message,
                    status=int(error.get("status", reply.get("status", 500))),
                    detail=error.get("detail"),
                )
            process = handle.process
            if process is not None and not process.is_alive():
                try:
                    if conn.poll(0):  # a reply raced the death — read it
                        continue
                except (OSError, EOFError):
                    pass
                self._declare_dead(handle, "process exited mid-request")
                raise RuntimeError(
                    f"worker for model {handle.model!r} died executing {op!r}"
                )

    # ------------------------------------------------------------------
    # spawning / heartbeats / restarts
    # ------------------------------------------------------------------
    def _spawn_into(self, handle: WorkerHandle) -> None:
        """Start a fresh process for ``handle`` and wait for readiness."""
        work_parent, work_child = self._ctx.Pipe()
        control_parent, control_child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(work_child, control_child, self.store_root, handle.model, self._options),
            name=f"repro-worker-{handle.model}",
            daemon=True,
        )
        process.start()
        work_child.close()
        control_child.close()
        handle.process = process
        handle.work = work_parent
        handle.control = control_parent
        with self._lock:
            self._stats["spawns"] += 1
        deadline_at = time.monotonic() + self.spawn_timeout_s
        while True:
            if self._ping(handle, timeout=0.25):
                return
            if not process.is_alive():
                raise RuntimeError(
                    f"worker for model {handle.model!r} exited during startup "
                    f"(exitcode {process.exitcode})"
                )
            if time.monotonic() > deadline_at:
                raise RuntimeError(
                    f"worker for model {handle.model!r} never answered its "
                    f"readiness ping within {self.spawn_timeout_s:.0f}s"
                )

    def _ping(self, handle: WorkerHandle, timeout: float) -> bool:
        conn = handle.control
        if conn is None:
            return False
        with handle.control_lock:
            handle.control_frame_id += 1
            frame_id = handle.control_frame_id
            try:
                conn.send_bytes(json.dumps({"id": frame_id}).encode("utf-8"))
            except (OSError, ValueError):
                return False
            deadline_at = time.monotonic() + float(timeout)
            while True:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    return False
                try:
                    if not conn.poll(remaining):
                        return False
                    reply = json.loads(conn.recv_bytes().decode("utf-8"))
                except (OSError, EOFError, ValueError):
                    return False
                if reply.get("id") == frame_id:
                    handle.last_heartbeat = time.monotonic()
                    return True
                # stale pong from a ping that timed out earlier

    def _ensure_monitor(self) -> None:
        with self._lock:
            if self._monitor is not None or self._closed:
                return
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="worker-heartbeat-monitor", daemon=True
            )
            self._monitor.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            with self._lock:
                live = [h for h in self._handles.values() if h.state == LIVE]
            for handle in live:
                process = handle.process
                if process is None:
                    continue
                if not process.is_alive():
                    self._declare_dead(handle, "process exited")
                    continue
                if not self._ping(handle, timeout=self.heartbeat_timeout_s):
                    # the heartbeat deadline: a hung replica (SIGSTOP, a
                    # wedged runtime) cannot answer — escalate to SIGKILL
                    # (which lands even on a stopped process) and restart
                    with self._lock:
                        self._stats["heartbeat_kills"] += 1
                    self._declare_dead(handle, "heartbeat deadline missed")

    def _declare_dead(self, handle: WorkerHandle, reason: str) -> None:
        with self._lock:
            if self._closed or handle.state in (RESTARTING, FAILED):
                return
            if self._handles.get(handle.model) is not handle:
                return  # already stopped/evicted
            handle.state = RESTARTING
            handle.last_failure = reason
            now = time.monotonic()
            if handle.started_at is not None and now - handle.started_at >= self.min_uptime_s:
                # the replica was healthy long enough: a fresh failure episode
                handle.episode = 0
            handle.episode += 1
        threading.Thread(
            target=self._restart_loop,
            args=(handle,),
            name=f"worker-restart-{handle.model}",
            daemon=True,
        ).start()

    def _restart_loop(self, handle: WorkerHandle) -> None:
        model = handle.model
        while True:
            with self._lock:
                if self._closed or self._handles.get(model) is not handle:
                    break
                episode = handle.episode
                if episode > self.restart_budget:
                    handle.state = FAILED
                    handle.last_failure = (
                        f"{handle.last_failure} (restart budget "
                        f"{self.restart_budget} exhausted after {episode - 1} restarts)"
                    )
                    break
            # exponential backoff before touching the corpse
            time.sleep(min(self.backoff_base_s * (2 ** max(episode - 1, 0)), self.backoff_max_s))
            with self._lock:
                # the supervisor may have been closed (or the replica
                # stopped/evicted) during the backoff sleep — never respawn
                # a worker nobody owns
                if self._closed or self._handles.get(model) is not handle:
                    break
            self._kill_process(handle)
            try:
                self._spawn_into(handle)
                if self.on_worker_restarted is not None:
                    # journal failover runs before the replica goes live, so
                    # no external op can interleave with the replay
                    try:
                        self.on_worker_restarted(model)
                    except Exception:  # the gateway records its own errors
                        pass
            except Exception as exc:
                with self._lock:
                    handle.episode += 1
                    handle.last_failure = f"restart failed: {exc}"
                continue
            with self._lock:
                handle.restarts += 1
                self._stats["restarts"] += 1
                handle.state = LIVE
                handle.started_at = time.monotonic()
                handle.last_heartbeat = time.monotonic()
            return
        self._kill_process(handle)

    def _kill_process(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is not None:
            pid = process.pid
            if process.is_alive() and pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            process.join(timeout=5.0)
        for conn in (handle.work, handle.control):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        handle.work = None
        handle.control = None


# ----------------------------------------------------------------------
# the gateway's mode-agnostic session view
# ----------------------------------------------------------------------
class RaceSessionProxy:
    """Duck-types :class:`RaceSession` over a worker-resident session.

    The gateway's :class:`~repro.serving.sessions.ManagedSession` and its
    ``describe()`` read plain counters; the proxy refreshes them from
    every worker reply.  The replay-vs-observe decision lives in the
    worker's real session (``apply_lap``), never here — after a failover
    the proxy's counters can lag the rebuilt session, and only the
    session itself knows whether a lap is a duplicate.
    """

    def __init__(self, supervisor: WorkerSupervisor, model: str, session_id: str, info: dict):
        self._supervisor = supervisor
        self.model = str(model)
        self.session_id = str(session_id)
        self._refresh(info)

    def _refresh(self, info: dict) -> None:
        self.latest_lap = int(info.get("latest_lap", -1))
        self.next_origin = int(info.get("next_origin", 0))
        self.laps_observed = int(info.get("laps_observed", 0))
        self.forecasts_emitted = int(info.get("forecasts_emitted", 0))
        self.num_cars = int(info.get("cars", 0))

    # ------------------------------------------------------------------
    def apply_lap(self, lap, records, timeout_s=None, internal: bool = False):
        reply = self._supervisor.session_lap(
            self.model,
            self.session_id,
            lap,
            records,
            timeout_s=timeout_s,
            internal=internal,
        )
        self._refresh(reply)
        return emitted_from_wire(reply["results"]), bool(reply["replayed"])

    def observe_lap(self, lap, records):
        emitted, _replayed = self.apply_lap(lap, records)
        return emitted

    def finish(self, drain: bool = True):
        reply = self._supervisor.session_finish(self.model, self.session_id, drain=drain)
        self._refresh(reply)
        return emitted_from_wire(reply["results"])

    def drop(self) -> None:
        self._supervisor.session_drop(self.model, self.session_id)
