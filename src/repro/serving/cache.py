"""Per-car warm-up state cache for the fleet engine's ``carry`` mode."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

__all__ = ["CachedWarmup", "WarmupStateCache"]


@dataclass
class CachedWarmup:
    """Recurrent state of one car after consuming history through ``origin``.

    ``scale`` is frozen when the entry is first created: carrying a
    recurrent state across origins is only self-consistent if the target
    scaling that produced the LSTM inputs does not change between origins.
    """

    origin: int
    scale: np.ndarray        # (target_dim,) frozen target scale
    packed_state: np.ndarray  # stack.export_state(...) with batch size 1
    z_last: np.ndarray       # (target_dim,) scaled target observed at ``origin``


class WarmupStateCache:
    """Bounded LRU cache mapping a car key to its :class:`CachedWarmup`."""

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, CachedWarmup]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.carries = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[CachedWarmup]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, entry: CachedWarmup) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: Optional[Hashable] = None) -> None:
        """Drop one entry (or everything when ``key`` is ``None``)."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "carries": self.carries,
            "evictions": self.evictions,
        }
