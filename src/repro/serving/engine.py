"""The fleet-batched Monte-Carlo inference engine.

:class:`FleetForecaster` drives a trained sequence backbone
(:class:`~repro.models.deep.rankmodel.RankSeqModel`-style recurrent models,
or :class:`~repro.models.deep.transformer.TransformerSeqModel`) over many
forecast requests at once.  The model is duck-typed: a recurrent backbone
exposes ``lstm`` (a ``StackedLSTM`` or ``StackedGRU``), a Gaussian head
(either a fused multi-dimension ``head`` or a per-dimension ``heads``
list), ``target_dim`` and ``num_covariates``; a Transformer backbone
exposes ``_encode`` / ``_decode`` instead of ``lstm``.

Batching strategy
-----------------
* Requests are grouped by ``(history length, horizon)`` and each group is
  flattened to a single ``sum(n_samples)``-row batch for the decode loop,
  so one recurrent ``step`` advances every trajectory of every car at once.
* Warm-up (teacher forcing over the observed history) runs with **one row
  per request**, not per sample — the state is deterministic, so it is
  computed once and replicated across the Monte-Carlo trajectories.
* Requests sharing ``(key, origin, length)`` (e.g. the several pit-stop
  plans of one RankNet-MLP forecast) share a single warm-up computation.
* In ``carry`` mode the engine additionally caches each car's recurrent
  state per origin and advances it incrementally between consecutive
  origins instead of re-running teacher forcing from the window start.
  The target scale is frozen per car when its cache entry is created, so
  carried states are self-consistent; forecasts therefore match a
  from-scratch replay *with that frozen scale* exactly, but may differ
  slightly from ``exact`` mode (which re-scales at every origin).
  Transformer backbones have no step-wise state and always run ``exact``.

Decode engine
-------------
The Monte-Carlo decode loop runs on a fused, allocation-free path
(``decode="fused"``, the default):

* **block RNG** — NumPy ``Generator`` streams are call-size invariant, so
  each request's entire noise tensor is drawn in a single
  ``standard_normal(horizon * target_dim * n_samples)`` call before the
  lap loop and reshaped to replay the stepwise (step, dim, request) draw
  order byte-identically, replacing the nested per-dim/per-request
  sampling loops with one vectorised ``mu + sigma * noise[h]`` per step;
* **fused decode steps** — the recurrent stack advances through
  ``step_decode`` (:mod:`repro.nn.recurrent` / :mod:`repro.nn.gru`):
  permuted contiguous gate blocks, one dense sigmoid pass, and
  preallocated gate/state/input buffers reused across the horizon;
* **hoisted covariates** — the future-covariate rows are expanded once
  into a ``(horizon, total, C)`` tensor instead of an ``np.repeat`` per
  lap.

The original per-lap loop is retained as ``decode="stepwise"`` — it is
the reference the fused path is gated byte-identical against
(``benchmarks/test_bench_decode.py``, ``tests/serving/test_decode_parity``).

Because every recurrent matmul goes through
:func:`repro.nn.inference.stable_matmul`, results are independent of batch
composition: given per-request RNG streams, a fleet-batched submit is
byte-identical to submitting each request on its own.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.inference import (
    head_inference,
    recurrent_inference,
    slice_states,
    tile_states,
)
from ..nn.precision import (
    DEFAULT_PRECISION,
    assert_dtype,
    compute_dtype,
    convert_module,
    normalize_precision,
    working_empty,
)
from .cache import CachedWarmup, WarmupStateCache
from .requests import ForecastRequest

__all__ = ["FleetForecaster"]

_MODES = ("exact", "carry")
_DECODES = ("fused", "stepwise")


def _dedupe_warmups(
    requests: Sequence[ForecastRequest], stats: Dict[str, int]
) -> Tuple[List[int], List[ForecastRequest]]:
    """Map each request to a warm-up slot shared by identical warm-ups.

    Requests with the same :meth:`ForecastRequest.warmup_key` (same car,
    origin and history length — e.g. the several pit-stop plans of one
    RankNet-MLP forecast) compute their deterministic warm-up only once.
    """
    slot_of: Dict[Hashable, int] = {}
    owners: List[int] = []
    uniques: List[ForecastRequest] = []
    for request in requests:
        key = request.warmup_key()
        slot = slot_of.get(key)
        if slot is None:
            slot = len(uniques)
            slot_of[key] = slot
            uniques.append(request)
        else:
            stats["warmup_shared"] += 1
        owners.append(slot)
    stats["warmup_unique"] += len(uniques)
    return owners, uniques


class FleetForecaster:
    """Batch scheduler turning forecast requests into Monte-Carlo samples.

    Parameters
    ----------
    model:
        A fitted sequence backbone (recurrent or Transformer, see module
        docstring).  Parameters are shared by reference; refitting the
        model is picked up automatically, but call :meth:`reset_cache`
        after changing weights when running in ``carry`` mode.
    mode:
        ``"exact"`` recomputes the warm-up at every origin (bitwise
        reference behaviour); ``"carry"`` advances cached per-car states
        between consecutive origins (fastest for rolling-origin loops).
    cache_size:
        Maximum number of per-car state entries kept in ``carry`` mode.
    max_batch_rows:
        Upper bound on the flattened ``sum(n_samples)`` rows per decode
        batch; larger groups are split (results are unaffected — the
        kernels are batch-size invariant).
    decode:
        ``"fused"`` (default) runs the block-RNG, allocation-free decode
        engine; ``"stepwise"`` runs the retained per-lap reference loop.
        The two are byte-identical (gated in the benchmark suite); the
        knob exists for benchmarking and bisection.  Transformer
        backbones ignore it (no step-wise recurrent state).
    precision:
        ``"float64"`` (default) is the exact reference tier — bitwise
        unchanged behaviour.  ``"float32"`` runs the whole warm-up and
        decode in single precision on a converted weight replica;
        ``"int8"`` additionally quantises the replica's weights
        per-output-channel to int8 and dequantises them once into the f32
        GEMM operands.  Low-precision tiers require a recurrent backbone
        and the fused decode engine; their contract is *error-bounded*
        rank-forecast parity against the float64 reference (gated in
        ``benchmarks/test_bench_precision.py``), not byte identity.
        Returned sample arrays are always float64 — the tier changes the
        arithmetic, not the wire/result dtype.  The replica's weights are
        snapshotted at construction; refitting the model requires a fresh
        engine (the deep forecasters rebuild their engine caches on fit).
    """

    def __init__(
        self,
        model,
        mode: str = "exact",
        cache_size: int = 512,
        max_batch_rows: int = 8192,
        decode: str = "fused",
        precision: str = DEFAULT_PRECISION,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if decode not in _DECODES:
            raise ValueError(f"decode must be one of {_DECODES}, got {decode!r}")
        self.precision = normalize_precision(precision)
        self.dtype = compute_dtype(self.precision)
        if self.precision != "float64" and decode != "fused":
            raise ValueError(
                "decode='stepwise' is the float64 byte-identity reference; "
                f"precision={self.precision!r} runs the fused engine only"
            )
        self.model = model
        self.mode = mode
        self.decode = decode
        self.max_batch_rows = int(max_batch_rows)
        self.cache = WarmupStateCache(cache_size)
        if hasattr(model, "lstm"):
            self._backend = _RecurrentBackend(self)
        elif hasattr(model, "_encode") and hasattr(model, "_decode"):
            if self.precision != "float64":
                raise ValueError(
                    f"precision={self.precision!r} is not available for the "
                    "Transformer backbone: it decodes through the float64 "
                    "training modules; request the float64 reference tier"
                )
            self._backend = _TransformerBackend(self)
        else:
            raise TypeError(
                f"unsupported backbone {type(model).__name__}: expected a recurrent "
                "model (with .lstm) or a Transformer model (with ._encode/._decode)"
            )
        self._stats: Dict[str, int] = {
            "submits": 0,
            "requests": 0,
            "groups": 0,
            "warmup_unique": 0,
            "warmup_shared": 0,
            "warmup_steps": 0,
            "decode_steps": 0,
        }
        self._timings: Dict[str, float] = {"warmup_s": 0.0, "decode_s": 0.0}

    # ------------------------------------------------------------------
    def submit(self, requests: Sequence[ForecastRequest]) -> List[np.ndarray]:
        """Run every request; returns one ``(n_samples, horizon)`` array each.

        Samples are trajectories of the first target dimension on the
        original scale (same contract as ``forecast_samples``), in the
        order the requests were submitted.
        """
        requests = list(requests)
        if not requests:
            return []
        for request in requests:
            self._backend.validate(request)
        self._stats["submits"] += 1
        self._stats["requests"] += len(requests)

        groups: "OrderedDict[Tuple[int, int], List[int]]" = OrderedDict()
        for i, request in enumerate(requests):
            groups.setdefault((request.length, request.horizon), []).append(i)

        outputs: List[Optional[np.ndarray]] = [None] * len(requests)
        for indices in groups.values():
            for chunk in self._row_chunks(requests, indices):
                self._stats["groups"] += 1
                results = self._backend.run_group([requests[i] for i in chunk])
                for i, samples in zip(chunk, results):
                    outputs[i] = samples
        return outputs  # type: ignore[return-value]

    def _row_chunks(
        self, requests: Sequence[ForecastRequest], indices: List[int]
    ) -> List[List[int]]:
        """Split one group so each chunk stays under ``max_batch_rows``."""
        chunks: List[List[int]] = []
        current: List[int] = []
        rows = 0
        for i in indices:
            n = requests[i].n_samples
            if current and rows + n > self.max_batch_rows:
                chunks.append(current)
                current, rows = [], 0
            current.append(i)
            rows += n
        if current:
            chunks.append(current)
        return chunks

    # ------------------------------------------------------------------
    def reset_cache(self) -> None:
        """Drop all carried warm-up states (call after refitting weights)."""
        self.cache.invalidate()

    @property
    def stats(self) -> Dict[str, int]:
        """Engine counters merged with the state-cache statistics."""
        merged = dict(self._stats)
        for name, value in self.cache.stats().items():
            merged[f"cache_{name}"] = value
        return merged

    @property
    def timings(self) -> Dict[str, float]:
        """Accumulated warm-up / decode wall-clock of all submits."""
        return dict(self._timings)

    def reset_timings(self) -> None:
        for key in self._timings:
            self._timings[key] = 0.0


# ----------------------------------------------------------------------
# recurrent backend (StackedLSTM / StackedGRU backbones)
# ----------------------------------------------------------------------
class _RecurrentBackend:
    def __init__(self, engine: FleetForecaster) -> None:
        self.engine = engine
        self.model = engine.model
        self.dtype = engine.dtype
        # low-precision tiers run on a converted weight replica (float32
        # cast, or int8-quantised-then-dequantised); the float64 reference
        # shares the training parameters by reference, exactly as before
        self.stack_module = convert_module(self.model.lstm, engine.precision)
        self.stack = recurrent_inference(self.stack_module, dtype=self.dtype)
        # fused multi-dim head (RankSeqModel) or per-dimension head list
        if hasattr(self.model, "head"):
            self.head = head_inference(
                convert_module(self.model.head, engine.precision), dtype=self.dtype
            )
            self.heads = None
        else:
            self.head = None
            self.heads = [
                head_inference(convert_module(head, engine.precision), dtype=self.dtype)
                for head in self.model.heads
            ]

    # -- validation ----------------------------------------------------
    def validate(self, request: ForecastRequest) -> None:
        model = self.model
        if request.target_dim != model.target_dim:
            raise ValueError(
                f"expected target_dim={model.target_dim}, got {request.target_dim}"
            )
        for covariates in (request.history_covariates, request.future_covariates):
            if covariates.shape[-1] != model.num_covariates:
                raise ValueError(
                    f"expected {model.num_covariates} covariates, got {covariates.shape[-1]}"
                )

    # -- warm-up -------------------------------------------------------
    def _full_warmup(self, uniques: Sequence[ForecastRequest]):
        """Teacher-forced warm-up with one batch row per unique request.

        Runs on the fused ``forward_sequence`` kernels (one input-projection
        GEMM per layer over the whole history) — bitwise identical to
        stepping lap by lap, since every ``stable_matmul`` row depends only
        on its own contents.
        """
        length = uniques[0].length
        scales = np.stack([np.abs(u.target).mean(axis=0) + 1.0 for u in uniques])
        z = np.stack([u.target for u in uniques]) / scales[:, None, :]
        covariates = np.stack([u.history_covariates for u in uniques])
        states = self.stack.zero_state(len(uniques))
        if length > 1:
            x = np.concatenate([z[:, :-1, :], covariates[:, 1:, :]], axis=2)
            _, states = self.stack.forward_sequence(x, states)
        self.engine._stats["warmup_steps"] += max(length - 1, 0)
        return scales, states, z[:, -1, :]

    def _warmup_exact(self, requests: Sequence[ForecastRequest]):
        owners, uniques = _dedupe_warmups(requests, self.engine._stats)
        scales, states, z_last = self._full_warmup(uniques)
        return owners, scales, states, z_last

    def _warmup_carry(self, requests: Sequence[ForecastRequest]):
        """Warm-up that carries cached states between consecutive origins."""
        owners, uniques = _dedupe_warmups(requests, self.engine._stats)
        cache = self.engine.cache
        stack_module = self.stack_module

        # order cache-keyed slots per key by origin, so several origins of
        # the same car inside one submit advance the state sequentially
        rounds: List[List[int]] = []
        keyed: "OrderedDict[Hashable, List[int]]" = OrderedDict()
        unkeyed: List[int] = []
        for slot, request in enumerate(uniques):
            if request.key is not None and request.origin is not None:
                keyed.setdefault(request.key, []).append(slot)
            else:
                unkeyed.append(slot)
        for slots in keyed.values():
            slots.sort(key=lambda s: uniques[s].origin)
            for depth, slot in enumerate(slots):
                while len(rounds) <= depth:
                    rounds.append([])
                rounds[depth].append(slot)
        if unkeyed:
            if not rounds:
                rounds.append([])
            rounds[0].extend(unkeyed)

        n_slots = len(uniques)
        target_dim = self.model.target_dim
        num_cov = self.model.num_covariates
        scales = np.empty((n_slots, target_dim))
        z_last = np.empty((n_slots, target_dim))
        # preallocated packed-state buffer for the whole group: each slot's
        # state is written straight into its batch column (the batch axis of
        # ``export_state`` is -2 for both backbones), replacing the old
        # per-slot list + final ``np.concatenate`` assembly
        packed_all = stack_module.export_state(
            stack_module.zero_state(n_slots, dtype=self.dtype)
        )

        for round_slots in rounds:
            full: List[int] = []
            reuse: List[int] = []
            advance: Dict[int, List[Tuple[int, CachedWarmup]]] = {}
            for slot in round_slots:
                request = uniques[slot]
                # only consult the cache when the request can be positioned
                # on the lap axis — a key without an origin is uncacheable
                cacheable = request.key is not None and request.origin is not None
                entry = cache.get(request.key) if cacheable else None
                if entry is None:
                    full.append(slot)
                    continue
                delta = request.origin - entry.origin
                if delta == 0:
                    reuse.append(slot)
                    scales[slot] = entry.scale
                    z_last[slot] = entry.z_last
                    packed_all[..., slot : slot + 1, :] = entry.packed_state
                elif 0 < delta <= request.length:
                    advance.setdefault(delta, []).append((slot, entry))
                else:
                    full.append(slot)  # gap too large (or origin went backwards)

            if full:
                f_scales, f_states, f_z_last = self._full_warmup([uniques[s] for s in full])
                for row, slot in enumerate(full):
                    scales[slot] = f_scales[row]
                    z_last[slot] = f_z_last[row]
                    packed = stack_module.export_state(
                        slice_states(f_states, np.array([row]))
                    )
                    packed_all[..., slot : slot + 1, :] = packed
                    request = uniques[slot]
                    if request.key is not None and request.origin is not None:
                        cache.put(
                            request.key,
                            CachedWarmup(
                                origin=request.origin,
                                scale=f_scales[row].copy(),
                                packed_state=packed,
                                z_last=f_z_last[row].copy(),
                            ),
                        )

            for delta, slot_entries in advance.items():
                slots = [slot for slot, _ in slot_entries]
                k = len(slot_entries)
                # preallocated per-round buffers instead of np.stack /
                # np.concatenate over per-entry arrays
                frozen = np.empty((k, target_dim), dtype=np.float64)
                z_prev = np.empty((k, target_dim), dtype=np.float64)
                adv_packed = stack_module.export_state(
                    stack_module.zero_state(k, dtype=self.dtype)
                )
                # step j consumes [z_{j-1}, cov_j]; fuse the delta new laps
                x = np.empty((k, delta, target_dim + num_cov), dtype=np.float64)
                for row, (slot, entry) in enumerate(slot_entries):
                    request = uniques[slot]
                    frozen[row] = entry.scale
                    adv_packed[..., row : row + 1, :] = entry.packed_state
                    x[row, 0, :target_dim] = entry.z_last
                    if delta > 1:
                        x[row, 1:, :target_dim] = (
                            request.target[-delta:-1] / entry.scale
                        )
                    x[row, :, target_dim:] = request.history_covariates[-delta:]
                    z_prev[row] = request.target[-1] / entry.scale
                states = stack_module.import_state(adv_packed, dtype=self.dtype)
                _, states = self.stack.forward_sequence(x, states)
                self.engine._stats["warmup_steps"] += delta
                cache.carries += len(slots)
                for row, slot in enumerate(slots):
                    request = uniques[slot]
                    scales[slot] = frozen[row]
                    z_last[slot] = z_prev[row]
                    packed = stack_module.export_state(slice_states(states, np.array([row])))
                    packed_all[..., slot : slot + 1, :] = packed
                    cache.put(
                        request.key,
                        CachedWarmup(
                            origin=request.origin,
                            scale=frozen[row].copy(),
                            packed_state=packed,
                            z_last=z_prev[row].copy(),
                        ),
                    )

        return owners, scales, stack_module.import_state(packed_all, dtype=self.dtype), z_last

    # -- decode --------------------------------------------------------
    def run_group(self, requests: Sequence[ForecastRequest]) -> List[np.ndarray]:
        t0 = time.perf_counter()
        if self.engine.mode == "carry":
            owners, scales, slot_states, slot_z_last = self._warmup_carry(requests)
        else:
            owners, scales, slot_states, slot_z_last = self._warmup_exact(requests)
        t1 = time.perf_counter()
        self.engine._timings["warmup_s"] += t1 - t0

        owner_index = np.asarray(owners, dtype=np.int64)
        counts = np.array([request.n_samples for request in requests], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        horizon = requests[0].horizon
        total = int(counts.sum())

        states = tile_states(slice_states(slot_states, owner_index), counts)
        z_prev = np.repeat(slot_z_last[owner_index], counts, axis=0)
        scale0_rows = np.repeat(scales[owner_index][:, 0], counts)
        future = np.stack([request.future_covariates for request in requests])
        rngs = [
            request.rng if request.rng is not None else self.model.rng
            for request in requests
        ]

        if self.engine.decode == "fused":
            samples = self._decode_fused(
                counts, offsets, horizon, total, states, z_prev, scale0_rows, future, rngs
            )
        else:
            samples = self._decode_stepwise(
                requests, counts, offsets, horizon, total, states, z_prev,
                scale0_rows, future, rngs,
            )
        self.engine._stats["decode_steps"] += horizon
        self.engine._timings["decode_s"] += time.perf_counter() - t1
        return [samples[offsets[i] : offsets[i + 1]] for i in range(len(requests))]

    def _block_noise(
        self,
        rngs: Sequence[np.random.Generator],
        counts: np.ndarray,
        offsets: np.ndarray,
        horizon: int,
        target_dim: int,
        total: int,
    ) -> np.ndarray:
        """The whole decode's Gaussian noise, one ``Generator`` call per stream.

        NumPy ``Generator.standard_normal`` fills its output sequentially
        from the bit stream, so one draw of ``H * D * n`` values equals the
        concatenation of the ``H * D`` per-step draws of ``n`` values the
        stepwise loop makes.  Each distinct Generator's block is reshaped
        to ``(horizon, target_dim, rows)`` — exactly the legacy
        (step, dim, request) draw order — and scattered into the flattened
        batch rows, so the returned ``(horizon, total, target_dim)`` tensor
        replays the stepwise path byte-identically, including when several
        requests share one RNG stream (their draws interleave in submit
        order within each (step, dim) slot, as before).
        """
        noise = np.empty((horizon, total, target_dim), dtype=np.float64)
        groups: "OrderedDict[int, List[int]]" = OrderedDict()
        for i, gen in enumerate(rngs):
            groups.setdefault(id(gen), []).append(i)
        for indices in groups.values():
            gen = rngs[indices[0]]
            g_total = int(counts[indices].sum())
            block = gen.standard_normal(horizon * target_dim * g_total).reshape(
                horizon, target_dim, g_total
            )
            if len(indices) == 1:
                i = indices[0]
                noise[:, offsets[i] : offsets[i + 1], :] = block.transpose(0, 2, 1)
            else:
                rows = np.concatenate(
                    [np.arange(offsets[i], offsets[i + 1]) for i in indices]
                )
                noise[:, rows, :] = block.transpose(0, 2, 1)
        return noise

    def _decode_fused(
        self,
        counts: np.ndarray,
        offsets: np.ndarray,
        horizon: int,
        total: int,
        states,
        z_prev: np.ndarray,
        scale0_rows: np.ndarray,
        future: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Fused allocation-free Monte-Carlo decode (block RNG + step_decode).

        Byte-identical to :meth:`_decode_stepwise`: the recurrent kernels,
        the head projections, and the RNG consumption all replay the
        stepwise path's arithmetic bit for bit (gated in
        ``benchmarks/test_bench_decode.py``).
        """
        target_dim = self.model.target_dim
        dtype = self.dtype
        guarded = dtype != np.float64  # assert-guard the low-precision tiers
        noise = self._block_noise(rngs, counts, offsets, horizon, target_dim, total)
        if guarded:
            # noise is always drawn float64 so every tier consumes the RNG
            # streams identically; only the arithmetic downcasts
            noise = noise.astype(dtype)
        # future covariates expanded once: (horizon, total, C), contiguous
        # per-step slices — replaces one np.repeat per lap
        cov_all = np.ascontiguousarray(
            np.repeat(future, counts, axis=0).transpose(1, 0, 2), dtype=dtype
        )
        ctxs = self.stack_module.begin_decode(states, dtype=dtype)
        x_buf = working_empty((total, target_dim + cov_all.shape[2]), dtype=dtype)
        z = np.ascontiguousarray(z_prev, dtype=dtype)
        samples = np.empty((total, horizon), dtype=np.float64)
        for h in range(horizon):
            x_buf[:, :target_dim] = z
            x_buf[:, target_dim:] = cov_all[h]
            h_t = self.stack_module.step_decode(x_buf, ctxs)
            if guarded:
                assert_dtype(h_t, dtype, "decode hidden state")
            if self.head is not None:
                mu_all, sigma_all = self.head(h_t)  # one (H, 2D) GEMM for all dims
                if guarded:
                    assert_dtype(mu_all, dtype, "head mu")
                    assert_dtype(sigma_all, dtype, "head sigma")
                np.multiply(sigma_all, noise[h], out=z)
                z += mu_all
            else:
                for d, head in enumerate(self.heads):
                    mu, sigma = head(h_t)
                    if guarded:
                        assert_dtype(mu, dtype, "head mu")
                        assert_dtype(sigma, dtype, "head sigma")
                    z[:, d] = mu + sigma * noise[h, :, d]
            # samples stay float64 on every tier (the result contract)
            np.multiply(z[:, 0], scale0_rows, out=samples[:, h])
        return samples

    def _decode_stepwise(
        self,
        requests: Sequence[ForecastRequest],
        counts: np.ndarray,
        offsets: np.ndarray,
        horizon: int,
        total: int,
        states,
        z_prev: np.ndarray,
        scale0_rows: np.ndarray,
        future: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Retained per-lap reference decode (pre-fusion implementation).

        Kept verbatim as the byte-identity baseline for the fused engine:
        one ``stack.step`` per lap with per-step ``np.repeat`` covariate
        rows and nested per-dim / per-request ``standard_normal`` calls.
        """
        target_dim = self.model.target_dim
        samples = np.empty((total, horizon), dtype=np.float64)
        for h in range(horizon):
            cov_rows = np.repeat(future[:, h, :], counts, axis=0)
            x_t = np.concatenate([z_prev, cov_rows], axis=1)
            h_t, states = self.stack.step(x_t, states)
            z_next = np.empty((total, target_dim))
            if self.head is not None:
                mu_all, sigma_all = self.head(h_t)  # one (H, 2D) GEMM for all dims
                # dim-major draw order (all requests for dim 0, then dim 1,
                # ...) matches the per-dim head path exactly, including when
                # several requests share one RNG stream
                for d in range(target_dim):
                    for i in range(len(requests)):
                        rows = slice(offsets[i], offsets[i + 1])
                        z_next[rows, d] = mu_all[rows, d] + sigma_all[
                            rows, d
                        ] * rngs[i].standard_normal(int(counts[i]))
            else:
                for d, head in enumerate(self.heads):
                    mu, sigma = head(h_t)
                    for i in range(len(requests)):
                        rows = slice(offsets[i], offsets[i + 1])
                        z_next[rows, d] = mu[rows] + sigma[rows] * rngs[i].standard_normal(
                            int(counts[i])
                        )
            samples[:, h] = z_next[:, 0] * scale0_rows
            z_prev = z_next
        return samples


# ----------------------------------------------------------------------
# Transformer backend (memory batched across requests, no carried state)
# ----------------------------------------------------------------------
class _TransformerBackend:
    def __init__(self, engine: FleetForecaster) -> None:
        self.engine = engine
        self.model = engine.model

    def validate(self, request: ForecastRequest) -> None:
        model = self.model
        if request.target_dim != model.target_dim:
            raise ValueError(
                f"expected target_dim={model.target_dim}, got {request.target_dim}"
            )
        if request.length < 2:
            raise ValueError("Transformer forecasting needs a history of at least 2 laps")
        for covariates in (request.history_covariates, request.future_covariates):
            if covariates.shape[-1] != model.num_covariates:
                raise ValueError(
                    f"expected {model.num_covariates} covariates, got {covariates.shape[-1]}"
                )

    def run_group(self, requests: Sequence[ForecastRequest]) -> List[np.ndarray]:
        model = self.model
        engine = self.engine
        t0 = time.perf_counter()
        # deduplicate the (deterministic) encoder pass across identical warm-ups
        owners, uniques = _dedupe_warmups(requests, engine._stats)

        length = uniques[0].length
        horizon = requests[0].horizon
        target_dim = model.target_dim
        scales = np.stack([np.abs(u.target).mean(axis=0) + 1.0 for u in uniques])
        z = np.stack([u.target for u in uniques]) / scales[:, None, :]
        covariates = np.stack([u.history_covariates for u in uniques])

        was_training = model.training
        model.eval()
        try:
            enc_tokens = np.concatenate(
                [z[:, : length - 1, :], covariates[:, 1:length, :]], axis=2
            )
            memory = model._encode(enc_tokens)
            model._clear_all_caches()
            engine._stats["warmup_steps"] += max(length - 1, 0)
            t1 = time.perf_counter()
            engine._timings["warmup_s"] += t1 - t0

            owner_index = np.asarray(owners, dtype=np.int64)
            counts = np.array([request.n_samples for request in requests], dtype=np.int64)
            offsets = np.concatenate([[0], np.cumsum(counts)])
            total = int(counts.sum())
            memory_rows = np.repeat(memory[owner_index], counts, axis=0)
            scale0_rows = np.repeat(scales[owner_index][:, 0], counts)
            future = np.stack([request.future_covariates for request in requests])
            rngs = [
                request.rng if request.rng is not None else model.rng
                for request in requests
            ]

            samples = np.empty((total, horizon), dtype=np.float64)
            z_generated = [np.repeat(z[owner_index][:, -1, :], counts, axis=0)]
            for h in range(horizon):
                tokens = []
                for step in range(h + 1):
                    cov_rows = np.repeat(future[:, step, :], counts, axis=0)
                    tokens.append(np.concatenate([z_generated[step], cov_rows], axis=1))
                dec_tokens = np.stack(tokens, axis=1)
                dec_out = model._decode(dec_tokens, memory_rows)
                h_last = dec_out[:, -1, :]
                z_next = np.empty((total, target_dim))
                for d, head in enumerate(model.heads):
                    params = head.forward(h_last)
                    for i in range(len(requests)):
                        rows = slice(offsets[i], offsets[i + 1])
                        z_next[rows, d] = params.mu[rows] + params.sigma[
                            rows
                        ] * rngs[i].standard_normal(int(counts[i]))
                model._clear_all_caches()
                samples[:, h] = z_next[:, 0] * scale0_rows
                z_generated.append(z_next)
            engine._stats["decode_steps"] += horizon
            engine._timings["decode_s"] += time.perf_counter() - t1
        finally:
            model.train(was_training)
        return [samples[offsets[i] : offsets[i + 1]] for i in range(len(requests))]
