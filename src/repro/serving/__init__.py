"""Fleet-batched Monte-Carlo inference engine.

The evaluation loops, the RankNet variants, the pit-strategy optimizer and
the live-race streamer all forecast *many* trajectories at once: every car
of the field, at every forecast origin, with up to a hundred Monte-Carlo
samples each.  The seed implementation forecast one car at a time and
replayed the entire lap history through the recurrent stack on every call.

This sub-package batches that workload:

* :class:`~repro.serving.requests.ForecastRequest` describes one
  (car, origin, horizon) forecast with its own RNG stream;
* :class:`~repro.serving.engine.FleetForecaster` flattens
  ``cars x n_samples`` into a single recurrent (or Transformer) batch
  dimension, deduplicates identical warm-ups, and — in ``carry`` mode —
  caches warm-up states per car so consecutive origins advance the state
  incrementally instead of re-running teacher forcing from lap 0;
* :class:`~repro.serving.cache.WarmupStateCache` holds those per-car
  recurrent states;
* :class:`~repro.serving.service.ForecastService` manages *many* served
  models at once: named artifacts from an
  :class:`~repro.artifacts.ArtifactStore` are loaded on demand (LRU-bounded
  by a capacity knob, with pin/touch accounting for long-lived consumers),
  each with its own fleet engine, and batches of
  :class:`~repro.serving.requests.NamedForecastRequest` are routed to the
  right engine per model;
* :mod:`~repro.serving.wire` defines the versioned JSON wire protocol
  (base64 arrays, explicit per-request RNG streams, structured error
  envelopes) and :mod:`~repro.serving.server` serves it over HTTP
  (``repro-serve``), with the
  :class:`~repro.serving.scheduler.MicroBatchScheduler` coalescing
  requests from concurrent connections into shared fleet passes and
  :class:`~repro.serving.sessions.RaceSession` holding live-race state
  server-side so timing-feed clients stream laps instead of histories;
* :class:`~repro.serving.supervisor.WorkerSupervisor` shards the service
  across supervised worker *processes* — one crash-tolerant replica per
  model, with heartbeat liveness, budgeted exponential-backoff restarts
  and journal-replay session failover (``workers: true`` in the server
  config; callers racing a restart see a structured
  :class:`~repro.serving.supervisor.WorkerRestartingError`);
* :class:`~repro.serving.client.ForecastClient` is the stdlib reference
  client of that API.

For the recurrent backbones (LSTM/GRU), a fleet-batched forecast is
byte-identical to the same forecasts computed one car at a time given
per-request RNG streams (``numpy.random.Generator.spawn``), because all
recurrent inference runs on the batch-size-invariant kernels of
:mod:`repro.nn.inference`.  The Transformer backend batches through the
model's own attention kernels, which are not chunk-stabilised, so its
results are reproducible per seed but agree across batch compositions
only to floating-point tolerance.
"""

from .cache import WarmupStateCache
from .client import ForecastClient, LiveSessionClient, ServerError
from .engine import FleetForecaster
from .requests import ForecastRequest, NamedForecastRequest, spawn_request_rngs
from .scheduler import MicroBatchScheduler
from .service import ForecastService, ModelHandle
from .sessions import RaceSession, SessionManager
from .supervisor import WorkerRestartingError, WorkerSupervisor
from .wire import WIRE_SCHEMA_VERSION, WireError

__all__ = [
    "FleetForecaster",
    "ForecastClient",
    "ForecastRequest",
    "ForecastService",
    "LiveSessionClient",
    "MicroBatchScheduler",
    "ModelHandle",
    "NamedForecastRequest",
    "RaceSession",
    "ServerError",
    "SessionManager",
    "WarmupStateCache",
    "WireError",
    "WIRE_SCHEMA_VERSION",
    "WorkerRestartingError",
    "WorkerSupervisor",
    "spawn_request_rngs",
]
