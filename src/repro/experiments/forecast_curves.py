"""Forecast-curve experiments: Fig. 2 (baselines) and Fig. 8 (RankNet family).

Both figures show two-lap-ahead forecasts for one car over the lap range
around a pit stop (laps 26-56 in the paper): the observed rank, the
forecast median and the 90% quantile band.  We regenerate the same series
for the simulated Indy500 test race.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.features import CarFeatureSeries
from ..models.base import RankForecaster
from .common import get_dataset, split_features, train_model
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["fig2", "fig8", "forecast_curve"]

FIG2_MODELS = ["SVM", "RandomForest", "ARIMA", "DeepAR"]
FIG8_MODELS = ["Transformer-Oracle", "Transformer-MLP", "RankNet-Oracle", "RankNet-MLP"]


def _pick_interesting_car(test_series: Sequence[CarFeatureSeries], lap_lo: int, lap_hi: int):
    """Pick the car with the largest rank movement inside the window (a pit cycle)."""
    best, best_score = None, -1.0
    for series in test_series:
        if len(series) <= lap_hi:
            continue
        window = series.rank[lap_lo:lap_hi]
        score = float(window.max() - window.min())
        if series.is_pit[lap_lo:lap_hi].any() and score > best_score:
            best, best_score = series, score
    return best if best is not None else test_series[0]


def forecast_curve(
    model: RankForecaster,
    series: CarFeatureSeries,
    lap_lo: int,
    lap_hi: int,
    horizon: int,
    n_samples: int,
) -> Dict[str, List[float]]:
    """Rolling ``horizon``-lap-ahead forecasts over the lap window."""
    observed, median, q90, q10, laps = [], [], [], [], []
    for origin in range(lap_lo, lap_hi):
        if origin + horizon >= len(series):
            break
        fc = model.forecast(series, origin, horizon, n_samples=n_samples)
        target_idx = origin + horizon
        laps.append(float(series.laps[target_idx]))
        observed.append(float(series.rank[target_idx]))
        median.append(float(fc.point()[-1]))
        q90.append(float(fc.quantile(0.9)[-1]))
        q10.append(float(fc.quantile(0.1)[-1]))
    return {"lap": laps, "observed": observed, "median": median, "q90": q90, "q10": q10}


def _curve_experiment(
    experiment_id: str,
    title: str,
    model_names: Sequence[str],
    config: ExperimentConfig,
    lap_lo: int = 26,
    lap_hi: int = 56,
) -> ExperimentResult:
    dataset = get_dataset(config)
    train, val, test = split_features(dataset.split("Indy500"), config)
    series = _pick_interesting_car(test, lap_lo, lap_hi)
    rows: List[dict] = []
    all_series: Dict[str, List[float]] = {}
    for name in model_names:
        model = train_model(name, config, train, val, cache_tag="indy500")
        curve = forecast_curve(
            model, series, lap_lo, lap_hi, config.decoder_length, config.n_samples
        )
        all_series[f"{name}_median"] = curve["median"]
        all_series[f"{name}_q90"] = curve["q90"]
        if "observed" not in all_series:
            all_series["lap"] = curve["lap"]
            all_series["observed"] = curve["observed"]
        err = np.abs(np.array(curve["median"]) - np.array(curve["observed"]))
        rows.append(
            {
                "model": name,
                "car_id": series.car_id,
                "window_mae": float(err.mean()),
                "window_max_error": float(err.max()),
                "coverage_q10_q90": float(
                    np.mean(
                        (np.array(curve["observed"]) <= np.array(curve["q90"]))
                        & (np.array(curve["observed"]) >= np.array(curve["q10"]))
                    )
                ),
            }
        )
    notes = f"series: two-lap-ahead forecasts for car {series.car_id} of {series.race_id}, laps {lap_lo}-{lap_hi}."
    return ExperimentResult(experiment_id, title, rows, series=all_series, notes=notes)


def fig2(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 2 — baseline forecasts around a pit stop."""
    config = config or active_config()
    return _curve_experiment(
        "Fig. 2", "Two-lap forecasts around a pit stop (baselines)", FIG2_MODELS, config
    )


def fig8(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 8 — RankNet / Transformer forecasts around a pit stop."""
    config = config or active_config()
    return _curve_experiment(
        "Fig. 8", "Two-lap forecasts around a pit stop (RankNet family)", FIG8_MODELS, config
    )
