"""Training-efficiency experiments: Fig. 10, Fig. 11 and Fig. 12.

These reproduce the systems part of the paper's evaluation: how the batch
size changes the training throughput on CPU / GPU / GPU-cuDNN / VE, where
the LSTM kernels sit on the CPU roofline, and how the work splits between
host, accelerator and data movement in the CPU+VE hybrid.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..profiling import (
    DEFAULT_PLATFORM,
    benchmark_kernels,
    device_training_speed,
    hybrid_breakdown,
    measure_cpu_training_speed,
    roofline_points,
)
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["fig10", "fig11", "fig12"]

_FIG10_BATCHES = (32, 64, 128, 256, 640, 1600, 3200)


def fig10(
    config: Optional[ExperimentConfig] = None,
    batch_sizes: Sequence[int] = _FIG10_BATCHES,
    measure_cpu: bool = True,
) -> ExperimentResult:
    """Fig. 10 — µs/sample vs batch size on the four platforms."""
    config = config or active_config()
    rows = []
    modelled = device_training_speed(batch_sizes=batch_sizes)
    for point in modelled:
        rows.append(
            {
                "device": point.device,
                "batch_size": point.batch_size,
                "us_per_sample": point.us_per_sample,
                "source": point.source,
            }
        )
    if measure_cpu:
        measured_batches = [b for b in batch_sizes if b <= 640] or [32]
        measured = measure_cpu_training_speed(
            batch_sizes=measured_batches,
            seq_len=min(config.encoder_length + config.decoder_length, 32),
            repeats=1,
        )
        for point in measured:
            rows.append(
                {
                    "device": point.device,
                    "batch_size": point.batch_size,
                    "us_per_sample": point.us_per_sample,
                    "source": point.source,
                }
            )
    notes = (
        "Expected shape (paper Fig. 10): µs/sample drops with batch size on every device; "
        "GPU with cuDNN-style fusion is fastest; the VE overtakes the CPU only at large batch."
    )
    return ExperimentResult("Fig. 10", "Impact of batch size on training speed", rows, notes=notes)


def fig11(
    config: Optional[ExperimentConfig] = None,
    batch_sizes: Sequence[int] = (32, 3200),
) -> ExperimentResult:
    """Fig. 11 — roofline chart of the RankNet LSTM kernels on CPU."""
    config = config or active_config()
    measurements = benchmark_kernels(batch_sizes=batch_sizes)
    points = roofline_points(measurements, DEFAULT_PLATFORM)
    rows = [
        {
            "kernel": p.kernel,
            "batch_size": p.batch_size,
            "arithmetic_intensity": p.arithmetic_intensity,
            "achieved_gflops": p.achieved_gflops,
            "roofline_bound_gflops": p.bound_gflops,
            "efficiency": p.efficiency,
        }
        for p in points
    ]
    notes = (
        f"platform: {DEFAULT_PLATFORM.name}; expected shape (paper Fig. 11): the batch-3200 "
        "points sit higher (and, for MatMul, further right) than the batch-32 points."
    )
    return ExperimentResult("Fig. 11", "Roofline chart of RankNet kernels", rows, notes=notes)


def fig12(
    config: Optional[ExperimentConfig] = None,
    batch_sizes: Sequence[int] = (32, 3200),
) -> ExperimentResult:
    """Fig. 12 — operation breakdown for the CPU+VE hybrid."""
    config = config or active_config()
    measurements = benchmark_kernels(batch_sizes=batch_sizes)
    entries = hybrid_breakdown(batch_sizes=batch_sizes, measurements=measurements)
    rows = [e.as_row() for e in entries]
    notes = (
        "Expected shape (paper Fig. 12): at batch 32 almost everything stays on the CPU "
        "(~7% offloaded); at batch 3200 roughly a third of the kernel work moves to the VE "
        "and data movement becomes visible."
    )
    return ExperimentResult("Fig. 12", "Operation breakdown for the CPU+VE hybrid", rows, notes=notes)
