"""Documentation-style experiments: Table I, Table III, Table VIII, Fig. 3, Fig. 5.

These artefacts of the paper describe the feature schema, the model
capability matrix, the hardware inventory, the pit-stop factor taxonomy and
the RankNet architecture.  They are regenerated from the code itself (so
they stay in sync with the implementation) rather than measured.
"""

from __future__ import annotations

from typing import Optional

from ..data.schema import BASE_COVARIATES, CONTEXT_COVARIATES, SHIFT_COVARIATES
from ..models.deep.rankmodel import RankSeqModel
from ..profiling.devices import TABLE8_SPECS
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["table1", "table3", "table8", "fig3", "fig5"]


def table1(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Table I — feature summary of the RankNet model."""
    rows = [
        {"group": "Race status X", "feature": "TrackStatus", "domain": "{0,1}",
         "description": "caution lap (yellow flag) indicator"},
        {"group": "Race status X", "feature": "LapStatus", "domain": "{0,1}",
         "description": "pit-stop lap indicator"},
        {"group": "Race status X", "feature": "CautionLaps", "domain": "N",
         "description": "caution laps since the car's last pit stop"},
        {"group": "Race status X", "feature": "PitAge", "domain": "N",
         "description": "laps since the car's last pit stop"},
        {"group": "Context (Fig.7)", "feature": "LeaderPitCount", "domain": "N",
         "description": "leading cars pitting on the lap"},
        {"group": "Context (Fig.7)", "feature": "TotalPitCount", "domain": "N",
         "description": "cars pitting on the lap"},
        {"group": "Shift (Fig.7)", "feature": "Shift*", "domain": "-",
         "description": "status features shifted decoder-length laps into the future"},
        {"group": "Rank Z", "feature": "Rank", "domain": "N",
         "description": "cars that completed the lap before this car"},
        {"group": "Rank Z", "feature": "LapTime", "domain": "R+",
         "description": "time used to complete the lap"},
        {"group": "Rank Z", "feature": "TimeBehindLeader", "domain": "R+",
         "description": "gap to the lap leader"},
    ]
    notes = (
        f"base covariates: {BASE_COVARIATES}; context: {CONTEXT_COVARIATES}; "
        f"shift: {SHIFT_COVARIATES}"
    )
    return ExperimentResult("Table I", "Features used in the RankNet model", rows, notes=notes)


def table3(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Table III — capability matrix of the compared forecasting models."""
    rows = [
        {"model": "RandomForest", "representation_learning": "N", "uncertainty": "N", "pit_model": "N"},
        {"model": "SVM", "representation_learning": "N", "uncertainty": "N", "pit_model": "N"},
        {"model": "XGBoost", "representation_learning": "N", "uncertainty": "N", "pit_model": "N"},
        {"model": "ARIMA", "representation_learning": "N", "uncertainty": "Y", "pit_model": "N"},
        {"model": "DeepAR", "representation_learning": "Y", "uncertainty": "Y", "pit_model": "N"},
        {"model": "RankNet-Joint", "representation_learning": "Y", "uncertainty": "Y", "pit_model": "Y (joint train)"},
        {"model": "RankNet-MLP", "representation_learning": "Y", "uncertainty": "Y", "pit_model": "Y (decomposition)"},
        {
            "model": "RankNet-Oracle",
            "representation_learning": "Y",
            "uncertainty": "Y",
            "pit_model": "Y (ground truth)",
        },
    ]
    return ExperimentResult("Table III", "Features of the rank position forecasting models", rows)


def table8(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Table VIII — hardware platforms (reproduced as analytic device models)."""
    rows = list(TABLE8_SPECS)
    notes = (
        "The GPU / Vector Engine are unavailable in this environment; "
        "repro.profiling.devices models them analytically (see DESIGN.md)."
    )
    return ExperimentResult("Table VIII", "Experiments hardware specification", rows, notes=notes)


def fig3(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 3 — taxonomy of the factors affecting pit stops."""
    rows = [
        {"category": "Resource constraints", "factor": "Fuel level / tire wear",
         "features": "PitAge, stint length bounded by the fuel window"},
        {"category": "Anomaly events", "factor": "Safety car, yellow flags, accidents",
         "features": "TrackStatus, CautionLaps, caution-pit opportunities"},
        {"category": "Human strategies", "factor": "Current lap & rank, team decisions",
         "features": "Rank, TotalPitCount, LeaderPitCount, historical data"},
    ]
    return ExperimentResult("Fig. 3", "Main factors affecting pit stop and their features", rows)


def fig5(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 5 — RankNet architecture summary (layer inventory, parameter count)."""
    config = config or active_config()
    model = RankSeqModel(
        num_covariates=9,
        hidden_dim=config.hidden_dim,
        num_layers=config.num_layers,
        encoder_length=config.encoder_length,
        decoder_length=config.decoder_length,
        rng=0,
    )
    rows = [
        {"component": "PitModel", "description": "MLP + Gaussian head forecasting the next pit lap",
         "inputs": "CautionLaps, PitAge, TrackStatus, Rank, TotalPitCount"},
        {"component": "RankModel encoder/decoder",
         "description": f"stacked {config.num_layers}-layer LSTM, {config.hidden_dim} units, shared weights",
         "inputs": "previous rank (scaled) + race-status covariates"},
        {"component": "Likelihood head", "description": "Gaussian (mu, softplus sigma) sampled 100x",
         "inputs": "LSTM hidden state"},
        {"component": "Parameters", "description": f"{model.num_parameters()} trainable scalars",
         "inputs": f"encoder length {config.encoder_length}, decoder length {config.decoder_length}"},
    ]
    notes = "The paper reports <30K parameters for the TensorFlow implementation."
    return ExperimentResult("Fig. 5", "RankNet architecture", rows, notes=notes)
