"""Table VII — generalisation to unseen races / events.

For each test race of the other events (Texas, Pocono, Iowa, plus the
Indy500 test year itself), the table reports the MAE improvement over
CurRank on the pit-stop-covered laps, for models trained on Indy500 data
(left half of the paper's table) and models trained on the same event
(right half).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..evaluation import LapSet, ShortTermEvaluator
from .common import get_dataset, split_features, train_model
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["table7", "DEFAULT_TABLE7_MODELS"]

#: models compared in Table VII
DEFAULT_TABLE7_MODELS = ["RankNet-MLP", "RandomForest", "RankNet-Joint", "Transformer-MLP"]


def _mae_improvement_over_currank(
    model, test_series, evaluator: ShortTermEvaluator
) -> float:
    """Relative MAE improvement over CurRank on pit-covered windows."""
    from ..models import CurRankForecaster

    result = evaluator.evaluate(model, test_series)
    baseline = evaluator.evaluate(CurRankForecaster(), test_series)
    model_mae = result.metrics[LapSet.PIT_COVERED.value]["mae"]
    base_mae = baseline.metrics[LapSet.PIT_COVERED.value]["mae"]
    if base_mae != base_mae or base_mae <= 0:  # NaN or degenerate
        return float("nan")
    return float((base_mae - model_mae) / base_mae)


def table7(
    config: Optional[ExperimentConfig] = None,
    models: Optional[Sequence[str]] = None,
    events: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Table VII — two-lap forecasting on other races, trained on Indy500 vs same event."""
    config = config or active_config()
    models = list(models) if models is not None else list(DEFAULT_TABLE7_MODELS)
    events = list(events) if events is not None else [e for e in config.events]
    dataset = get_dataset(config)
    evaluator = ShortTermEvaluator(
        horizon=config.decoder_length,
        n_samples=config.n_samples,
        origin_stride=config.origin_stride,
        min_history=config.min_history,
    )
    indy_train, indy_val, _ = split_features(dataset.split("Indy500"), config)

    rows: List[Dict[str, object]] = []
    for event in events:
        split = dataset.split(event)
        event_train, event_val, event_test = split_features(split, config)
        if not event_test:
            continue
        for test_race_year in sorted({s.year for s in event_test}):
            race_series = [s for s in event_test if s.year == test_race_year]
            row: Dict[str, object] = {"dataset": f"{event}-{test_race_year}"}
            for name in models:
                cross = train_model(name, config, indy_train, indy_val, cache_tag="indy500")
                row[f"{name}_by_indy500"] = _mae_improvement_over_currank(cross, race_series, evaluator)
                same = train_model(name, config, event_train, event_val, cache_tag=f"event:{event}")
                row[f"{name}_by_same_event"] = _mae_improvement_over_currank(same, race_series, evaluator)
            rows.append(row)
    notes = (
        "Values are relative MAE improvements over CurRank on pit-covered laps "
        "(positive = better than the naive baseline).  Expected shape (paper Table VII): "
        "RankNet-MLP keeps a positive improvement even on unseen events, while RandomForest "
        "degrades badly when transferred from Indy500."
    )
    return ExperimentResult("Table VII", "Two-lap forecasting on other races", rows, notes=notes)
