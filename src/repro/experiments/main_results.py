"""Headline accuracy experiments: Table V (short-term) and Table VI (stints).

Both tables train the full model zoo on the Indy500 training seasons,
validate on Indy500-2018 and evaluate on Indy500-2019, exactly mirroring
the paper's protocol (at reduced scale under the quick profile).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..evaluation import ShortTermEvaluator, StintEvaluator
from .common import TABLE5_MODELS, get_dataset, split_features, train_model
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["table5", "table6", "TABLE5_MODELS"]


def _indy500_features(config: ExperimentConfig):
    dataset = get_dataset(config)
    split = dataset.split("Indy500")
    return split_features(split, config)


def table5(
    config: Optional[ExperimentConfig] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Table V — short-term rank forecasting (prediction length 2) on Indy500 test year."""
    config = config or active_config()
    models = list(models) if models is not None else list(TABLE5_MODELS)
    train, val, test = _indy500_features(config)
    evaluator = ShortTermEvaluator(
        horizon=config.decoder_length,
        n_samples=config.n_samples,
        origin_stride=config.origin_stride,
        min_history=config.min_history,
    )
    rows: List[dict] = []
    for name in models:
        model = train_model(name, config, train, val, cache_tag="indy500")
        result = evaluator.evaluate(model, test)
        row = {"model": name}
        for lapset, prefix in (("all", "all"), ("normal", "normal"), ("pit_covered", "pit")):
            metrics = result.metrics[lapset]
            row[f"{prefix}_top1acc"] = metrics["top1_acc"]
            row[f"{prefix}_mae"] = metrics["mae"]
            row[f"{prefix}_risk50"] = metrics["risk50"]
            row[f"{prefix}_risk90"] = metrics["risk90"]
        rows.append(row)
    notes = (
        "Expected shape (paper Table V): CurRank is a strong naive baseline; the ML "
        "regressors and RankNet-Joint fail to beat it; RankNet-MLP improves MAE/Top1Acc "
        "over CurRank; RankNet-Oracle is the upper bound, with the gains concentrated "
        "on the pit-covered laps."
    )
    return ExperimentResult("Table V", "Short-term rank position forecasting", rows, notes=notes)


def table6(
    config: Optional[ExperimentConfig] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Table VI — rank-position change forecasting between consecutive pit stops."""
    config = config or active_config()
    models = list(models) if models is not None else list(TABLE5_MODELS)
    train, val, test = _indy500_features(config)
    evaluator = StintEvaluator(n_samples=config.n_samples, min_history=config.min_history)
    rows: List[dict] = []
    for name in models:
        model = train_model(name, config, train, val, cache_tag="indy500")
        result = evaluator.evaluate(model, test)
        rows.append(
            {
                "model": name,
                "sign_acc": result.metrics["sign_acc"],
                "mae": result.metrics["mae"],
                "risk50": result.metrics["risk50"],
                "risk90": result.metrics["risk90"],
                "num_stints": result.num_stints,
            }
        )
    notes = (
        "Expected shape (paper Table VI): CurRank cannot predict changes (lowest SignAcc); "
        "SVM is the best classical model; RankNet-MLP/Oracle achieve the best SignAcc and MAE."
    )
    return ExperimentResult("Table VI", "Rank position changes forecasting between pit stops", rows, notes=notes)
