"""Experiment harness regenerating every table and figure of the paper."""

from .ablation import OPTIMIZATION_STEPS, fig7
from .common import MODEL_BUILDERS, build_model, clear_caches, get_dataset, get_features, split_features, train_model
from .config import ExperimentConfig, active_config, full_config, quick_config
from .data_stats import fig1, fig4, fig6, table2, table4
from .efficiency import fig10, fig11, fig12
from .forecast_curves import fig2, fig8, forecast_curve
from .generalization import table7
from .main_results import TABLE5_MODELS, table5, table6
from .prediction_length import fig9
from .registry import EXPERIMENTS, list_experiments, run_experiment
from .result import ExperimentResult
from .static_tables import fig3, fig5, table1, table3, table8
from .strategy_sweep import strategy_sweep

__all__ = [
    "OPTIMIZATION_STEPS",
    "fig7",
    "MODEL_BUILDERS",
    "build_model",
    "clear_caches",
    "get_dataset",
    "get_features",
    "split_features",
    "train_model",
    "ExperimentConfig",
    "active_config",
    "full_config",
    "quick_config",
    "fig1",
    "fig4",
    "fig6",
    "table2",
    "table4",
    "fig10",
    "fig11",
    "fig12",
    "fig2",
    "fig8",
    "forecast_curve",
    "table7",
    "TABLE5_MODELS",
    "table5",
    "table6",
    "fig9",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "ExperimentResult",
    "fig3",
    "fig5",
    "table1",
    "table3",
    "table8",
    "strategy_sweep",
]
