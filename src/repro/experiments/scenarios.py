"""What-if scenario experiment: counterfactual racing via the scenario engine.

The paper motivates rank forecasting with the strategy questions it lets a
team ask; this experiment runs the question machinery itself
(:mod:`repro.scenarios`) as a registered experiment: a caution-hazard
sweep plus a small championship Monte-Carlo, tabulating how caution
frequency reshapes pit behaviour, lead changes and title odds.  Everything
derives from one base seed, so the table regenerates bit-identically.
"""

from __future__ import annotations

from typing import List, Optional

from ..scenarios import ScenarioEngine, parse_scenario
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["scenarios"]

_CAUTION_SWEEP = {
    "scenario": "exp-caution-sweep",
    "kind": "caution",
    "races": [{"event": "Indy500", "year": 2018}],
    "replicas": 3,
    "grid": {"caution_hazard_scale": [0.0, 1.0, 3.0]},
}

_SEASON = {
    "scenario": "exp-season",
    "kind": "season",
    "races": [
        {"event": "Indy500", "year": 2018},
        {"event": "Texas", "year": 2018},
        {"event": "Iowa", "year": 2018},
    ],
    "replicas": 3,
}


def scenarios(
    config: Optional[ExperimentConfig] = None,
    seed: int = 2021,
    replicas: Optional[int] = None,
) -> ExperimentResult:
    """Run the built-in caution sweep + championship Monte-Carlo."""
    config = config or active_config()
    engine = ScenarioEngine()
    rows: List[dict] = []

    sweep_doc = dict(_CAUTION_SWEEP)
    season_doc = dict(_SEASON)
    if replicas is not None:
        sweep_doc["replicas"] = int(replicas)
        season_doc["replicas"] = int(replicas)

    sweep_spec = parse_scenario(sweep_doc)
    _results, summary = engine.run(sweep_spec, seed)
    for row in summary.rows:
        rows.append({"scenario": sweep_spec.name, **row})

    season_spec = parse_scenario(season_doc)
    _results, season_summary = engine.run(season_spec, seed)
    champion = season_summary.standings[0] if season_summary.standings else {}
    notes = (
        f"season '{season_spec.name}': {season_summary.races} races x "
        f"{season_summary.replicas} replicas; champion car "
        f"{champion.get('car_id')} with {champion.get('mean_points')} mean points; "
        f"title odds {season_summary.champion_odds}"
    )
    return ExperimentResult(
        experiment_id="scenarios",
        title="What-if scenario engine: caution sweep and championship Monte-Carlo",
        rows=rows,
        notes=notes,
    )
