"""Rolling pit-strategy sweep over a race window (paper §VII application).

The paper's conclusion argues that a probabilistic rank forecaster "enables
racing strategy optimizations".  This experiment runs that application at
race scale: for a handful of mid-field cars of the Indy500 test year, every
(origin, pit-in-k) candidate of a rolling window of forecast origins is
evaluated through :meth:`repro.strategy.PitStrategyOptimizer.sweep` — one
carry-mode submit of the fused Monte-Carlo decode engine per car — and the
per-origin recommendation is tabulated together with the engine counters
that show the warm-up sharing and state carrying at work.
"""

from __future__ import annotations

from typing import List, Optional

from ..strategy import PitStrategyOptimizer
from .common import get_dataset, split_features, train_model
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["strategy_sweep"]


def strategy_sweep(
    config: Optional[ExperimentConfig] = None,
    n_cars: int = 3,
    n_origins: int = 8,
    horizon: int = 10,
    candidate_step: int = 2,
    n_samples: Optional[int] = None,
) -> ExperimentResult:
    """Rolling strategy sweeps for a few cars of the Indy500 test race."""
    config = config or active_config()
    train, val, test = split_features(get_dataset(config).split("Indy500"), config)
    model = train_model("RankNet-Oracle", config, train, val, cache_tag="indy500")
    optimizer = PitStrategyOptimizer(
        model, n_samples=n_samples if n_samples is not None else config.n_samples
    )
    engine = model.fleet_engine("carry")
    engine.reset_timings()

    # mid-field cars with room for a full window of rolling origins
    start = max(config.encoder_length, config.min_history + 1)
    candidates = [
        series for series in test if len(series) > start + n_origins + horizon + 1
    ]
    candidates.sort(key=lambda s: abs(float(s.rank[start]) - 10.0))
    rows: List[dict] = []
    for series in candidates[:n_cars]:
        origins = [start + i for i in range(n_origins)]
        points = optimizer.sweep(
            series, origins, horizon=horizon, earliest=1, step=candidate_step
        )
        for point in points:
            best = point.best
            rows.append(
                {
                    "car": series.car_id,
                    "origin": point.origin,
                    "current_rank": point.current_rank,
                    "candidates": len(point.outcomes),
                    "best_pit_in": best.pit_in_laps,
                    "expected_rank": best.expected_final_rank,
                    "p_gain": best.p_gain,
                    "uncertainty": best.rank_samples_std,
                }
            )
    stats = engine.stats
    timings = engine.timings
    notes = (
        "One carry-mode engine submit per car covers every (origin, pit-in-k) candidate: "
        f"{stats['warmup_shared']} of {stats['warmup_shared'] + stats['warmup_unique']} "
        "warm-ups were deduplicated across candidates and "
        f"{stats['cache_carries']} origin advances reused carried states "
        f"({stats['warmup_steps']} teacher-forcing steps total); "
        f"wall: warm-up {1e3 * timings['warmup_s']:.0f} ms, "
        f"decode {1e3 * timings['decode_s']:.0f} ms."
    )
    return ExperimentResult(
        "Strategy sweep",
        "Rolling pit-strategy optimisation over a race window",
        rows,
        notes=notes,
    )
