"""Experiment configuration profiles.

Every experiment module accepts an :class:`ExperimentConfig`.  Two presets
are provided:

* :func:`quick_config` — a laptop-scale profile (fewer seasons, shorter
  context, few epochs, strided forecast origins) so the complete benchmark
  suite regenerating every table and figure finishes in minutes.  This is
  the default used by ``benchmarks/`` and the test-suite.
* :func:`full_config` — the paper-scale profile (context length 60, all
  seasons of Table II, 100 Monte-Carlo samples, every forecast origin).
  Select it by exporting ``REPRO_PROFILE=full``.

The absolute metric values differ between profiles (and from the paper,
whose data is the real IndyCar telemetry); the *relative* ordering of the
models — the shape of each table/figure — is what the reproduction targets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

__all__ = ["ExperimentConfig", "quick_config", "full_config", "active_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the experiment harness."""

    profile: str = "quick"
    # dataset
    base_seed: int = 2021
    events: Sequence[str] = ("Indy500", "Iowa", "Pocono", "Texas")
    years_per_event: Optional[Dict[str, Sequence[int]]] = None
    # sequence model hyper-parameters (Table IV)
    encoder_length: int = 30
    decoder_length: int = 2
    hidden_dim: int = 40
    num_layers: int = 2
    epochs: int = 15
    batch_size: int = 64
    learning_rate: float = 3e-3
    rank_change_weight: float = 9.0
    max_train_windows: int = 3000
    # forecasting / evaluation
    n_samples: int = 30
    origin_stride: int = 5
    min_history: int = 10
    # ML baselines
    ml_origin_stride: int = 4
    ml_max_instances: int = 8000
    rf_estimators: int = 40
    gbm_estimators: int = 80
    # artifact caching: when set, fitted models are registered in an
    # ArtifactStore at this path and later runs load them instead of refitting
    artifacts_dir: Optional[str] = None
    # misc
    seed: int = 7

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


def quick_config() -> ExperimentConfig:
    """Small-but-meaningful profile used by default."""
    return ExperimentConfig(
        profile="quick",
        years_per_event={
            "Indy500": [2016, 2017, 2018, 2019],
            "Iowa": [2017, 2018, 2019],
            "Pocono": [2016, 2017, 2018],
            "Texas": [2016, 2017, 2018],
        },
        encoder_length=30,
        epochs=15,
        n_samples=30,
        origin_stride=5,
        max_train_windows=3000,
    )


def full_config() -> ExperimentConfig:
    """Paper-scale profile (Table IV): context 60, all seasons, 100 samples."""
    return ExperimentConfig(
        profile="full",
        years_per_event=None,  # every season of Table II
        encoder_length=60,
        epochs=40,
        learning_rate=1e-3,
        n_samples=100,
        origin_stride=1,
        max_train_windows=40000,
        ml_max_instances=30000,
        rf_estimators=100,
        gbm_estimators=200,
    )


def active_config() -> ExperimentConfig:
    """Profile selected via the ``REPRO_PROFILE`` environment variable."""
    if os.environ.get("REPRO_PROFILE", "quick").lower() == "full":
        return full_config()
    return quick_config()
