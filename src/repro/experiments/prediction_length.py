"""Fig. 9 — impact of the prediction length on forecasting performance.

For prediction lengths 2..8 laps, the figure reports each model's relative
MAE improvement over CurRank on the Indy500 test year (models worse than
CurRank are clipped at 0 in the paper's plot; we report the raw value).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


from ..evaluation import ShortTermEvaluator
from ..models import CurRankForecaster
from .common import get_dataset, split_features, train_model
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["fig9", "DEFAULT_FIG9_MODELS"]

DEFAULT_FIG9_MODELS = [
    "RankNet-Oracle",
    "Transformer-Oracle",
    "RankNet-MLP",
    "Transformer-MLP",
    "XGBoost",
    "RandomForest",
]


def fig9(
    config: Optional[ExperimentConfig] = None,
    models: Optional[Sequence[str]] = None,
    prediction_lengths: Sequence[int] = (2, 4, 6, 8),
) -> ExperimentResult:
    config = config or active_config()
    models = list(models) if models is not None else list(DEFAULT_FIG9_MODELS)
    dataset = get_dataset(config)
    train, val, test = split_features(dataset.split("Indy500"), config)

    rows: List[dict] = []
    series = {"prediction_length": [float(h) for h in prediction_lengths]}
    fitted = {name: train_model(name, config, train, val, cache_tag="indy500") for name in models}
    for horizon in prediction_lengths:
        evaluator = ShortTermEvaluator(
            horizon=int(horizon),
            n_samples=config.n_samples,
            origin_stride=max(config.origin_stride, 2),
            min_history=config.min_history,
        )
        base = evaluator.evaluate(CurRankForecaster(), test).metrics["all"]["mae"]
        row = {"prediction_length": int(horizon), "currank_mae": base}
        for name in models:
            result = evaluator.evaluate(fitted[name], test)
            model_mae = result.metrics["all"]["mae"]
            improvement = (base - model_mae) / base if base > 0 else float("nan")
            row[f"{name}_mae_improvement_pct"] = 100.0 * improvement
            series.setdefault(name, []).append(100.0 * improvement)
        rows.append(row)
    notes = (
        "Expected shape (paper Fig. 9): accuracy of every model degrades as the horizon grows, "
        "while RankNet-MLP/Oracle keep a consistent positive MAE improvement over CurRank "
        "and the LSTM backbone stays slightly ahead of the Transformer."
    )
    return ExperimentResult("Fig. 9", "Impact of prediction length", rows, series=series, notes=notes)
