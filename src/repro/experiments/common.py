"""Shared plumbing for the experiment modules.

Provides cached access to the simulated dataset, the per-car feature
series, and a model zoo builder so that the per-table experiment modules
stay small.  Caches are keyed by the experiment configuration so a single
process (e.g. one ``pytest benchmarks/`` run) generates each race and
trains each model at most once.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..artifacts import ArtifactStore, fingerprint_series
from ..data.features import CarFeatureSeries, build_race_features
from ..models import (
    ArimaForecaster,
    CurRankForecaster,
    DeepARForecaster,
    RandomForestForecaster,
    RankForecaster,
    RankNetForecaster,
    SVRForecaster,
    TransformerForecaster,
    XGBoostForecaster,
)
from ..simulation import DatasetSplit, RacingDataset, generate_dataset
from ..simulation.telemetry import RaceTelemetry
from .config import ExperimentConfig

__all__ = [
    "get_dataset",
    "get_features",
    "split_features",
    "build_model",
    "MODEL_BUILDERS",
    "train_model",
    "clear_caches",
]

_DATASET_CACHE: Dict[Tuple, RacingDataset] = {}
_FEATURE_CACHE: Dict[Tuple, List[CarFeatureSeries]] = {}
_MODEL_CACHE: Dict[Tuple, RankForecaster] = {}


def clear_caches() -> None:
    """Drop all cached datasets/features/models (mainly for tests)."""
    _DATASET_CACHE.clear()
    _FEATURE_CACHE.clear()
    _MODEL_CACHE.clear()


def _dataset_key(config: ExperimentConfig) -> Tuple:
    years = None
    if config.years_per_event is not None:
        years = tuple(sorted((k, tuple(v)) for k, v in config.years_per_event.items()))
    return (config.base_seed, tuple(config.events), years)


def get_dataset(config: ExperimentConfig) -> RacingDataset:
    key = _dataset_key(config)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_dataset(
            events=list(config.events),
            base_seed=config.base_seed,
            years_per_event={k: list(v) for k, v in config.years_per_event.items()}
            if config.years_per_event
            else None,
        )
    return _DATASET_CACHE[key]


def get_features(race: RaceTelemetry, decoder_length: int = 2) -> List[CarFeatureSeries]:
    key = (race.race_id, race.num_laps, len(race), decoder_length)
    if key not in _FEATURE_CACHE:
        _FEATURE_CACHE[key] = build_race_features(race, shift_lag=decoder_length)
    return _FEATURE_CACHE[key]


def split_features(
    split: DatasetSplit, config: ExperimentConfig
) -> Tuple[List[CarFeatureSeries], List[CarFeatureSeries], List[CarFeatureSeries]]:
    """(train, validation, test) feature series for one event split."""
    train = [s for race in split.train for s in get_features(race, config.decoder_length)]
    val = [s for race in split.validation for s in get_features(race, config.decoder_length)]
    test = [s for race in split.test for s in get_features(race, config.decoder_length)]
    return train, val, test


# ----------------------------------------------------------------------
# model zoo
# ----------------------------------------------------------------------
def _deep_kwargs(config: ExperimentConfig) -> dict:
    return dict(
        encoder_length=config.encoder_length,
        decoder_length=config.decoder_length,
        hidden_dim=config.hidden_dim,
        num_layers=config.num_layers,
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.learning_rate,
        rank_change_weight=config.rank_change_weight,
        max_train_windows=config.max_train_windows,
        seed=config.seed,
    )


def _ml_kwargs(config: ExperimentConfig) -> dict:
    return dict(
        origin_stride=config.ml_origin_stride,
        max_instances=config.ml_max_instances,
    )


MODEL_BUILDERS: Dict[str, Callable[[ExperimentConfig], RankForecaster]] = {
    "CurRank": lambda cfg: CurRankForecaster(),
    "ARIMA": lambda cfg: ArimaForecaster(seed=cfg.seed),
    "RandomForest": lambda cfg: RandomForestForecaster(
        n_estimators=cfg.rf_estimators, seed=cfg.seed, **_ml_kwargs(cfg)
    ),
    "SVM": lambda cfg: SVRForecaster(seed=cfg.seed, **_ml_kwargs(cfg)),
    "XGBoost": lambda cfg: XGBoostForecaster(
        n_estimators=cfg.gbm_estimators, seed=cfg.seed, **_ml_kwargs(cfg)
    ),
    "DeepAR": lambda cfg: DeepARForecaster(**_deep_kwargs(cfg)),
    "RankNet-Joint": lambda cfg: RankNetForecaster(variant="joint", **_deep_kwargs(cfg)),
    "RankNet-MLP": lambda cfg: RankNetForecaster(variant="mlp", **_deep_kwargs(cfg)),
    "RankNet-Oracle": lambda cfg: RankNetForecaster(variant="oracle", **_deep_kwargs(cfg)),
    "Transformer-MLP": lambda cfg: TransformerForecaster(
        variant="mlp", num_encoder_layers=1, **_deep_kwargs(cfg)
    ),
    "Transformer-Oracle": lambda cfg: TransformerForecaster(
        variant="oracle", num_encoder_layers=1, **_deep_kwargs(cfg)
    ),
}

#: the models reported in Table V / VI, in row order
TABLE5_MODELS = [
    "CurRank",
    "ARIMA",
    "RandomForest",
    "SVM",
    "XGBoost",
    "DeepAR",
    "RankNet-Joint",
    "RankNet-MLP",
    "RankNet-Oracle",
]


def build_model(name: str, config: ExperimentConfig) -> RankForecaster:
    try:
        return MODEL_BUILDERS[name](config)
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}") from exc


def _artifact_name(
    model: RankForecaster, fingerprint: str, cache_tag: str
) -> str:
    """Store key for a fitted model: family + config hash + data fingerprint."""
    name = ArtifactStore.key_for(type(model).__name__, model._artifact_config(), fingerprint)
    if cache_tag:
        name = f"{name}-{re.sub(r'[^A-Za-z0-9._-]', '-', cache_tag)}"
    return name


def train_model(
    name: str,
    config: ExperimentConfig,
    train_series: Sequence[CarFeatureSeries],
    val_series: Optional[Sequence[CarFeatureSeries]] = None,
    cache_tag: str = "",
) -> RankForecaster:
    """Build and fit a model, caching the fitted instance per (name, config, tag).

    With ``config.artifacts_dir`` set, the fitted model is additionally
    registered in an on-disk :class:`~repro.artifacts.ArtifactStore` keyed
    by model family, constructor-config hash and training-data fingerprint.
    Experiments sharing a fitted model — across processes, or across
    ``runner`` invocations — then load the artifact instead of refitting.
    """
    key = (name, config.profile, config.encoder_length, config.epochs, cache_tag)
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    model = build_model(name, config)
    store = ArtifactStore(config.artifacts_dir) if config.artifacts_dir else None
    artifact_name, fingerprint = "", ""
    if store is not None:
        fingerprint = fingerprint_series(train_series, extra=val_series)
        artifact_name = _artifact_name(model, fingerprint, cache_tag)
        if artifact_name in store:
            model = store.load_model(artifact_name)
            _MODEL_CACHE[key] = model
            return model
    model.fit(list(train_series), list(val_series) if val_series else None)
    if store is not None:
        store.save_model(artifact_name, model, data_fingerprint=fingerprint)
    _MODEL_CACHE[key] = model
    return model
