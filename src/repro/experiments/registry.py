"""Registry mapping experiment ids to their regeneration functions."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .ablation import fig7
from .config import ExperimentConfig
from .data_stats import fig1, fig4, fig6, table2, table4
from .efficiency import fig10, fig11, fig12
from .forecast_curves import fig2, fig8
from .generalization import table7
from .main_results import table5, table6
from .prediction_length import fig9
from .result import ExperimentResult
from .scenarios import scenarios
from .static_tables import fig3, fig5, table1, table3, table8
from .strategy_sweep import strategy_sweep

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "scenarios": scenarios,
    "strategy_sweep": strategy_sweep,
}


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(name: str, config: Optional[ExperimentConfig] = None, **kwargs) -> ExperimentResult:
    try:
        fn = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {name!r}; known: {list_experiments()}") from exc
    return fn(config, **kwargs) if config is not None else fn(**kwargs)
