"""Fig. 7 — step-by-step RankNet model optimisation (ablation study).

The paper tunes the basic RankNet in four steps on the validation year:

1. add larger loss weights for instances whose rank changes (optimum 9);
2. increase the context (encoder) length (optimum 60);
3. add the race-level context features (LeaderPitCount, TotalPitCount);
4. add the shift features (future race status at lap A+2).

This experiment re-runs the same ladder with oracle race-status covariates
(so the effect of each step is isolated from the PitModel) and reports the
validation-year MAE after each step.
"""

from __future__ import annotations

from typing import List, Optional

from ..data.schema import FeatureSpec
from ..evaluation import ShortTermEvaluator
from ..models import RankNetForecaster
from .common import get_dataset, split_features
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["fig7", "OPTIMIZATION_STEPS"]

OPTIMIZATION_STEPS = [
    "step0_basic",
    "step1_add_weights",
    "step2_longer_context",
    "step3_context_features",
    "step4_shift_features",
]


def _step_settings(config: ExperimentConfig):
    short_context = max(config.encoder_length * 2 // 3, config.decoder_length + 4)
    return {
        "step0_basic": dict(
            encoder_length=short_context, rank_change_weight=1.0,
            spec=FeatureSpec(use_context=False, use_shift=False),
        ),
        "step1_add_weights": dict(
            encoder_length=short_context, rank_change_weight=config.rank_change_weight,
            spec=FeatureSpec(use_context=False, use_shift=False),
        ),
        "step2_longer_context": dict(
            encoder_length=config.encoder_length, rank_change_weight=config.rank_change_weight,
            spec=FeatureSpec(use_context=False, use_shift=False),
        ),
        "step3_context_features": dict(
            encoder_length=config.encoder_length, rank_change_weight=config.rank_change_weight,
            spec=FeatureSpec(use_context=True, use_shift=False),
        ),
        "step4_shift_features": dict(
            encoder_length=config.encoder_length, rank_change_weight=config.rank_change_weight,
            spec=FeatureSpec(use_context=True, use_shift=True),
        ),
    }


def fig7(
    config: Optional[ExperimentConfig] = None,
    steps: Optional[List[str]] = None,
) -> ExperimentResult:
    config = config or active_config()
    steps = steps or list(OPTIMIZATION_STEPS)
    dataset = get_dataset(config)
    split = dataset.split("Indy500")
    train, val, test = split_features(split, config)
    # tune on the validation year (Indy500-2018), as in the paper
    eval_series = val if val else test
    evaluator = ShortTermEvaluator(
        horizon=config.decoder_length,
        n_samples=config.n_samples,
        origin_stride=config.origin_stride,
        min_history=config.min_history,
    )
    settings = _step_settings(config)
    rows = []
    for step in steps:
        setting = settings[step]
        model = RankNetForecaster(
            variant="oracle",
            feature_spec=setting["spec"],
            encoder_length=setting["encoder_length"],
            decoder_length=config.decoder_length,
            hidden_dim=config.hidden_dim,
            num_layers=config.num_layers,
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=config.learning_rate,
            rank_change_weight=setting["rank_change_weight"],
            max_train_windows=config.max_train_windows,
            seed=config.seed,
            name=f"RankNet-Oracle[{step}]",
        )
        model.fit(train, eval_series)
        result = evaluator.evaluate(model, eval_series)
        rows.append(
            {
                "step": step,
                "encoder_length": setting["encoder_length"],
                "loss_weight": setting["rank_change_weight"],
                "covariates": setting["spec"].num_covariates,
                "val_mae_all": result.metrics["all"]["mae"],
                "val_mae_pit": result.metrics["pit_covered"]["mae"],
                "val_top1acc": result.metrics["all"]["top1_acc"],
            }
        )
    notes = (
        "Expected shape (paper Fig. 7): each optimisation step improves (or at least does "
        "not hurt) the validation MAE, with the gains concentrated on pit-covered laps."
    )
    return ExperimentResult("Fig. 7", "RankNet model optimisation steps", rows, notes=notes)
