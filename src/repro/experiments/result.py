"""Common result container returned by every experiment module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..evaluation.report import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows (and optional named series) regenerating one table or figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, Sequence[float]] = field(default_factory=dict)
    notes: str = ""

    def to_text(self, digits: int = 3) -> str:
        parts = [format_table(self.rows, title=f"{self.experiment_id}: {self.title}", digits=digits)]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key_value: object) -> Dict[str, object]:
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise KeyError(f"no row with {key_column}={key_value!r}")
