"""Dataset-statistics experiments: Table II, Table IV, Fig. 1, Fig. 4, Fig. 6.

These experiments only need the simulated telemetry (no model training):
the dataset inventory, the windowed-dataset statistics, an example
rank/lap-time trajectory, the pit-stop analysis and the per-race data
distribution scatter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.stints import pit_statistics
from ..data.windows import make_windows
from .common import get_dataset, get_features, split_features
from .config import ExperimentConfig, active_config
from .result import ExperimentResult

__all__ = ["table2", "table4", "fig1", "fig4", "fig6"]


def table2(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Table II — summary of the (simulated) data sets."""
    config = config or active_config()
    dataset = get_dataset(config)
    rows = []
    for summary in dataset.summary_rows():
        rows.append(
            {
                "event": summary["event"],
                "years": ",".join(str(y) for y in summary["years"]),
                "track_length_mi": summary["track_length_mi"],
                "track_shape": summary["track_shape"],
                "total_laps": "/".join(str(l) for l in summary["total_laps"]),
                "participants": "-".join(str(p) for p in summary["participants"]),
                "records": summary["records"],
                "usage": f"{summary['train_races']} train / {summary['validation_races']} val"
                f" / {summary['test_races']} test",
            }
        )
    return ExperimentResult("Table II", "Summary of the data sets", rows)


def table4(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Table IV — dataset statistics and model hyper-parameters."""
    config = config or active_config()
    dataset = get_dataset(config)
    indy_split = dataset.split("Indy500")
    indy_train, _, _ = split_features(indy_split, config)
    all_train = []
    for event in config.events:
        train, _, _ = split_features(dataset.split(event), config)
        all_train.extend(train)
    indy_windows = make_windows(
        indy_train, encoder_length=config.encoder_length, decoder_length=config.decoder_length
    )
    all_windows = make_windows(
        all_train, encoder_length=config.encoder_length, decoder_length=config.decoder_length
    )
    rows = [
        {"parameter": "# of time series (Indy500 / all)", "value": f"{len(indy_train)} / {len(all_train)}"},
        {"parameter": "# of training examples (Indy500 / all)", "value": f"{len(indy_windows)} / {len(all_windows)}"},
        {"parameter": "granularity", "value": "lap"},
        {"parameter": "encoder length", "value": config.encoder_length},
        {"parameter": "decoder length", "value": config.decoder_length},
        {"parameter": "loss weight (rank-change instances)", "value": config.rank_change_weight},
        {"parameter": "batch size", "value": config.batch_size},
        {"parameter": "optimizer", "value": "ADAM"},
        {"parameter": "learning rate", "value": config.learning_rate},
        {"parameter": "LR decay factor", "value": 0.5},
        {"parameter": "# of LSTM layers", "value": config.num_layers},
        {"parameter": "# of LSTM nodes", "value": config.hidden_dim},
    ]
    return ExperimentResult("Table IV", "Dataset statistics and model parameters", rows)


def fig1(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 1 — telemetry example and the winner's rank / lap-time sequence."""
    config = config or active_config()
    dataset = get_dataset(config)
    split = dataset.split("Indy500")
    race = split.validation[0] if split.validation else split.train[-1]
    winner = race.winner()
    laps = race.car_laps(winner)
    # (a) a few raw records mid-race
    lap_examples = race.to_records()
    rows = [
        {
            "rank": r.rank, "car_id": r.car_id, "lap": r.lap,
            "lap_time": round(r.lap_time, 3),
            "time_behind_leader": round(r.time_behind_leader, 3),
            "lap_status": r.lap_status, "track_status": r.track_status,
        }
        for r in lap_examples
        if r.lap == 31
    ][:8]
    series = {
        "winner_rank": laps.rank.astype(float).tolist(),
        "winner_lap_time": laps.lap_time.tolist(),
        "winner_pit_laps": laps.laps[laps.is_pit].astype(float).tolist(),
        "winner_caution_laps": laps.laps[laps.is_caution].astype(float).tolist(),
    }
    notes = (
        f"race={race.race_id}, winner=car {winner}, pits={laps.num_pits}, "
        f"caution laps={int(laps.is_caution.sum())}"
    )
    return ExperimentResult("Fig. 1", "Telemetry example (records of lap 31; winner trajectory)",
                            rows, series=series, notes=notes)


def fig4(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 4 — pit-stop statistics: stint distributions, pit laps, rank changes.

    As in §III-A of the paper, the analysis uses the Indy500 races (the
    2.5-mile oval with the ~50-lap fuel window).
    """
    config = config or active_config()
    dataset = get_dataset(config)
    all_series = []
    for race in dataset.split("Indy500").all_races():
        all_series.extend(get_features(race, config.decoder_length))
    stats = pit_statistics(all_series)
    rows = []
    for kind in ("normal", "caution"):
        stints = stats[kind]["stint_lengths"]
        changes = stats[kind]["rank_changes"]
        pit_laps = stats[kind]["pit_laps"]
        rows.append(
            {
                "pit_type": kind,
                "num_pits": int(stints.size),
                "stint_mean": float(stints.mean()) if stints.size else float("nan"),
                "stint_std": float(stints.std()) if stints.size else float("nan"),
                "stint_max": int(stints.max()) if stints.size else 0,
                "rank_change_mean": float(changes.mean()) if changes.size else float("nan"),
                "rank_change_std": float(changes.std()) if changes.size else float("nan"),
                "pit_lap_spread": float(pit_laps.std()) if pit_laps.size else float("nan"),
            }
        )
    # histogram series for the four panels
    max_stint = 55
    series = {}
    for kind in ("normal", "caution"):
        stints = stats[kind]["stint_lengths"]
        hist, _ = np.histogram(stints, bins=np.arange(0, max_stint + 2))
        series[f"{kind}_stint_hist"] = (hist / max(hist.sum(), 1)).tolist()
        series[f"{kind}_stint_cdf"] = (np.cumsum(hist) / max(hist.sum(), 1)).tolist()
        changes = stats[kind]["rank_changes"]
        chist, _ = np.histogram(changes, bins=np.arange(-10, 31))
        series[f"{kind}_rank_change_hist"] = (chist / max(chist.sum(), 1)).tolist()
    notes = (
        "Expected shape (paper Fig. 4): normal-pit stints form a bell curve bounded by the "
        "fuel window; caution pits are more dispersed and cost fewer positions."
    )
    return ExperimentResult("Fig. 4", "Statistics and analysis of pit stops", rows, series=series, notes=notes)


def fig6(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Fig. 6 — per-race PitLapsRatio vs RankChangesRatio scatter."""
    config = config or active_config()
    dataset = get_dataset(config)
    rows = []
    for event in config.events:
        for race in dataset.split(event).all_races():
            rows.append(
                {
                    "event": event,
                    "year": race.year,
                    "pit_laps_ratio": race.pit_lap_ratio(),
                    "rank_changes_ratio": race.rank_changes_ratio(),
                    "caution_laps_ratio": race.caution_lap_ratio(),
                }
            )
    notes = "Indy500 should sit in the upper-right region (most dynamic event), as in the paper."
    return ExperimentResult("Fig. 6", "Data distribution of the IndyCar dataset", rows, notes=notes)
