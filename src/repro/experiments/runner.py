"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    repro-experiments table5                  # installed console script
    python -m repro.experiments.runner table5
    python -m repro.experiments.runner fig9 --profile full
    python -m repro.experiments.runner all --artifacts-dir artifacts/

With ``--artifacts-dir`` every fitted model is registered in an on-disk
:class:`~repro.artifacts.ArtifactStore`; experiments that share a fitted
model (Table V, Fig. 9, the strategy sweep, ...) — including later runner
invocations — load the artifact instead of refitting, which turns full
regenerations from train-every-time into train-once.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import full_config, quick_config
from .registry import list_experiments, run_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    parser.add_argument("experiment", help="experiment id (e.g. table5, fig9) or 'all'")
    parser.add_argument("--profile", choices=["quick", "full"], default="quick",
                        help="experiment scale (default: quick)")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR",
                        help="register fitted models in an artifact store at DIR "
                             "and reuse them instead of refitting")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(list_experiments()))
        return 0

    config = full_config() if args.profile == "full" else quick_config()
    if args.artifacts_dir:
        config = config.with_overrides(artifacts_dir=args.artifacts_dir)
    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name, config)
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
