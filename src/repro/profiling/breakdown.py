"""Operation / data-movement breakdown for the CPU+VE hybrid (Fig. 12).

The paper's Fig. 12 shows, for batch sizes 32 and 3200, how the training
wall time splits between

* MatMul + Mul on the CPU vs on the Vector Engine,
* Add + Sigmoid + Tanh on the CPU vs on the VE,
* other operations, and
* data movement between host and device.

At batch 32 only ~7% of the work is offloaded (the offload overhead
dominates), while at batch 3200 about 35% runs on the VE and the offload
pays off.  :func:`hybrid_breakdown` reproduces those fractions from the
measured CPU kernel times plus the analytic VE device model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .devices import DEVICES, DeviceModel
from .kernels import KernelMeasurement, benchmark_kernels

__all__ = ["BreakdownEntry", "cpu_kernel_shares", "hybrid_breakdown"]

_MATMUL_GROUP = ("MatMul", "Mul")
_ELEMENTWISE_GROUP = ("Add", "Sigmoid", "Tanh")
#: fraction of total training time spent outside the five LSTM kernels
#: (framework overhead, optimiser, data pipeline) — the paper reports the
#: five kernels account for "over 75%" of wall time on CPU.
_OTHER_SHARE = 0.25
#: number of invocations of each kernel per LSTM training step
#: (forward gate GEMMs + the backward GEMMs dominate, matching the paper's
#: observation that MatMul alone accounts for about half the wall time)
_CALLS_PER_STEP = {"MatMul": 6, "Mul": 6, "Add": 4, "Sigmoid": 3, "Tanh": 2}


@dataclass
class BreakdownEntry:
    batch_size: int
    component: str
    share: float

    def as_row(self) -> Dict[str, object]:
        return {"batch_size": self.batch_size, "component": self.component,
                "share_pct": round(100.0 * self.share, 1)}


def cpu_kernel_shares(measurements: Sequence[KernelMeasurement], batch_size: int) -> Dict[str, float]:
    """Relative CPU time share of the MatMul+Mul and Add+Sigmoid+Tanh groups."""
    rows = [m for m in measurements if m.batch_size == batch_size]
    if not rows:
        raise ValueError(f"no measurements for batch size {batch_size}")
    weighted = {m.kernel: m.us_per_call * _CALLS_PER_STEP.get(m.kernel, 1) for m in rows}
    total = sum(weighted.values())
    matmul = sum(v for k, v in weighted.items() if k in _MATMUL_GROUP)
    elem = sum(v for k, v in weighted.items() if k in _ELEMENTWISE_GROUP)
    kernel_share = 1.0 - _OTHER_SHARE
    return {
        "matmul_mul": kernel_share * matmul / total,
        "add_sigmoid_tanh": kernel_share * elem / total,
        "other": _OTHER_SHARE,
    }


def offload_fraction_for_batch(batch_size: int, device: DeviceModel) -> float:
    """Fraction of kernel work offloaded to the accelerator at a batch size.

    Mirrors the observation of the paper: ~7% at batch 32, ~35% at batch
    3200 for the VE — small batches cannot amortise the offload cost, so the
    runtime keeps most operations on the host.
    """
    full = device.offload_fraction
    # logistic ramp in log-batch space centred around batch ~500
    x = np.log2(max(batch_size, 1)) - np.log2(512)
    ramp = 1.0 / (1.0 + np.exp(-x))
    return float(full * (0.2 + 0.8 * ramp))


def hybrid_breakdown(
    batch_sizes: Sequence[int] = (32, 3200),
    device_name: str = "VE",
    measurements: Sequence[KernelMeasurement] | None = None,
) -> List[BreakdownEntry]:
    """Wall-time breakdown of the CPU+accelerator hybrid per batch size."""
    device = DEVICES[device_name]
    if measurements is None:
        measurements = benchmark_kernels(batch_sizes=batch_sizes)
    entries: List[BreakdownEntry] = []
    for batch in batch_sizes:
        shares = cpu_kernel_shares(measurements, batch)
        offload = offload_fraction_for_batch(batch, device)
        # offloaded work runs faster on the accelerator but adds data movement
        speedup = 3.0
        cpu_matmul = shares["matmul_mul"] * (1.0 - offload)
        acc_matmul = shares["matmul_mul"] * offload / speedup
        cpu_elem = shares["add_sigmoid_tanh"] * (1.0 - offload)
        acc_elem = shares["add_sigmoid_tanh"] * offload / speedup
        data_movement = shares["matmul_mul"] * offload * 0.35 + shares["add_sigmoid_tanh"] * offload * 0.35
        other = shares["other"]
        total = cpu_matmul + acc_matmul + cpu_elem + acc_elem + data_movement + other
        components = {
            "MatMul+Mul (CPU)": cpu_matmul,
            f"MatMul+Mul ({device_name})": acc_matmul,
            "Add+Sigmoid+Tanh (CPU)": cpu_elem,
            f"Add+Sigmoid+Tanh ({device_name})": acc_elem,
            "Other ops (CPU)": other,
            "Data movement": data_movement,
        }
        for name, value in components.items():
            entries.append(BreakdownEntry(batch_size=int(batch), component=name, share=value / total))
    return entries
