"""Scenario-engine benchmark: sweep throughput and streaming latency.

Completes the profiling picture for the what-if subsystem
(:mod:`repro.scenarios`): how fast does the engine burn through a
season-scale sweep, what does the HTTP boundary add, and how much sooner
does the streamed ``/v1/scenarios`` route deliver its *first* race than a
blocking response would deliver anything at all?

Three measurements on the shipped workload matrix
(``benchmarks/scenarios/matrix.yaml``):

* ``in-process``     — ``ScenarioEngine`` over a local ``ForecastService``:
  the floor;
* ``http streamed``  — the same matrix through ``POST /v1/scenarios``;
  with per-race chunked NDJSON the time-to-first-race stays near the
  single-race cost even as the sweep grows;
* ``simulate only``  — the raw simulation throughput (races/second) on a
  caution sweep without forecast scoring.

The two full-matrix paths also assert byte-identity of every per-race
document (same contract ``benchmarks/test_bench_scenarios.py`` gates).

Run as a module (``python -m repro.profiling.scenarios``); the
``bench-scenarios`` Makefile target does exactly that.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..artifacts import ArtifactStore
from ..evaluation.report import format_table
from ..scenarios import ScenarioEngine, parse_scenario
from ..scenarios.runner import load_workload
from ..serving import ForecastClient, ForecastService
from ..serving.server import ForecastServer, ServerConfig
from .server import build_serving_fixture

__all__ = ["ScenarioMeasurement", "scenario_benchmark", "SIM_SWEEP"]

MATRIX = os.path.join("benchmarks", "scenarios", "matrix.yaml")

#: the sim-only throughput workload: one caution sweep, no model scoring
SIM_SWEEP = {
    "scenario": "bench-sim-sweep",
    "kind": "caution",
    "races": [{"event": "Indy500", "year": 2018}],
    "replicas": 4,
    "grid": {"caution_hazard_scale": [0.5, 1.0, 2.0]},
}


@dataclass
class ScenarioMeasurement:
    """Wall-clock of one scenario path on the shared workload."""

    path: str
    races: int
    wall_s: float
    first_result_s: float

    def as_row(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "races": self.races,
            "wall_s": round(self.wall_s, 4),
            "first_result_s": round(self.first_result_s, 4),
            "races_per_s": round(self.races / self.wall_s, 2) if self.wall_s else None,
        }


def _run_in_process(engine: ScenarioEngine, specs, seed: int):
    documents: List[dict] = []
    start = time.perf_counter()
    first = None
    for _path, _doc, spec in specs:
        for item in engine.run_iter(spec, seed):
            if first is None:
                first = time.perf_counter() - start
            if hasattr(item, "winner"):
                documents.append(item.to_doc())
    return documents, time.perf_counter() - start, first


def _run_http(client: ForecastClient, specs, seed: int):
    documents: List[dict] = []
    start = time.perf_counter()
    first = None
    for _path, document, _spec in specs:
        for kind, payload in client.run_scenario_iter(document, seed=seed):
            if kind == "race":
                if first is None:
                    first = time.perf_counter() - start
                documents.append(payload.to_doc())
    return documents, time.perf_counter() - start, first


def scenario_benchmark(
    matrix: str = MATRIX, seed: int = 2021
) -> Tuple[List[ScenarioMeasurement], bool]:
    """Measure the three paths; returns the rows and the byte-identity verdict."""
    measurements: List[ScenarioMeasurement] = []

    # sim-only throughput
    engine = ScenarioEngine()
    sim_spec = parse_scenario(SIM_SWEEP)
    start = time.perf_counter()
    results, _summary = engine.run(sim_spec, seed)
    wall = time.perf_counter() - start
    measurements.append(
        ScenarioMeasurement("simulate only", len(results), wall, wall / max(len(results), 1))
    )

    with tempfile.TemporaryDirectory() as root:
        store = os.path.join(root, "store")
        build_serving_fixture(store)
        specs = load_workload(matrix)

        service_engine = ScenarioEngine.from_service(ForecastService(ArtifactStore(store)))
        local_docs, wall, first = _run_in_process(service_engine, specs, seed)
        measurements.append(
            ScenarioMeasurement("in-process", len(local_docs), wall, first or wall)
        )

        config = ServerConfig(store=store, port=0, batch_window_ms=1.0)
        with ForecastServer(config) as server:
            client = ForecastClient(port=server.port)
            http_docs, wall, first = _run_http(client, specs, seed)
        measurements.append(
            ScenarioMeasurement("http streamed", len(http_docs), wall, first or wall)
        )

    return measurements, local_docs == http_docs


def main() -> int:
    from .report import write_bench_json

    measurements, identical = scenario_benchmark()
    rows = [m.as_row() for m in measurements]
    print(
        format_table(
            rows,
            title="Scenario engine: sweep throughput and streaming latency",
        )
    )
    baseline_s = rows[0]["wall_s"] if rows else 0.0
    for row in rows:
        row["workload"] = row["path"]
        row["wall_ms"] = round(1e3 * row["wall_s"], 2)
        row["speedup"] = round(baseline_s / row["wall_s"], 2) if row["wall_s"] else None
    print(f"\nin-process vs http per-race documents byte-identical: {identical}")
    print(f"wrote {write_bench_json('scenarios', rows, extra={'byte_identical': identical})}")
    return 0 if identical else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
