"""Machine-readable sidecars for the profiling runners.

Every ``python -m repro.profiling.<runner>`` invocation prints a
human-readable table; this module gives each of them a uniform JSON
sidecar — ``BENCH_<name>.json`` — written next to the text results in
``benchmarks/results/`` so CI (and cross-host comparisons) can consume
the numbers without screen-scraping the tables.

A sidecar document has three parts:

* ``bench`` / ``generated_at`` — which runner produced it and when;
* ``host`` — a fingerprint of the machine (platform, python, numpy,
  CPU count) so numbers from different hosts are never compared blind;
* ``rows`` — the runner's measurement rows, verbatim (each row carries
  its workload label, wall-clock milliseconds and speedup columns).

The output directory resolves, in order: the ``REPRO_BENCH_DIR``
environment variable, an existing ``benchmarks/results/`` under the
current directory, else the current directory itself.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional

import numpy as np

__all__ = ["bench_output_dir", "host_fingerprint", "write_bench_json"]


def host_fingerprint() -> Dict[str, object]:
    """Identity of the measuring host, recorded alongside every sidecar."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def bench_output_dir() -> str:
    """Where ``BENCH_<name>.json`` sidecars land (see module docstring)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        os.makedirs(override, exist_ok=True)
        return override
    candidate = os.path.join(os.getcwd(), "benchmarks", "results")
    if os.path.isdir(candidate):
        return candidate
    return os.getcwd()


def write_bench_json(
    name: str,
    rows: List[Dict[str, object]],
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``rows`` is the runner's list of measurement dicts (``as_row()``
    output); ``extra`` merges runner-specific metadata (model shape,
    repeat count, gate outcomes) into the top level of the document.
    """
    document: Dict[str, object] = {
        "bench": name,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": host_fingerprint(),
        "rows": rows,
    }
    if extra:
        document.update(extra)
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp_path, path)
    return path
