"""Continuous-learning loop benchmark: per-stage wall clock + loop gates.

Times every stage of the :mod:`repro.learning` loop in-process on a tiny
synthetic workload — accumulate, window, retrain, kill+resume, shadow
evaluation, promote/rollback — and re-asserts the two determinism gates
while it is at it:

* **bit-exact resume** — an interrupted-then-resumed retraining job's
  artifact ``sha256`` equals an uninterrupted run's;
* **byte-identical rollback** — after promote + rollback, forecasting
  through the ``champion`` alias reproduces the pre-promotion champion's
  samples bitwise.

Run as a module (``python -m repro.profiling.learning``); the
``bench-learn`` Makefile target does exactly that.  Writes
``BENCH_learning.json`` next to the other profiling sidecars.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import replace
from typing import Dict, List

import numpy as np

from ..artifacts import ArtifactStore
from ..evaluation.report import format_table
from ..learning import (
    PromotionManager,
    RetrainJob,
    ShadowEvaluator,
    TelemetryAccumulator,
)
from ..simulation import RaceSimulator, track_for_year

__all__ = ["learning_benchmark"]

TINY = {
    "encoder_length": 12,
    "decoder_length": 2,
    "hidden_dim": 8,
    "num_layers": 1,
    "epochs": 2,
    "batch_size": 32,
    "max_train_windows": 120,
}

ALIAS = "champion"


def _timed(rows: List[Dict[str, object]], stage: str, fn, **detail):
    start = time.perf_counter()
    result = fn()
    wall_ms = round(1e3 * (time.perf_counter() - start), 2)
    rows.append({"stage": stage, "wall_ms": wall_ms, **detail})
    return result


def _batch(forecaster, series, model: str):
    from ..serving.client import ForecastClient

    return [
        ForecastClient.request(
            model,
            forecaster._history_target(series, 20 + i),
            forecaster._history_covariates(series, 20 + i),
            forecaster._future_covariates(series, 20 + i, 2),
            n_samples=7,
            rng=11 + i,
            key=(series.race_id, series.car_id),
            origin=20 + i,
        )
        for i in range(3)
    ]


def learning_benchmark(root: str):
    """Run the loop once; returns (rows, gates)."""
    from ..serving import ForecastService

    rows: List[Dict[str, object]] = []
    acc = TelemetryAccumulator(os.path.join(root, "accumulator"))
    store = ArtifactStore(os.path.join(root, "store"))

    def _accumulate():
        track = replace(track_for_year("Indy500", 2018), total_laps=45, num_cars=8)
        for seed in (3, 4, 5):
            race = RaceSimulator(track, event="Indy500", year=2019, seed=seed).run()
            acc.add_race(race, source=f"bench(seed={seed})")

    _timed(rows, "accumulate", _accumulate, races=3)
    window = _timed(rows, "window", lambda: acc.build_window(holdout=1), holdout=1)

    def _retrain(name, seed, job_dir=None, stop_after=None, resume=False):
        return RetrainJob(
            store, acc, window.window_id, name,
            family="deepar", config={**TINY, "seed": seed},
            job_dir=job_dir, resume=resume,
        ).run(stop_after_epochs=stop_after)

    _timed(rows, "retrain champion", lambda: _retrain("champ", 5), epochs=TINY["epochs"])
    job_dir = os.path.join(root, "job-a")
    _timed(
        rows, "retrain candidate (killed)",
        lambda: _retrain("cand-a", 6, job_dir=job_dir, stop_after=1),
        epochs=1,
    )
    resumed = _timed(
        rows, "retrain candidate (resumed)",
        lambda: _retrain("cand-a", 6, job_dir=job_dir, resume=True),
        epochs=TINY["epochs"],
    )
    uninterrupted = _retrain("cand-b", 6, job_dir=os.path.join(root, "job-b"))
    bit_exact = resumed["sha256"] == uninterrupted["sha256"]

    report = _timed(
        rows, "shadow eval",
        lambda: ShadowEvaluator(store, n_samples=20, stride=6).evaluate(
            "cand-a", "champ", window.holdout_races(), seed=7
        ),
        samples=20,
    )

    # promote/rollback byte-identity over the in-process service
    service = ForecastService(store, capacity=4)
    manager = PromotionManager(store)
    series = window.holdout_series()[0]
    champ = store.load_model("champ")
    manager.promote(ALIAS, "champ", note="bench bootstrap")
    baseline = service.submit(_batch(champ, series, ALIAS))
    _timed(
        rows, "promote",
        lambda: manager.promote(ALIAS, "cand-a", note="bench winner"),
    )
    service.submit(_batch(champ, series, ALIAS))  # alias now serves the candidate
    _timed(rows, "rollback", lambda: manager.rollback(ALIAS))
    after = service.submit(_batch(champ, series, ALIAS))
    rollback_identical = all(
        np.array_equal(a, b) for a, b in zip(after, baseline)
    )

    gates = {
        "bit_exact_resume": bool(bit_exact),
        "rollback_byte_identical": bool(rollback_identical),
        "shadow_recommend": bool(report.recommend),
        "shadow_mae_delta": report.deltas["mae"],
    }
    return rows, gates


def main() -> int:
    from .report import write_bench_json

    with tempfile.TemporaryDirectory() as root:
        rows, gates = learning_benchmark(root)
    print(format_table(rows, title="Continuous-learning loop: stage timings"))
    print(f"\nbit-exact resume: {gates['bit_exact_resume']}")
    print(f"rollback byte-identical: {gates['rollback_byte_identical']}")
    print(
        f"shadow mae delta: {gates['shadow_mae_delta']:+.4f} "
        f"(recommend={gates['shadow_recommend']})"
    )
    print(f"wrote {write_bench_json('learning', rows, extra=gates)}")
    return 0 if gates["bit_exact_resume"] and gates["rollback_byte_identical"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
