"""LSTM kernel micro-benchmarks (§IV-J of the paper).

The paper identifies the kernel operations of an LSTM cell — matrix
multiplication (MatMul), element-wise product (Mul), Add, Sigmoid and Tanh —
and shows that MatMul alone accounts for about half of the training wall
time on CPU, with the five kernels together above 75%.  This module times
exactly those kernels at the shapes RankNet uses (``batch_size x feature``
inputs against ``feature x 4*hidden`` weights) and reports both the wall
time and the arithmetic-intensity quantities needed for the roofline chart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["KernelSpec", "KernelMeasurement", "LSTM_KERNELS", "kernel_workload", "benchmark_kernels"]

#: the kernel names highlighted in Fig. 11 / Fig. 12
LSTM_KERNELS = ("MatMul", "Mul", "Add", "Sigmoid", "Tanh")


@dataclass(frozen=True)
class KernelSpec:
    """Shape description of one LSTM training step."""

    batch_size: int
    input_dim: int = 40
    hidden_dim: int = 40

    @property
    def gate_dim(self) -> int:
        return 4 * self.hidden_dim


@dataclass
class KernelMeasurement:
    """Timing and work counters for one kernel at one batch size."""

    kernel: str
    batch_size: int
    flops: float
    bytes: float
    seconds: float
    repeats: int

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte (the x-axis of the roofline chart)."""
        return self.flops / self.bytes if self.bytes else float("inf")

    @property
    def gflops(self) -> float:
        """Achieved giga-operations per second (the y-axis of the roofline chart)."""
        if self.seconds <= 0:
            return float("inf")
        return self.flops * self.repeats / self.seconds / 1e9

    @property
    def us_per_call(self) -> float:
        return self.seconds / self.repeats * 1e6


def kernel_workload(kernel: str, spec: KernelSpec) -> Dict[str, float]:
    """FLOPs and bytes moved for one invocation of ``kernel`` at ``spec``.

    MatMul is the concatenated-gate GEMM ``(B, I+H) @ (I+H, 4H)``; the
    element-wise kernels operate on ``(B, 4H)`` (gate activations) or
    ``(B, H)`` (cell state updates) — we use the gate-sized arrays, matching
    the dominant calls inside an LSTM cell.
    """
    b = spec.batch_size
    k = spec.input_dim + spec.hidden_dim
    n = spec.gate_dim
    if kernel == "MatMul":
        flops = 2.0 * b * k * n
        bytes_moved = 8.0 * (b * k + k * n + b * n)
    elif kernel in ("Mul", "Add"):
        flops = 1.0 * b * n
        bytes_moved = 8.0 * 3 * b * n
    elif kernel in ("Sigmoid", "Tanh"):
        # transcendental: count ~10 ops per element (exp + divisions)
        flops = 10.0 * b * n
        bytes_moved = 8.0 * 2 * b * n
    else:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {LSTM_KERNELS}")
    return {"flops": flops, "bytes": bytes_moved}


def _run_kernel(kernel: str, spec: KernelSpec, rng: np.random.Generator):
    b = spec.batch_size
    k = spec.input_dim + spec.hidden_dim
    n = spec.gate_dim
    if kernel == "MatMul":
        x = rng.standard_normal((b, k))
        w = rng.standard_normal((k, n))
        return lambda: x @ w
    a = rng.standard_normal((b, n))
    c = rng.standard_normal((b, n))
    if kernel == "Mul":
        return lambda: a * c
    if kernel == "Add":
        return lambda: a + c
    if kernel == "Sigmoid":
        # plain logistic kernel (what an optimised framework kernel computes);
        # the numerically-hardened repro.nn.activations.sigmoid is not used
        # here because its masking would distort the micro-benchmark
        return lambda: 1.0 / (1.0 + np.exp(-a))
    if kernel == "Tanh":
        return lambda: np.tanh(a)
    raise ValueError(f"unknown kernel {kernel!r}")


def benchmark_kernels(
    batch_sizes: Sequence[int] = (32, 3200),
    kernels: Sequence[str] = LSTM_KERNELS,
    input_dim: int = 40,
    hidden_dim: int = 40,
    min_repeats: int = 5,
    target_seconds: float = 0.05,
    seed: int = 0,
) -> List[KernelMeasurement]:
    """Measure each kernel at each batch size on the local CPU."""
    rng = np.random.default_rng(seed)
    results: List[KernelMeasurement] = []
    for batch in batch_sizes:
        spec = KernelSpec(batch_size=int(batch), input_dim=input_dim, hidden_dim=hidden_dim)
        for kernel in kernels:
            work = kernel_workload(kernel, spec)
            fn = _run_kernel(kernel, spec, rng)
            fn()  # warm up
            # choose a repeat count that gives a stable measurement
            t0 = time.perf_counter()
            fn()
            single = max(time.perf_counter() - t0, 1e-7)
            repeats = max(min_repeats, int(target_seconds / single))
            t0 = time.perf_counter()
            for _ in range(repeats):
                fn()
            elapsed = time.perf_counter() - t0
            results.append(
                KernelMeasurement(
                    kernel=kernel,
                    batch_size=int(batch),
                    flops=work["flops"],
                    bytes=work["bytes"],
                    seconds=elapsed,
                    repeats=repeats,
                )
            )
    return results
