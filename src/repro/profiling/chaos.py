"""Chaos harness for the serving tier (``make bench-chaos`` / ``make chaos``).

Runs the real ``repro-serve`` **subprocess** under a deterministic fault
schedule and gates three resilience guarantees end to end:

1. **Retry byte-identity** — a forecast issued through a retrying client
   while the gateway injects a 5xx, drops a response after executing it,
   and delays the follow-up (plus a client-side connection drop) must be
   bitwise equal to the fault-free run, with the server-side idempotency
   cache deduplicating the re-executed attempt.
2. **Crash recovery** — the gateway is SIGKILLed mid-session and
   restarted on the same store; it must rebuild the live session from its
   write-ahead journal, replay a re-posted duplicate lap identically, and
   produce byte-identical forecasts for every remaining lap (reference:
   the in-process :class:`~repro.simulation.live.LiveRaceForecaster`).
3. **Bounded overload** — concurrent callers past the admission bound are
   shed with structured ``429 overloaded`` envelopes; retrying clients
   must all complete, and no call may exceed the latency ceiling.

The ``workers`` profile (``make chaos-workers``) runs the same server
with ``workers: true`` — every model a supervised forked subprocess — and
gates the worker-pool guarantees instead:

4. **Worker-kill failover** — the replica serving a live session is
   SIGKILLed mid-race by a server-side ``kill_worker`` fault; the
   supervisor restarts it, replays the session journal into the fresh
   process, and the streamed forecasts stay bitwise equal to an
   uncrashed in-process run.
5. **Hang detection** — a ``hang_worker`` fault SIGSTOPs the replica; the
   heartbeat deadline escalates to SIGKILL, and a retrying client's
   forecast through the restart window is byte-identical to the
   in-process submission.

Exit status is non-zero when any gate fails::

    python -m repro.profiling.chaos --dir /tmp/repro-chaos
    python -m repro.profiling.chaos --dir /tmp/repro-chaos --profile workers
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import List, Optional, Tuple

import numpy as np

from ..artifacts import ArtifactStore
from ..serving.client import ForecastClient, LiveSessionClient
from ..serving.faults import FaultPlan, FaultSpec
from ..serving.journal import JOURNAL_SUFFIX, journal_dir
from ..serving.resilience import RetryPolicy
from ..serving.smoke import (
    _SESSION,
    MODEL_NAME,
    _fit_store,
    _named_batch,
    _spawn_server,
)
from ..serving.service import ForecastService
from ..simulation.live import LiveRaceForecaster

#: lap at which the gateway is SIGKILLed (inside the emitting window)
KILL_AT_LAP = 20

#: server-side schedule for gate 1; request ordinal 0 is the fault-free
#: reference, the retried call then walks straight through the gauntlet
FAULT_PLAN = {
    "faults": [
        {"kind": "error", "route": "POST /v1/forecast", "at": 1, "status": 503},
        {"kind": "drop", "route": "POST /v1/forecast", "at": 2, "when": "after"},
        {"kind": "delay", "route": "POST /v1/forecast", "at": 3, "delay_s": 0.05},
    ]
}

#: schedule for the ``workers`` profile: SIGKILL the model's replica just
#: before the lap-``KILL_AT_LAP`` post dispatches (lap posts are the only
#: requests matching ``/lap$``, and laps start at 1, so the 0-based
#: ordinal is ``KILL_AT_LAP - 1``), then SIGSTOP the respawned replica
#: before the first ``/v1/forecast`` of the hang gate
WORKER_FAULT_PLAN = {
    "faults": [
        {
            "kind": "kill_worker",
            "route": r"/lap$",
            "at": KILL_AT_LAP - 1,
            "model": MODEL_NAME,
        },
        {"kind": "hang_worker", "route": r"POST /v1/forecast", "at": 0, "model": MODEL_NAME},
    ]
}

RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.05, max_delay_s=0.5, seed=0)

#: ceiling for any single overloaded call, retries included (seconds)
OVERLOAD_LATENCY_CEILING_S = 30.0


def _write_config(directory: str) -> str:
    path = os.path.join(directory, "chaos-serve.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "store": ".",
                "port": 0,
                "preload": [MODEL_NAME],
                "batch_window_ms": 2.0,
                "max_inflight": 1,
                "fault_plan": FAULT_PLAN,
            },
            fh,
        )
    return path


def _write_worker_config(directory: str) -> str:
    path = os.path.join(directory, "chaos-workers-serve.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "store": ".",
                "port": 0,
                "preload": [MODEL_NAME],
                "batch_window_ms": 2.0,
                "workers": True,
                "heartbeat_interval_s": 0.1,
                "heartbeat_timeout_s": 1.0,
                "worker_backoff_s": 0.05,
                "worker_restart_budget": 5,
                "fault_plan": WORKER_FAULT_PLAN,
            },
            fh,
        )
    return path


def _spawn(config_path: str):
    process, port = _spawn_server(config_path)
    # keep the merged stdout/stderr pipe drained so a chatty gateway can
    # never block on a full pipe buffer mid-gate
    threading.Thread(target=process.stdout.read, daemon=True).start()
    return process, port


def _emissions_equal(
    got: List[Tuple[int, dict]], expected: List[Tuple[int, dict]]
) -> bool:
    if [origin for origin, _ in got] != [origin for origin, _ in expected]:
        return False
    for (_, got_cars), (_, expected_cars) in zip(got, expected):
        if set(got_cars) != set(expected_cars):
            return False
        for car_id in got_cars:
            if not np.array_equal(got_cars[car_id], expected_cars[car_id]):
                return False
    return True


def _gate_retry_identity(directory: str, port: int, series) -> bool:
    """Gate 1: faulted-and-retried forecast == fault-free forecast, bitwise."""
    forecaster = ForecastService(ArtifactStore(directory)).load(MODEL_NAME).forecaster
    batch = _named_batch(forecaster, series)

    clean_client = ForecastClient(port=port)  # no retry: ordinal 0 is clean
    reference = clean_client.forecast(batch)

    chaos_client = ForecastClient(
        port=port,
        retry=RETRY,
        faults=FaultPlan([FaultSpec(kind="drop", route=r"POST /v1/forecast", at=0)]),
    )
    faulted = chaos_client.forecast(batch)

    if len(faulted) != len(reference) or any(
        not np.array_equal(got, expected) for got, expected in zip(faulted, reference)
    ):
        print("FAIL: retried forecast under faults differs from the fault-free run")
        return False
    hits = clean_client.health()["idempotency"]["hits"]
    if hits < 1:
        print(f"FAIL: expected the dropped response to be deduped (hits={hits})")
        return False
    print(
        f"OK: client drop + injected 503 + dropped response + delay retried to "
        f"{len(reference)} bitwise-equal forecasts (idempotency hits={hits})"
    )
    return True


def _gate_crash_recovery(directory: str, config_path: str, process, port: int, race):
    """Gate 2: SIGKILL mid-session, restart, journal-recovered byte-identity.

    Returns ``(ok, process, port)`` — the caller owns the restarted server.
    """
    client = ForecastClient(port=port, retry=RETRY)
    session = client.open_session(
        MODEL_NAME, event=race.event, year=race.year, delay=4, **_SESSION
    )
    streamed: List[Tuple[int, dict]] = []
    laps = dict(race.iter_laps())
    kill_response: List[Tuple[int, dict]] = []
    for lap in sorted(laps):
        if lap > KILL_AT_LAP:
            break
        kill_response = session.lap(lap, laps[lap])
        streamed.extend(kill_response)

    process.kill()  # SIGKILL: no drain, no journal close, no goodbye
    process.wait()
    print(f"OK: gateway SIGKILLed after lap {KILL_AT_LAP} acknowledged")

    process, port = _spawn(config_path)
    revived = ForecastClient(port=port, retry=RETRY)
    health = revived.health()
    if health.get("sessions_recovered") != 1 or health.get("recovery_errors"):
        print(f"FAIL: restarted gateway did not recover the session: {health}")
        return False, process, port

    resumed = LiveSessionClient(revived, session.session_id)
    # an unsure client re-posts the lap it never saw acknowledged: the
    # journal-recovered session must replay it without re-advancing state
    replayed = resumed.lap(KILL_AT_LAP, laps[KILL_AT_LAP])
    if not _emissions_equal(replayed, kill_response):
        print("FAIL: duplicate lap replay differs from the pre-crash response")
        return False, process, port
    for lap in sorted(laps):
        if lap > KILL_AT_LAP:
            streamed.extend(resumed.lap(lap, laps[lap]))
    streamed.extend(resumed.close())

    live = LiveRaceForecaster(
        ArtifactStore(directory).load_model(MODEL_NAME),
        horizon=_SESSION["horizon"],
        n_samples=_SESSION["n_samples"],
        min_history=_SESSION["min_history"],
        rng=_SESSION["rng"],
    )
    reference = list(live.stream(race, start=_SESSION["start"], stop=_SESSION["stop"]))
    if not _emissions_equal(streamed, reference):
        print("FAIL: recovered session forecasts differ from the in-process stream")
        return False, process, port

    leftovers = [
        name
        for name in os.listdir(journal_dir(directory))
        if name.endswith(JOURNAL_SUFFIX)
    ]
    if leftovers:
        print(f"FAIL: clean close left journals behind: {leftovers}")
        return False, process, port
    cars = sum(len(forecasts) for _, forecasts in streamed)
    print(
        f"OK: journal recovery stitched {len(streamed)} origins ({cars} "
        f"car-forecasts) byte-identically across the SIGKILL"
    )
    return True, process, port


def _gate_bounded_overload(directory: str, port: int, series, workers: int) -> bool:
    """Gate 3: concurrent callers past ``max_inflight=1`` all finish, bounded."""
    forecaster = ForecastService(ArtifactStore(directory)).load(MODEL_NAME).forecaster
    batch = _named_batch(forecaster, series)
    latencies: List[Optional[float]] = [None] * workers
    errors: List[Optional[str]] = [None] * workers

    def call(index: int) -> None:
        client = ForecastClient(
            port=port,
            retry=RetryPolicy(
                max_attempts=10, base_delay_s=0.05, max_delay_s=1.0, seed=index
            ),
        )
        started = time.monotonic()
        try:
            client.forecast(batch)
            latencies[index] = time.monotonic() - started
        except Exception as exc:  # noqa: BLE001 - gate reports, then fails
            errors[index] = f"{type(exc).__name__}: {exc}"

    threads = [threading.Thread(target=call, args=(i,)) for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    failed = [error for error in errors if error]
    if failed:
        print(f"FAIL: {len(failed)}/{workers} overloaded calls never completed: {failed[0]}")
        return False
    worst = max(latency for latency in latencies if latency is not None)
    if worst > OVERLOAD_LATENCY_CEILING_S:
        print(f"FAIL: overload tail latency {worst:.2f}s exceeds the ceiling")
        return False
    rejected = ForecastClient(port=port).health()["admission"]["rejected"]
    if rejected < 1:
        print(f"FAIL: admission control never shed load (rejected={rejected})")
        return False
    print(
        f"OK: {workers} concurrent callers vs max_inflight=1 all completed "
        f"(rejected={rejected} shed, worst latency {worst:.2f}s <= "
        f"{OVERLOAD_LATENCY_CEILING_S:.0f}s)"
    )
    return True


def _worker_entry(client: ForecastClient):
    health = client.health()
    entry = next(
        (w for w in health.get("workers", []) if w["model"] == MODEL_NAME), None
    )
    return entry, health


def _gate_worker_kill_failover(directory: str, port: int, race) -> bool:
    """Gate 4: a SIGKILLed replica's live session fails over byte-identically."""
    client = ForecastClient(port=port, retry=RETRY)
    entry, _ = _worker_entry(client)
    if entry is None or entry["state"] != "live":
        print(f"FAIL: worker-mode gateway reports no live replica: {entry}")
        return False
    pid_before = entry["pid"]

    session = client.open_session(
        MODEL_NAME, event=race.event, year=race.year, delay=4, **_SESSION
    )
    streamed: List[Tuple[int, dict]] = []
    for lap, records in race.iter_laps():
        streamed.extend(session.lap(lap, records))
    streamed.extend(session.close())

    live = LiveRaceForecaster(
        ArtifactStore(directory).load_model(MODEL_NAME),
        horizon=_SESSION["horizon"],
        n_samples=_SESSION["n_samples"],
        min_history=_SESSION["min_history"],
        rng=_SESSION["rng"],
    )
    reference = list(live.stream(race, start=_SESSION["start"], stop=_SESSION["stop"]))
    if not _emissions_equal(streamed, reference):
        print("FAIL: session forecasts across the worker kill differ from the clean run")
        return False

    entry, health = _worker_entry(client)
    if entry is None or entry["state"] != "live" or entry["restarts"] < 1:
        print(f"FAIL: the killed replica never restarted: {entry}")
        return False
    if entry["pid"] == pid_before:
        print(f"FAIL: replica pid {pid_before} survived its own SIGKILL")
        return False
    if health.get("sessions_recovered", 0) < 1 or health.get("recovery_errors"):
        print(f"FAIL: the live session was not journal-failed-over: {health}")
        return False
    leftovers = [
        name
        for name in os.listdir(journal_dir(directory))
        if name.endswith(JOURNAL_SUFFIX)
    ]
    if leftovers:
        print(f"FAIL: clean close left journals behind: {leftovers}")
        return False
    cars = sum(len(forecasts) for _, forecasts in streamed)
    print(
        f"OK: worker SIGKILLed at lap {KILL_AT_LAP} (pid {pid_before} -> "
        f"{entry['pid']}), session failed over and streamed {len(streamed)} "
        f"origins ({cars} car-forecasts) byte-identically"
    )
    return True


def _gate_worker_hang_heartbeat(directory: str, port: int, series) -> bool:
    """Gate 5: a SIGSTOPped replica misses heartbeats, is killed, and recovers."""
    service = ForecastService(ArtifactStore(directory))
    forecaster = service.load(MODEL_NAME).forecaster
    reference = service.submit(_named_batch(forecaster, series))

    client = ForecastClient(port=port, retry=RETRY)
    got = client.forecast(_named_batch(forecaster, series))  # ordinal 0: SIGSTOP lands
    if len(got) != len(reference) or any(
        not np.array_equal(got_one, expected)
        for got_one, expected in zip(got, reference)
    ):
        print("FAIL: forecast through the hang window differs from in-process submit")
        return False
    entry, health = _worker_entry(client)
    kills = (health.get("worker_pool") or {}).get("heartbeat_kills", 0)
    if kills < 1:
        print(f"FAIL: the heartbeat monitor never killed the hung replica: {health}")
        return False
    if entry is None or entry["state"] != "live":
        print(f"FAIL: the hung replica never came back: {entry}")
        return False
    print(
        f"OK: SIGSTOPped replica missed its heartbeat deadline, was killed "
        f"(heartbeat_kills={kills}) and the retried forecast returned "
        f"{len(got)} bitwise-equal results"
    )
    return True


def _run_core(args, race, series) -> int:
    config_path = _write_config(args.dir)
    print("starting repro-serve under the fault plan...", flush=True)
    process, port = _spawn(config_path)
    try:
        if not _gate_retry_identity(args.dir, port, series[0]):
            return 1
        ok, process, port = _gate_crash_recovery(
            args.dir, config_path, process, port, race
        )
        if not ok:
            return 1
        if not _gate_bounded_overload(args.dir, port, series[0], args.overload_workers):
            return 1
        print("chaos harness: all gates passed")
        return 0
    finally:
        process.kill()
        process.wait()


def _run_workers(args, race, series) -> int:
    config_path = _write_worker_config(args.dir)
    print("starting repro-serve with a supervised worker pool...", flush=True)
    process, port = _spawn(config_path)
    try:
        if not _gate_worker_kill_failover(args.dir, port, race):
            return 1
        if not _gate_worker_hang_heartbeat(args.dir, port, series[0]):
            return 1
        print("chaos harness (workers profile): all gates passed")
        return 0
    finally:
        process.kill()
        process.wait()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Serving-tier chaos harness")
    parser.add_argument("--dir", required=True, help="scratch directory for store + config")
    parser.add_argument(
        "--profile",
        choices=("core", "workers"),
        default="core",
        help="gate set: 'core' (retry/crash/overload) or 'workers' "
        "(worker-kill failover + hang detection); default core",
    )
    parser.add_argument(
        "--overload-workers",
        type=int,
        default=6,
        help="concurrent callers for the overload gate (default 6)",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.dir, exist_ok=True)

    print("fitting the chaos model into a scratch artifact store...", flush=True)
    start = time.perf_counter()
    race, series = _fit_store(args.dir)
    if args.profile == "workers":
        rc = _run_workers(args, race, series)
    else:
        rc = _run_core(args, race, series)
    from .report import write_bench_json

    wall_ms = round(1e3 * (time.perf_counter() - start), 2)
    rows = [
        {
            "workload": f"chaos-{args.profile}",
            "wall_ms": wall_ms,
            "speedup": None,
            "passed": rc == 0,
        }
    ]
    print(f"wrote {write_bench_json(f'chaos_{args.profile}', rows)}")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
