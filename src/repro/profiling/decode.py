"""Decode-path breakdown: stepwise reference vs. the fused block-RNG engine.

Completes the serving-side profiling picture: :mod:`repro.profiling.inference`
measures fleet batching against the per-car loop, this module measures the
two decode engines *inside* the fleet path on identical workloads:

* ``stepwise`` — the retained per-lap reference loop (one ``stack.step``
  per lap, per-step ``np.repeat`` covariate rows, nested per-dim /
  per-request ``standard_normal`` calls);
* ``fused`` — the block-RNG, allocation-free engine (``step_decode``
  kernels with preallocated gate/state buffers, one ``standard_normal``
  call per RNG stream, hoisted ``(horizon, total, C)`` covariates).

The two are byte-identical (gated in ``benchmarks/test_bench_decode.py``);
this module reports where the wall-clock goes.  Three workload shapes are
profiled: the Table V fleet (33 cars x 100 samples, horizon 2), the same
fleet at the Fig. 9 long horizon, and a strategy-sweep shape (hundreds of
candidate requests with few samples each) where the deleted Python-level
loops matter most.  On a single-core BLAS-bound host the Table V shape is
dominated by the (shared) recurrent GEMMs and dense transcendentals, so
the fused gain is modest there and grows with horizon and request count —
see the measured table for the split.

Run as a module (``python -m repro.profiling.decode``) to print the table;
the ``bench-decode`` Makefile target and the CI bench-smoke job do exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..models.deep.rankmodel import RankSeqModel
from ..serving.engine import FleetForecaster
from ..serving.requests import ForecastRequest, spawn_request_rngs

__all__ = ["DecodeMeasurement", "decode_breakdown", "DECODE_WORKLOADS"]

#: (label, n_requests, n_samples, horizon) — the profiled workload shapes
DECODE_WORKLOADS: Tuple[Tuple[str, int, int, int], ...] = (
    ("tableV 33x100 h2", 33, 100, 2),
    ("fig9   33x100 h10", 33, 100, 10),
    ("sweep  462x5  h10", 462, 5, 10),
)


@dataclass
class DecodeMeasurement:
    """Wall-clock of one decode strategy on one workload shape."""

    workload: str
    decode: str
    warmup_ms: float
    decode_ms: float
    trajectories: int
    speedup_vs_stepwise: float

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "decode": self.decode,
            "warmup_ms": round(self.warmup_ms, 2),
            "decode_ms": round(self.decode_ms, 2),
            "trajectories": self.trajectories,
            "speedup_vs_stepwise": round(self.speedup_vs_stepwise, 2),
        }


def _build_workload(n_requests: int, horizon: int, encoder_length: int,
                    num_covariates: int, n_origins: int, seed: int):
    rng = np.random.default_rng(seed)
    n_laps = encoder_length + n_origins + horizon + 1
    targets = [
        np.clip(10.0 + np.cumsum(rng.normal(0.0, 0.8, n_laps)), 1.0, 33.0)
        for _ in range(n_requests)
    ]
    covariates = [rng.normal(size=(n_laps, num_covariates)) for _ in range(n_requests)]
    return targets, covariates


def decode_breakdown(
    encoder_length: int = 60,
    hidden_dim: int = 40,
    num_layers: int = 2,
    num_covariates: int = 9,
    n_origins: int = 2,
    backbone: str = "lstm",
    repeats: int = 3,
    workloads: Optional[Tuple[Tuple[str, int, int, int], ...]] = None,
    seed: int = 0,
) -> List[DecodeMeasurement]:
    """Measure both decode engines on the profiled workload shapes.

    Each (workload, decode) pair is timed ``repeats`` times interleaved and
    the median is reported, so slow-host noise cancels out of the ratios.
    The warm-up column is the same work for both engines (it runs on the
    shared ``forward_sequence`` path) and is excluded from the speedup.
    """
    measurements: List[DecodeMeasurement] = []
    for label, n_requests, n_samples, horizon in workloads or DECODE_WORKLOADS:
        model = RankSeqModel(
            num_covariates=num_covariates,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            encoder_length=encoder_length,
            decoder_length=horizon,
            rng=seed,
            backbone=backbone,
        )
        targets, covariates = _build_workload(
            n_requests, horizon, encoder_length, num_covariates, n_origins, seed
        )
        origins = [encoder_length + i for i in range(n_origins)]
        future = np.zeros((horizon, num_covariates))

        def run(decode: str) -> Tuple[float, float]:
            engine = FleetForecaster(model, mode="exact", decode=decode)
            streams = spawn_request_rngs(
                np.random.default_rng(seed + 1), n_requests * n_origins
            )
            for j, origin in enumerate(origins):
                engine.submit(
                    [
                        ForecastRequest(
                            targets[c][origin + 1 - encoder_length : origin + 1],
                            covariates[c][origin + 1 - encoder_length : origin + 1],
                            future,
                            n_samples=n_samples,
                            rng=streams[j * n_requests + c],
                            key=c,
                            origin=origin,
                        )
                        for c in range(n_requests)
                    ]
                )
            timings = engine.timings
            return timings["warmup_s"], timings["decode_s"]

        run("fused")  # warm the BLAS pools / allocator once
        samples: Dict[str, List[Tuple[float, float]]] = {"stepwise": [], "fused": []}
        for _ in range(repeats):
            samples["stepwise"].append(run("stepwise"))
            samples["fused"].append(run("fused"))
        medians = {
            name: (
                float(np.median([w for w, _ in reps])),
                float(np.median([d for _, d in reps])),
            )
            for name, reps in samples.items()
        }
        stepwise_decode = medians["stepwise"][1]
        trajectories = n_requests * n_samples * n_origins
        for name in ("stepwise", "fused"):
            warmup_s, decode_s = medians[name]
            measurements.append(
                DecodeMeasurement(
                    workload=label,
                    decode=name,
                    warmup_ms=1e3 * warmup_s,
                    decode_ms=1e3 * decode_s,
                    trajectories=trajectories,
                    speedup_vs_stepwise=stepwise_decode / max(decode_s, 1e-12),
                )
            )
    return measurements


def _main() -> None:  # pragma: no cover - exercised by the CI bench smoke job
    from .report import write_bench_json

    rows = [
        {**m.as_row(), "wall_ms": round(m.decode_ms, 2), "speedup": round(m.speedup_vs_stepwise, 2)}
        for m in decode_breakdown()
    ]
    print("Decode breakdown (2x40 LSTM, encoder 60; decode phase only, median of 3)")
    print(f"{'workload':<20}{'decode':<10}{'warmup_ms':>11}{'decode_ms':>11}{'speedup':>9}")
    for row in rows:
        print(
            f"{row['workload']:<20}{row['decode']:<10}{row['warmup_ms']:>11.1f}"
            f"{row['decode_ms']:>11.1f}{row['speedup_vs_stepwise']:>9.2f}"
        )
    print(f"wrote {write_bench_json('decode', rows)}")


if __name__ == "__main__":  # pragma: no cover
    _main()
