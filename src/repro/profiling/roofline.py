"""Roofline model of the RankNet LSTM kernels (Fig. 11).

The roofline chart plots, for each kernel, its *arithmetic intensity*
(operations per byte moved) against its achieved throughput, bounded above
by the platform's compute peaks and by each memory level's bandwidth times
the intensity.  The paper uses the chart to explain why large-batch
training is faster: the batch-32 kernels sit far down the memory-bound
slopes, while at batch 3200 the same kernels move up and to the right
(higher intensity for the GEMM, much higher achieved GOPS for every
kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .kernels import KernelMeasurement, KernelSpec, LSTM_KERNELS, kernel_workload

__all__ = ["RooflinePlatform", "RooflinePoint", "DEFAULT_PLATFORM", "roofline_points", "attainable_gflops"]


@dataclass(frozen=True)
class RooflinePlatform:
    """Compute peaks and bandwidths defining the roofline envelope."""

    name: str
    scalar_peak_gflops: float
    vector_peak_gflops: float
    bandwidths_gbs: Dict[str, float]  # e.g. {"DRAM": 60, "L3": 250, "L2": 800}

    def rooflines(self, intensities: Sequence[float]) -> Dict[str, np.ndarray]:
        """Attainable GFLOP/s for each memory level over a grid of intensities."""
        x = np.asarray(list(intensities), dtype=np.float64)
        out: Dict[str, np.ndarray] = {}
        for level, bw in self.bandwidths_gbs.items():
            out[level] = np.minimum(self.vector_peak_gflops, bw * x)
        return out


#: A Xeon-class platform consistent with the CPU row of Table VIII.
DEFAULT_PLATFORM = RooflinePlatform(
    name="Intel Xeon E5-2670 v3",
    scalar_peak_gflops=37.0,
    vector_peak_gflops=590.0,
    bandwidths_gbs={"DRAM": 68.0, "L3": 250.0, "L2": 850.0},
)


def attainable_gflops(platform: RooflinePlatform, intensity: float, level: str = "DRAM") -> float:
    """Roofline bound for a kernel of the given arithmetic intensity."""
    bw = platform.bandwidths_gbs[level]
    return float(min(platform.vector_peak_gflops, bw * intensity))


@dataclass
class RooflinePoint:
    """One kernel plotted on the roofline chart."""

    kernel: str
    batch_size: int
    arithmetic_intensity: float
    achieved_gflops: float
    bound_gflops: float

    @property
    def efficiency(self) -> float:
        """Achieved throughput as a fraction of the roofline bound."""
        if self.bound_gflops <= 0:
            return 0.0
        return min(self.achieved_gflops / self.bound_gflops, 1.0)


def roofline_points(
    measurements: Sequence[KernelMeasurement],
    platform: RooflinePlatform = DEFAULT_PLATFORM,
    level: str = "DRAM",
) -> List[RooflinePoint]:
    """Convert kernel measurements into roofline chart points."""
    points: List[RooflinePoint] = []
    for m in measurements:
        ai = m.arithmetic_intensity
        points.append(
            RooflinePoint(
                kernel=m.kernel,
                batch_size=m.batch_size,
                arithmetic_intensity=ai,
                achieved_gflops=m.gflops,
                bound_gflops=attainable_gflops(platform, ai, level=level),
            )
        )
    return points


def analytic_intensities(batch_sizes: Sequence[int], input_dim: int = 40, hidden_dim: int = 40) -> List[dict]:
    """Model-predicted arithmetic intensity per kernel and batch size.

    Useful to show the *why* of Fig. 11 without timing anything: the GEMM's
    intensity grows with the batch size (the weight matrix is reused across
    the batch) while the element-wise kernels stay at a constant, low
    intensity.
    """
    rows = []
    for batch in batch_sizes:
        spec = KernelSpec(batch_size=int(batch), input_dim=input_dim, hidden_dim=hidden_dim)
        for kernel in LSTM_KERNELS:
            work = kernel_workload(kernel, spec)
            rows.append(
                {
                    "kernel": kernel,
                    "batch_size": int(batch),
                    "arithmetic_intensity": work["flops"] / work["bytes"],
                }
            )
    return rows
