"""Training-path breakdown: stepwise BPTT vs. the fused sequence engine.

Mirrors :mod:`repro.profiling.inference` for the other half of the
pipeline: Algorithm 1 training epochs on a synthetic Table IV-style
workload are timed on three paths

* ``stepwise`` — the original one-lap-at-a-time loop over
  ``LSTMCell.step`` / ``step_backward`` (kept on the model as
  ``_forward_loss_stepwise``);
* ``fused`` — the full-sequence engine (``forward_sequence`` /
  ``backward_sequence`` + fused Gaussian head + vectorised NLL);
* ``fused-eval`` — the cache-free validation pass (forward only, no BPTT
  tensors), timed against the stepwise forward for the validation-loop
  saving.

Run as a module (``python -m repro.profiling.training``) to print the
table; the ``bench-train`` Makefile target and the CI bench-smoke job do
exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..models.deep.rankmodel import RankSeqModel

__all__ = ["TrainingMeasurement", "training_breakdown", "synthetic_batches"]


@dataclass
class TrainingMeasurement:
    """Wall-clock of one training strategy over the synthetic epoch."""

    strategy: str
    wall_s: float
    instances: int
    speedup_vs_stepwise: float

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "wall_ms": round(1e3 * self.wall_s, 2),
            "instances": self.instances,
            "instances_per_s": round(self.instances / max(self.wall_s, 1e-12), 1),
            "speedup_vs_stepwise": round(self.speedup_vs_stepwise, 2),
        }


def synthetic_batches(
    n_batches: int,
    batch_size: int,
    total_len: int,
    num_covariates: int,
    rng: np.random.Generator,
) -> List[Dict[str, np.ndarray]]:
    """Random-walk rank windows shaped like the Table IV training batches."""
    batches = []
    for _ in range(n_batches):
        steps = rng.normal(0.0, 0.8, size=(batch_size, total_len))
        target = np.clip(10.0 + np.cumsum(steps, axis=1), 1.0, 33.0)
        batches.append(
            {
                "target": target,
                "covariates": rng.normal(size=(batch_size, total_len, num_covariates)),
                "weight": np.where(rng.random(batch_size) < 0.3, 9.0, 1.0),
            }
        )
    return batches


def training_breakdown(
    n_batches: int = 4,
    batch_size: int = 64,
    encoder_length: int = 60,
    decoder_length: int = 2,
    hidden_dim: int = 40,
    num_layers: int = 2,
    num_covariates: int = 9,
    backbone: str = "lstm",
    seed: int = 0,
) -> List[TrainingMeasurement]:
    """Measure the three training strategies on one synthetic epoch.

    Defaults follow the Table IV configuration: a 2-layer, 40-unit LSTM
    over 60-lap context windows with a 2-lap decoder.
    """
    rng = np.random.default_rng(seed)
    total_len = encoder_length + decoder_length
    batches = synthetic_batches(n_batches, batch_size, total_len, num_covariates, rng)
    model = RankSeqModel(
        num_covariates=num_covariates,
        hidden_dim=hidden_dim,
        num_layers=num_layers,
        encoder_length=encoder_length,
        decoder_length=decoder_length,
        rng=seed,
        backbone=backbone,
    )
    model.eval()
    instances = n_batches * batch_size

    def run_stepwise() -> float:
        t0 = time.perf_counter()
        for batch in batches:
            model.zero_grad()
            model._forward_loss_stepwise(batch, with_backward=True)
        return time.perf_counter() - t0

    def run_fused() -> float:
        t0 = time.perf_counter()
        for batch in batches:
            model.zero_grad()
            model.loss_and_backward(batch)
        return time.perf_counter() - t0

    def run_fused_eval() -> float:
        t0 = time.perf_counter()
        for batch in batches:
            model.validation_loss(batch)
        return time.perf_counter() - t0

    # warm-up once so BLAS thread pools / allocators do not skew the timing
    model.zero_grad()
    model.loss_and_backward(batches[0])
    model.zero_grad()

    stepwise_s = run_stepwise()
    timings = [
        ("stepwise", stepwise_s),
        ("fused", run_fused()),
        ("fused-eval", run_fused_eval()),
    ]
    return [
        TrainingMeasurement(
            strategy=name,
            wall_s=wall,
            instances=instances,
            speedup_vs_stepwise=stepwise_s / max(wall, 1e-12),
        )
        for name, wall in timings
    ]


def _main() -> None:  # pragma: no cover - exercised by the CI bench smoke job
    from .report import write_bench_json

    rows = [
        {**m.as_row(), "workload": m.strategy, "speedup": round(m.speedup_vs_stepwise, 2)}
        for m in training_breakdown()
    ]
    header = f"{'strategy':<12}{'wall_ms':>10}{'inst/s':>10}{'speedup':>9}"
    print("Training breakdown (Table IV config: 2x40 LSTM, encoder 60, decoder 2)")
    print(header)
    for row in rows:
        print(
            f"{row['strategy']:<12}{row['wall_ms']:>10.1f}"
            f"{row['instances_per_s']:>10.1f}{row['speedup_vs_stepwise']:>9.2f}"
        )
    print(f"wrote {write_bench_json('training', rows)}")


if __name__ == "__main__":  # pragma: no cover
    _main()
