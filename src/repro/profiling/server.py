"""Serving-gateway benchmark: HTTP overhead and cross-client micro-batching.

Completes the serving-side profiling picture one layer up from
:mod:`repro.profiling.decode`: how much does the *process boundary* cost,
and how much of the fleet engine's batching throughput does the
micro-batch scheduler win back for concurrent single-request clients?

Four paths are measured on one identical workload (same seeded requests,
so every path returns byte-identical samples):

* ``direct batched``    — one in-process ``ForecastService.submit`` of the
  whole batch: the floor the wire API is measured against;
* ``direct sequential`` — one in-process submit per request: what a naive
  per-connection server would do to the engine;
* ``http sequential``   — one HTTP round trip per request from a single
  client (micro-batch window 0): boundary overhead on top of the above;
* ``http N clients``    — N concurrent clients posting single-request
  bodies while the scheduler coalesces them into shared fleet passes, at
  several collection windows.

On this single-core host the coalesced path recovers most of the direct
sequential/batched gap (see ``benchmarks/results/serving.txt``); the gate
in ``benchmarks/test_bench_serving.py`` holds conservative floors of those
measurements.

Run as a module (``python -m repro.profiling.server``) to print the
table; the ``bench-serve`` Makefile target does exactly that.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..artifacts import ArtifactStore
from ..data.features import build_race_features
from ..models import DeepARForecaster
from ..serving import ForecastClient, ForecastService
from ..serving.server import ForecastServer, ServerConfig
from ..simulation import RaceSimulator, track_for_year

__all__ = [
    "ServeMeasurement",
    "gateway_benchmark",
    "build_serving_fixture",
    "isolation_benchmark",
]

MODEL_NAME = "bench-deepar"
#: sweep-capable model for the isolation benchmark (the strategy
#: optimizer needs a forecaster conditioned on race-status covariates)
SWEEP_MODEL_NAME = "bench-ranknet"


@dataclass
class ServeMeasurement:
    """Wall-clock of one serving path on the shared workload."""

    path: str
    clients: int
    window_ms: float
    requests: int
    wall_s: float
    ms_per_request: float

    def as_row(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "clients": self.clients,
            "window_ms": self.window_ms,
            "requests": self.requests,
            "wall_s": round(self.wall_s, 4),
            "ms_per_request": round(self.ms_per_request, 2),
        }


def build_serving_fixture(root: str, seed: int = 5):
    """Fit the benchmark model into ``root`` and return its feature series."""
    track = replace(track_for_year("Indy500", 2018), total_laps=60, num_cars=10)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=3).run()
    series = build_race_features(race)
    model = DeepARForecaster(
        encoder_length=12,
        decoder_length=2,
        hidden_dim=16,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_train_windows=200,
        seed=seed,
    )
    model.fit(series[:5])
    ArtifactStore(root).save_model(MODEL_NAME, model)
    return race, series, model


def _request_batch(forecaster, series, n_requests: int, n_samples: int, horizon: int):
    origins = [16 + (i % 24) for i in range(n_requests)]
    return [
        ForecastClient.request(
            MODEL_NAME,
            forecaster._history_target(series, origin),
            forecaster._history_covariates(series, origin),
            forecaster._future_covariates(series, origin, horizon),
            n_samples=n_samples,
            rng=1000 + i,
            key=(series.race_id, series.car_id, i),
            origin=origin,
        )
        for i, origin in enumerate(origins)
    ]


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def gateway_benchmark(
    n_requests: int = 48,
    n_clients: int = 3,
    n_samples: int = 20,
    horizon: int = 2,
    windows_ms: Sequence[float] = (0.0, 2.0, 10.0),
    repeats: int = 3,
    root: Optional[str] = None,
    seed: int = 0,
) -> List[ServeMeasurement]:
    """Measure every serving path on one shared seeded workload.

    Each path is timed ``repeats`` times and the median wall-clock is
    reported.  ``n_requests`` must divide evenly across ``n_clients``.
    """
    if n_requests % n_clients:
        raise ValueError("n_requests must be divisible by n_clients")
    with tempfile.TemporaryDirectory() as scratch:
        store_root = root or scratch
        _, series, _ = build_serving_fixture(store_root, seed=seed + 5)
        service = ForecastService(ArtifactStore(store_root))
        forecaster = service.load(MODEL_NAME).forecaster
        batch = _request_batch(forecaster, series[0], n_requests, n_samples, horizon)
        measurements: List[ServeMeasurement] = []

        def add(path: str, clients: int, window_ms: float, walls: List[float]) -> None:
            wall = float(np.median(walls))
            measurements.append(
                ServeMeasurement(
                    path=path,
                    clients=clients,
                    window_ms=window_ms,
                    requests=n_requests,
                    wall_s=wall,
                    ms_per_request=1e3 * wall / n_requests,
                )
            )

        service.submit(batch)  # warm the engine / allocator once
        add(
            "direct batched", 0, 0.0,
            [_timed(lambda: service.submit(batch)) for _ in range(repeats)],
        )
        add(
            "direct sequential", 0, 0.0,
            [
                _timed(lambda: [service.submit([named]) for named in batch])
                for _ in range(repeats)
            ],
        )

        per_client = n_requests // n_clients
        shards = [batch[c * per_client : (c + 1) * per_client] for c in range(n_clients)]
        for window_ms in windows_ms:
            config = ServerConfig(
                store=store_root, port=0, preload=[MODEL_NAME], batch_window_ms=window_ms
            )
            with ForecastServer(config) as server:
                client = ForecastClient(port=server.port)
                client.forecast(batch[:2])  # warm the connection path

                if window_ms == windows_ms[0]:
                    add(
                        "http sequential", 1, window_ms,
                        [
                            _timed(lambda: [client.forecast([named]) for named in batch])
                            for _ in range(repeats)
                        ],
                    )

                def concurrent_pass() -> None:
                    barrier = threading.Barrier(n_clients)
                    errors: List[BaseException] = []

                    def run(shard) -> None:
                        try:
                            own = ForecastClient(port=server.port)
                            barrier.wait()
                            for named in shard:
                                own.forecast([named])
                        except BaseException as exc:  # pragma: no cover
                            errors.append(exc)

                    threads = [
                        threading.Thread(target=run, args=(shard,)) for shard in shards
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    if errors:
                        raise errors[0]

                add(
                    f"http {n_clients} clients", n_clients, window_ms,
                    [_timed(concurrent_pass) for _ in range(repeats)],
                )
        return measurements


def isolation_benchmark(
    root: Optional[str] = None,
    n_probe: int = 12,
    sweep_origins: int = 16,
    sweep_samples: int = 384,
    seed: int = 0,
) -> Dict[str, float]:
    """Cross-model isolation: a slow sweep on model A must not block model B.

    Runs the gateway in **worker mode** — one supervised subprocess per
    model — and measures single-request forecast latency on model B (the
    DeepAR) while model A (a sweep-capable RankNet oracle) grinds through
    a long strategy sweep.  Under the old global gateway lock a B probe
    arriving mid-sweep waited out the entire sweep (``blocking_ratio``
    ~= 1); with per-model replicas the probe only pays CPU contention.
    The benchmark gate holds ``blocking_ratio`` — the worst B probe as a
    fraction of the sweep wall-clock — under 0.5.
    """
    from ..models import RankNetForecaster

    with tempfile.TemporaryDirectory() as scratch:
        store_root = root or scratch
        _, series, _ = build_serving_fixture(store_root, seed=seed + 5)
        sweeper_model = RankNetForecaster(
            variant="oracle",
            encoder_length=12,
            decoder_length=2,
            hidden_dim=16,
            num_layers=1,
            epochs=1,
            batch_size=32,
            max_train_windows=200,
            seed=seed + 6,
        )
        sweeper_model.fit(series[:5])
        ArtifactStore(store_root).save_model(SWEEP_MODEL_NAME, sweeper_model)
        service = ForecastService(ArtifactStore(store_root))
        forecaster = service.load(MODEL_NAME).forecaster

        def probe_request():
            return _request_batch(forecaster, series[0], 1, 5, 2)[0]

        config = ServerConfig(
            store=store_root,
            port=0,
            capacity=2,
            preload=[MODEL_NAME, SWEEP_MODEL_NAME],
            batch_window_ms=0.0,
            workers=True,
        )
        with ForecastServer(config) as server:
            client = ForecastClient(port=server.port, timeout_s=600.0)
            client.forecast([probe_request()])  # warm B's replica + connection

            baseline = [
                _timed(lambda: client.forecast([probe_request()]))
                for _ in range(n_probe)
            ]

            sweep_wall: Dict[str, float] = {}

            def run_sweep() -> None:
                own = ForecastClient(port=server.port, timeout_s=600.0)
                started = time.perf_counter()
                own.sweep(
                    SWEEP_MODEL_NAME,
                    series[0],
                    origins=[16 + i for i in range(sweep_origins)],
                    horizon=2,
                    rng=7,
                    n_samples=sweep_samples,
                )
                sweep_wall["wall_s"] = time.perf_counter() - started

            sweeper = threading.Thread(target=run_sweep)
            sweeper.start()
            during: List[float] = []
            while True:  # at least one probe even against a fast sweep
                during.append(_timed(lambda: client.forecast([probe_request()])))
                if not sweeper.is_alive():
                    break
            sweeper.join()

        wall = sweep_wall["wall_s"]
        return {
            "sweep_wall_s": wall,
            "probes_during_sweep": float(len(during)),
            "b_baseline_median_s": float(np.median(baseline)),
            "b_during_median_s": float(np.median(during)),
            "b_during_max_s": float(max(during)),
            "blocking_ratio": float(max(during) / wall),
        }


def _main() -> None:  # pragma: no cover - exercised by the CI bench smoke job
    from .report import write_bench_json

    rows = [m.as_row() for m in gateway_benchmark()]
    baseline_s = rows[0]["wall_s"] if rows else 0.0
    for row in rows:
        row["workload"] = row["path"]
        row["wall_ms"] = round(1e3 * row["wall_s"], 2)
        row["speedup"] = round(baseline_s / row["wall_s"], 2) if row["wall_s"] else None
    print(
        "Serving gateway benchmark (tiny DeepAR, 48 seeded single-car requests, "
        "20 samples, h2; median of 3)"
    )
    print(f"{'path':<20}{'clients':>8}{'window_ms':>11}{'wall_s':>9}{'ms/req':>8}")
    for row in rows:
        print(
            f"{row['path']:<20}{row['clients']:>8}{row['window_ms']:>11.1f}"
            f"{row['wall_s']:>9.3f}{row['ms_per_request']:>8.2f}"
        )
    isolation = isolation_benchmark()
    print()
    print(
        "Cross-model isolation (worker mode: sweep on A vs single-request "
        "forecasts on B)"
    )
    for key, value in isolation.items():
        print(f"  {key:<22}{value:.4f}")
    print(f"wrote {write_bench_json('server', rows, extra={'isolation': isolation})}")


if __name__ == "__main__":  # pragma: no cover
    _main()
