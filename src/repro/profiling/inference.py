"""Inference-path breakdown: per-car loop vs. the fleet-batched engine.

Complements the training-side kernel/roofline profiling with a measurement
of the serving hot path: the rolling-origin Monte-Carlo forecast workload
(Fig. 9 style — every car of the field forecast at every origin).  Three
strategies are timed on an identical synthetic workload:

* ``per-car loop`` — one ``forecast_samples`` call per (car, origin): the
  original implementation's access pattern, although each call already
  runs on the engine's single-request path (at small workloads the fixed
  256-row GEMM blocks make this a somewhat slow baseline; at evaluation
  scale it is faster than the original per-car code was);
* ``fleet-exact`` — all cars of an origin in one engine submit (warm-up
  batched across cars, decode batched across cars x samples);
* ``fleet-carry`` — additionally carries cached warm-up states between
  consecutive origins instead of replaying the history window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..models.deep.rankmodel import RankSeqModel
from ..serving.engine import FleetForecaster
from ..serving.requests import ForecastRequest, spawn_request_rngs

__all__ = ["InferenceMeasurement", "fleet_inference_breakdown"]


@dataclass
class InferenceMeasurement:
    """Wall-clock of one inference strategy over the rolling-origin workload."""

    strategy: str
    wall_s: float
    forecasts: int
    speedup_vs_loop: float

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "wall_ms": round(1e3 * self.wall_s, 2),
            "forecasts": self.forecasts,
            "forecasts_per_s": round(self.forecasts / max(self.wall_s, 1e-12), 1),
            "speedup_vs_loop": round(self.speedup_vs_loop, 2),
        }


def _synthetic_fleet(
    n_cars: int, n_laps: int, num_covariates: int, rng: np.random.Generator
):
    """Random-walk rank histories + covariates for a synthetic field."""
    targets = []
    covariates = []
    for _ in range(n_cars):
        steps = rng.normal(0.0, 0.8, size=n_laps)
        rank = np.clip(10.0 + np.cumsum(steps), 1.0, 33.0)
        targets.append(rank)
        covariates.append(rng.normal(size=(n_laps, num_covariates)))
    return targets, covariates


def fleet_inference_breakdown(
    n_cars: int = 8,
    n_samples: int = 24,
    n_origins: int = 4,
    encoder_length: int = 24,
    horizon: int = 2,
    hidden_dim: int = 24,
    num_layers: int = 2,
    num_covariates: int = 4,
    seed: int = 0,
) -> List[InferenceMeasurement]:
    """Measure the three inference strategies on one synthetic workload."""
    rng = np.random.default_rng(seed)
    n_laps = encoder_length + n_origins + horizon + 1
    targets, covariates = _synthetic_fleet(n_cars, n_laps, num_covariates, rng)
    model = RankSeqModel(
        num_covariates=num_covariates,
        hidden_dim=hidden_dim,
        num_layers=num_layers,
        encoder_length=encoder_length,
        decoder_length=horizon,
        rng=seed,
    )
    origins = [encoder_length + i for i in range(n_origins)]
    future = np.zeros((horizon, num_covariates))

    def request(car: int, origin: int, stream) -> ForecastRequest:
        start = origin + 1 - encoder_length
        return ForecastRequest(
            history_target=targets[car][start : origin + 1],
            history_covariates=covariates[car][start : origin + 1],
            future_covariates=future,
            n_samples=n_samples,
            rng=stream,
            key=car,
            origin=origin,
        )

    n_forecasts = n_cars * n_origins

    # per-car loop (the seed access pattern)
    streams = spawn_request_rngs(np.random.default_rng(seed), n_forecasts)
    t0 = time.perf_counter()
    for j, origin in enumerate(origins):
        for car in range(n_cars):
            start = origin + 1 - encoder_length
            model.forecast_samples(
                targets[car][start : origin + 1],
                covariates[car][start : origin + 1],
                future,
                n_samples=n_samples,
                rng=streams[j * n_cars + car],
            )
    loop_s = time.perf_counter() - t0

    timings = [("per-car loop", loop_s)]
    for mode in ("exact", "carry"):
        engine = FleetForecaster(model, mode=mode)
        streams = spawn_request_rngs(np.random.default_rng(seed), n_forecasts)
        t0 = time.perf_counter()
        for j, origin in enumerate(origins):
            engine.submit(
                [request(car, origin, streams[j * n_cars + car]) for car in range(n_cars)]
            )
        timings.append((f"fleet-{mode}", time.perf_counter() - t0))

    return [
        InferenceMeasurement(
            strategy=name,
            wall_s=wall,
            forecasts=n_forecasts,
            speedup_vs_loop=loop_s / max(wall, 1e-12),
        )
        for name, wall in timings
    ]
