"""Training-speed scaling with batch size (Fig. 10).

Two complementary sources:

* :func:`measure_cpu_training_speed` actually times RankNet's forward +
  backward pass on this machine's CPU at several batch sizes (µs/sample);
* :func:`device_training_speed` evaluates the analytic device models of
  :mod:`repro.profiling.devices` for CPU / GPU / GPU-cuDNN / VE so the full
  four-series figure can be regenerated without the hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.deep.rankmodel import RankSeqModel
from .devices import DEVICES, DeviceModel

__all__ = ["BatchScalingPoint", "measure_cpu_training_speed", "device_training_speed", "lstm_flops_per_sample"]


@dataclass
class BatchScalingPoint:
    device: str
    batch_size: int
    us_per_sample: float
    source: str  # "measured" | "model"


def lstm_flops_per_sample(
    input_dim: int = 12, hidden_dim: int = 40, num_layers: int = 2, seq_len: int = 62
) -> float:
    """Approximate FLOPs per training sample (forward + backward ~ 3x forward)."""
    per_step = 0.0
    in_dim = input_dim
    for _ in range(num_layers):
        per_step += 2.0 * (in_dim + hidden_dim) * 4 * hidden_dim  # gate GEMMs
        per_step += 10.0 * 4 * hidden_dim                          # element-wise
        in_dim = hidden_dim
    return 3.0 * per_step * seq_len


def measure_cpu_training_speed(
    batch_sizes: Sequence[int] = (32, 64, 128, 256, 640),
    num_covariates: int = 9,
    hidden_dim: int = 40,
    seq_len: int = 32,
    decoder_length: int = 2,
    repeats: int = 2,
    seed: int = 0,
) -> List[BatchScalingPoint]:
    """Time one optimisation step of the LSTM RankModel per batch size."""
    rng = np.random.default_rng(seed)
    points: List[BatchScalingPoint] = []
    model = RankSeqModel(
        num_covariates=num_covariates,
        hidden_dim=hidden_dim,
        encoder_length=seq_len - decoder_length,
        decoder_length=decoder_length,
        rng=rng,
    )
    for batch in batch_sizes:
        batch = int(batch)
        batch_data = {
            "target": rng.uniform(1, 33, size=(batch, seq_len)),
            "covariates": rng.normal(size=(batch, seq_len, num_covariates)),
            "weight": np.ones(batch),
        }
        model.zero_grad()
        model.loss_and_backward(batch_data)  # warm up
        t0 = time.perf_counter()
        for _ in range(repeats):
            model.zero_grad()
            model.loss_and_backward(batch_data)
        elapsed = time.perf_counter() - t0
        points.append(
            BatchScalingPoint(
                device="CPU (measured)",
                batch_size=batch,
                us_per_sample=elapsed / repeats / batch * 1e6,
                source="measured",
            )
        )
    return points


def device_training_speed(
    batch_sizes: Sequence[int] = (32, 64, 128, 256, 640, 1600, 3200),
    devices: Optional[Dict[str, DeviceModel]] = None,
    seq_len: int = 62,
) -> List[BatchScalingPoint]:
    """Evaluate the analytic device models over the Fig. 10 batch-size sweep."""
    devices = devices or DEVICES
    flops = lstm_flops_per_sample(seq_len=seq_len)
    points: List[BatchScalingPoint] = []
    for name, device in devices.items():
        for batch in batch_sizes:
            points.append(
                BatchScalingPoint(
                    device=name,
                    batch_size=int(batch),
                    us_per_sample=device.us_per_sample(int(batch), flops / seq_len, steps_per_sample=seq_len),
                    source="model",
                )
            )
    return points
