"""Training-efficiency substrate: kernel benchmarks, roofline, device models."""

from .batchscaling import (
    BatchScalingPoint,
    device_training_speed,
    lstm_flops_per_sample,
    measure_cpu_training_speed,
)
from .breakdown import BreakdownEntry, cpu_kernel_shares, hybrid_breakdown, offload_fraction_for_batch
from .decode import DECODE_WORKLOADS, DecodeMeasurement, decode_breakdown
from .precision import PrecisionMeasurement, precision_breakdown
from .report import bench_output_dir, host_fingerprint, write_bench_json
from .devices import DEVICES, DeviceModel, TABLE8_SPECS
from .inference import InferenceMeasurement, fleet_inference_breakdown
from .kernels import (
    KernelMeasurement,
    KernelSpec,
    LSTM_KERNELS,
    benchmark_kernels,
    kernel_workload,
)
from .roofline import (
    DEFAULT_PLATFORM,
    RooflinePlatform,
    RooflinePoint,
    analytic_intensities,
    attainable_gflops,
    roofline_points,
)
from .training import TrainingMeasurement, training_breakdown

__all__ = [
    "BatchScalingPoint",
    "device_training_speed",
    "lstm_flops_per_sample",
    "measure_cpu_training_speed",
    "BreakdownEntry",
    "cpu_kernel_shares",
    "hybrid_breakdown",
    "offload_fraction_for_batch",
    "DECODE_WORKLOADS",
    "DecodeMeasurement",
    "decode_breakdown",
    "PrecisionMeasurement",
    "precision_breakdown",
    "bench_output_dir",
    "host_fingerprint",
    "write_bench_json",
    "DEVICES",
    "DeviceModel",
    "TABLE8_SPECS",
    "InferenceMeasurement",
    "fleet_inference_breakdown",
    "TrainingMeasurement",
    "training_breakdown",
    "KernelMeasurement",
    "KernelSpec",
    "LSTM_KERNELS",
    "benchmark_kernels",
    "kernel_workload",
    "DEFAULT_PLATFORM",
    "RooflinePlatform",
    "RooflinePoint",
    "analytic_intensities",
    "attainable_gflops",
    "roofline_points",
]
