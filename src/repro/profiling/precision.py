"""Low-precision compute tier: float32 / int8 decode vs. the float64 reference.

Completes the decode-path profiling picture for the precision knob that
PR 9 threads through the kernels, the fleet engine and the wire protocol:
:mod:`repro.profiling.decode` measures the stepwise-vs-fused split at the
default (exact, float64) tier; this module measures the fused engine at
all three precision tiers on the same workload shapes:

* ``float64`` — the byte-identical reference tier (the determinism
  contract of the serving stack);
* ``float32`` — every decode buffer, GEMM and transcendental runs in
  single precision (half the memory traffic of the BLAS-bound GEMMs);
* ``int8`` — weights stored as per-output-channel symmetric int8 and
  dequantized once into float32 GEMM operands, so its runtime tracks the
  float32 tier while the artifact payload shrinks ~8x.

The low tiers are **error-bounded, not byte-identical**: all tiers draw
the same float64 noise from the same RNG streams, so trajectories line up
one-to-one and the table reports the worst-case per-trajectory rank
deviation and the worst-case deviation of per-request sample means
against float64.  ``benchmarks/test_bench_precision.py`` turns those
columns into gates.

Run as a module (``python -m repro.profiling.precision``) to print the
table and write the ``BENCH_precision.json`` sidecar; the
``bench-precision`` Makefile target and the CI bench-smoke job do exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..models.deep.rankmodel import RankSeqModel
from ..nn.precision import PRECISIONS
from ..serving.engine import FleetForecaster
from ..serving.requests import ForecastRequest, spawn_request_rngs
from .decode import DECODE_WORKLOADS, _build_workload
from .report import write_bench_json

__all__ = ["PrecisionMeasurement", "precision_breakdown"]


@dataclass
class PrecisionMeasurement:
    """Wall-clock and parity of one precision tier on one workload shape."""

    workload: str
    precision: str
    decode_ms: float
    trajectories: int
    speedup_vs_float64: float
    max_abs_rank_diff: float
    max_mean_rank_diff: float

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "precision": self.precision,
            "wall_ms": round(self.decode_ms, 2),
            "trajectories": self.trajectories,
            "speedup": round(self.speedup_vs_float64, 2),
            "max_abs_rank_diff": float(self.max_abs_rank_diff),
            "max_mean_rank_diff": float(self.max_mean_rank_diff),
        }


def precision_breakdown(
    encoder_length: int = 60,
    hidden_dim: int = 40,
    num_layers: int = 2,
    num_covariates: int = 9,
    n_origins: int = 2,
    backbone: str = "lstm",
    repeats: int = 3,
    workloads: Optional[Tuple[Tuple[str, int, int, int], ...]] = None,
    seed: int = 0,
) -> List[PrecisionMeasurement]:
    """Measure the fused decode engine at every precision tier.

    Each (workload, precision) pair is timed ``repeats`` times interleaved
    and the median is reported, so slow-host noise cancels out of the
    ratios.  Parity columns compare against the float64 samples of the
    same run shape: all tiers consume identical RNG streams, so the
    per-trajectory diff is meaningful (and stays small — the noise term
    is drawn in float64 on every tier).
    """
    measurements: List[PrecisionMeasurement] = []
    for label, n_requests, n_samples, horizon in workloads or DECODE_WORKLOADS:
        model = RankSeqModel(
            num_covariates=num_covariates,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            encoder_length=encoder_length,
            decoder_length=horizon,
            rng=seed,
            backbone=backbone,
        )
        targets, covariates = _build_workload(
            n_requests, horizon, encoder_length, num_covariates, n_origins, seed
        )
        origins = [encoder_length + i for i in range(n_origins)]
        future = np.zeros((horizon, num_covariates))

        def run(precision: str) -> Tuple[float, np.ndarray]:
            engine = FleetForecaster(
                model, mode="exact", decode="fused", precision=precision
            )
            streams = spawn_request_rngs(
                np.random.default_rng(seed + 1), n_requests * n_origins
            )
            outputs = []
            for j, origin in enumerate(origins):
                outputs.extend(
                    engine.submit(
                        [
                            ForecastRequest(
                                targets[c][origin + 1 - encoder_length : origin + 1],
                                covariates[c][origin + 1 - encoder_length : origin + 1],
                                future,
                                n_samples=n_samples,
                                rng=streams[j * n_requests + c],
                                key=c,
                                origin=origin,
                            )
                            for c in range(n_requests)
                        ]
                    )
                )
            return engine.timings["decode_s"], np.stack(outputs)

        run("float64")  # warm the BLAS pools / allocator once
        times: Dict[str, List[float]] = {p: [] for p in PRECISIONS}
        samples: Dict[str, np.ndarray] = {}
        for _ in range(repeats):
            for precision in PRECISIONS:
                decode_s, out = run(precision)
                times[precision].append(decode_s)
                samples[precision] = out
        reference = samples["float64"]
        ref_means = reference.mean(axis=1)
        f64_decode = float(np.median(times["float64"]))
        trajectories = n_requests * n_samples * n_origins
        for precision in PRECISIONS:
            decode_s = float(np.median(times[precision]))
            diff = np.abs(samples[precision] - reference)
            mean_diff = np.abs(samples[precision].mean(axis=1) - ref_means)
            measurements.append(
                PrecisionMeasurement(
                    workload=label,
                    precision=precision,
                    decode_ms=1e3 * decode_s,
                    trajectories=trajectories,
                    speedup_vs_float64=f64_decode / max(decode_s, 1e-12),
                    max_abs_rank_diff=float(diff.max()),
                    max_mean_rank_diff=float(mean_diff.max()),
                )
            )
    return measurements


def _main() -> None:  # pragma: no cover - exercised by the CI bench smoke job
    rows = [m.as_row() for m in precision_breakdown()]
    print("Precision tiers (2x40 LSTM, encoder 60; fused decode phase, median of 3)")
    print(
        f"{'workload':<20}{'precision':<10}{'wall_ms':>9}{'speedup':>9}"
        f"{'max|Δrank|':>12}{'max|Δmean|':>12}"
    )
    for row in rows:
        print(
            f"{row['workload']:<20}{row['precision']:<10}{row['wall_ms']:>9.1f}"
            f"{row['speedup']:>9.2f}{row['max_abs_rank_diff']:>12.2e}"
            f"{row['max_mean_rank_diff']:>12.2e}"
        )
    path = write_bench_json("precision", rows, extra={"decode": "fused"})
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    _main()
