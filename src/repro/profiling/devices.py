"""Analytic device models for the training-efficiency study (Table VIII).

The paper evaluates RankNet training on three platforms — a Xeon CPU, a
V100 GPU (operation-by-operation and cuDNN-fused) and an NEC SX-Aurora
Vector Engine.  Those devices are not available here, so we model each one
with a small set of published characteristics (peak throughput, memory
bandwidth, per-kernel launch/offload overhead, fraction of the work that is
offloaded) and *measure* the CPU numbers directly, which is enough to
reproduce the qualitative behaviour of Fig. 10 and Fig. 12:

* throughput (samples/s) improves with batch size on every device because
  the fixed per-step overhead is amortised;
* accelerators only beat the CPU once the batch is large enough for the
  offloaded work to outweigh the transfer/launch overhead;
* the cuDNN-style fused implementation is fastest everywhere because it
  removes most of the kernel-launch overhead and data movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["DeviceModel", "DEVICES", "TABLE8_SPECS"]


@dataclass(frozen=True)
class DeviceModel:
    """Simple throughput/latency model of one training platform."""

    name: str
    #: sustained throughput on the LSTM GEMM kernels (GFLOP/s)
    gemm_gflops: float
    #: sustained throughput on element-wise kernels (GFLOP/s, memory bound)
    elementwise_gflops: float
    #: fixed overhead per kernel invocation (µs): framework + launch/offload
    kernel_overhead_us: float
    #: per-step data-movement overhead per sample (µs) for offloaded work
    transfer_us_per_sample: float
    #: fraction of the per-step work that runs on the accelerator
    offload_fraction: float
    #: number of kernel invocations per LSTM time step (fused kernels -> fewer)
    kernels_per_step: int

    def step_time_us(self, batch_size: int, flops_per_sample: float,
                     elementwise_ratio: float = 0.25) -> float:
        """Estimated wall time (µs) of one LSTM time step at ``batch_size``."""
        total_flops = flops_per_sample * batch_size
        gemm_flops = total_flops * (1.0 - elementwise_ratio)
        elem_flops = total_flops * elementwise_ratio
        compute_us = (
            gemm_flops / (self.gemm_gflops * 1e3)
            + elem_flops / (self.elementwise_gflops * 1e3)
        )
        overhead_us = self.kernel_overhead_us * self.kernels_per_step
        transfer_us = self.transfer_us_per_sample * batch_size * self.offload_fraction
        return compute_us + overhead_us + transfer_us

    def us_per_sample(self, batch_size: int, flops_per_sample: float,
                      steps_per_sample: int = 1) -> float:
        """Training cost per sample (µs/sample), the y-axis of Fig. 10."""
        step = self.step_time_us(batch_size, flops_per_sample)
        return step * steps_per_sample / batch_size


#: Device catalogue.  The CPU entry is deliberately conservative; the GPU /
#: VE entries use round numbers consistent with the platforms of Table VIII.
DEVICES: Dict[str, DeviceModel] = {
    "CPU": DeviceModel(
        name="CPU",
        gemm_gflops=150.0,
        elementwise_gflops=20.0,
        kernel_overhead_us=4.0,
        transfer_us_per_sample=0.0,
        offload_fraction=0.0,
        kernels_per_step=40,
    ),
    "GPU": DeviceModel(
        name="GPU",
        gemm_gflops=2500.0,
        elementwise_gflops=300.0,
        kernel_overhead_us=9.0,
        transfer_us_per_sample=0.05,
        offload_fraction=1.0,
        kernels_per_step=40,
    ),
    "GPU cuDNN": DeviceModel(
        name="GPU cuDNN",
        gemm_gflops=4000.0,
        elementwise_gflops=600.0,
        kernel_overhead_us=9.0,
        transfer_us_per_sample=0.03,
        offload_fraction=1.0,
        kernels_per_step=4,       # fused: 39% of the MatMuls, 1% of the scalar ops remain
    ),
    "VE": DeviceModel(
        name="VE",
        gemm_gflops=1200.0,
        elementwise_gflops=400.0,
        kernel_overhead_us=12.0,
        transfer_us_per_sample=0.08,
        offload_fraction=0.35,    # only the vector-friendly 35% is offloaded at large batch
        kernels_per_step=40,
    ),
}

#: Hardware inventory reproduced from Table VIII (documentation).
TABLE8_SPECS: List[Dict[str, str]] = [
    {"platform": "CPU", "hardware": "Intel Xeon E5-2670 v3 @ 2.30GHz, 128 GB RAM"},
    {"platform": "CPU+GPU", "hardware": "Intel Xeon E5-2630 v4, 128 GB RAM, NVIDIA V100-SXM2-16GB"},
    {"platform": "CPU+VE", "hardware": "Intel Xeon Gold 6126 @ 2.60GHz, 192 GB RAM, NEC SX-Aurora Vector Engine"},
]
