"""Cross-process artifact round-trip check (used as a CI smoke step).

Two sub-commands, meant to run in *separate* processes::

    python -m repro.artifacts.smoke fit   --dir /tmp/artifacts
    python -m repro.artifacts.smoke check --dir /tmp/artifacts

``fit`` trains a tiny RankNet on the simulated dataset, registers its
artifact in the store, and records the model's next forecast as the
reference payload.  ``check`` — in a fresh interpreter, with no state
carried over — reloads the artifact, repeats the forecast, and exits
non-zero unless the samples are byte-identical.  This is the on-disk,
process-boundary version of the in-process round-trip guarantee gated by
``tests/models/test_artifacts.py``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from ..data.features import build_race_features
from ..models import RankNetForecaster
from ..nn.checkpoint import read_npz, write_npz
from ..simulation import generate_dataset
from .store import ArtifactStore, fingerprint_series

ARTIFACT_NAME = "smoke-ranknet"
REFERENCE_FILE = "smoke-reference.npz"

_FORECAST = {"origin": 25, "horizon": 5, "n_samples": 16}


def _series():
    dataset = generate_dataset(
        events=["Indy500"], base_seed=3, years_per_event={"Indy500": [2016, 2017, 2018]}
    )
    split = dataset.split("Indy500")
    train = [s for race in split.train for s in build_race_features(race)]
    test = [s for race in split.test for s in build_race_features(race)] or train
    return train, test[0]


def _fit(store: ArtifactStore) -> int:
    train, series = _series()
    model = RankNetForecaster(
        variant="mlp",
        encoder_length=12,
        decoder_length=2,
        hidden_dim=8,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_train_windows=200,
        seed=5,
    )
    model.fit(train[:6], None)
    store.save(ARTIFACT_NAME, model.to_artifact(), data_fingerprint=fingerprint_series(train[:6]))
    forecast = model.forecast(series, **_FORECAST)
    write_npz(
        f"{store.root}/{REFERENCE_FILE}",
        {"samples": forecast.samples},
        {"forecast": _FORECAST, "race_id": series.race_id, "car_id": series.car_id},
    )
    print(f"fitted {ARTIFACT_NAME}: registered in {store.root}, reference saved")
    return 0


def _check(store: ArtifactStore) -> int:
    _, series = _series()
    model = store.load_model(ARTIFACT_NAME)
    reference, meta = read_npz(f"{store.root}/{REFERENCE_FILE}")
    forecast = model.forecast(series, **meta["forecast"])
    if not np.array_equal(forecast.samples, reference["samples"]):
        worst = float(np.max(np.abs(forecast.samples - reference["samples"])))
        print(f"FAIL: reloaded forecast differs from reference (max abs diff {worst})")
        return 1
    print(
        f"OK: {ARTIFACT_NAME} reloaded in a fresh process reproduces "
        f"{reference['samples'].shape} forecast samples byte-identically"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Artifact round-trip smoke check")
    parser.add_argument("command", choices=["fit", "check"])
    parser.add_argument("--dir", required=True, help="artifact store directory")
    args = parser.parse_args(argv)
    store = ArtifactStore(args.dir)
    return _fit(store) if args.command == "fit" else _check(store)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
