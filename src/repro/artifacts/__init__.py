"""Model lifecycle: durable artifacts of fitted forecasters.

The paper's workload is two-phase — train a forecaster once per
race/configuration, then serve thousands of Monte-Carlo forecasts from it.
This package provides the durable middle: every forecaster family snapshots
to a :class:`~repro.models.base.ModelArtifact` (weights, fitted scalers,
feature config, field size and RNG streams), and the :class:`ArtifactStore`
registers those snapshots on disk with manifest listing, integrity
checksums and schema-version guards.  A model loaded from its artifact
produces *byte-identical* forecasts to the fitted original.

Downstream consumers:

* the experiment runner's ``--artifacts-dir`` flag caches fitted models
  across experiment processes (:mod:`repro.experiments.common`);
* :class:`repro.serving.ForecastService` serves any number of named
  artifacts concurrently with per-model fleet engines and LRU unloading;
* ``python -m repro.artifacts.smoke`` is the cross-process round-trip
  check run in CI.
"""

from .store import (
    ArtifactAliasError,
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    ArtifactStore,
    config_hash,
    fingerprint_series,
)

__all__ = [
    "ArtifactAliasError",
    "ArtifactError",
    "ArtifactIntegrityError",
    "ArtifactNotFoundError",
    "ArtifactSchemaError",
    "ArtifactStore",
    "config_hash",
    "fingerprint_series",
]
