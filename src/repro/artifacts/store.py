"""On-disk registry of fitted-model artifacts.

The :class:`ArtifactStore` turns the in-memory
:class:`~repro.models.base.ModelArtifact` snapshots into durable files so
the two phases of the paper's workload can run in separate processes: an
experiment (or a training job) fits a forecaster once and registers it; any
later process — another experiment sharing the same fitted model, or a
:class:`~repro.serving.ForecastService` — loads it by name and produces
byte-identical forecasts.

Layout of a store directory::

    <root>/
        manifest.json          # index: name -> family, hashes, checksum
        aliases.json           # mutable alias -> artifact-name pointers
        <name>.npz             # one npz+meta payload per artifact

Every artifact file goes through the shared npz+meta checkpoint format
(:mod:`repro.nn.checkpoint`).  The manifest records, per artifact, the
model family, the hash of its constructor config, the fingerprint of the
data it was fitted on, and a SHA-256 checksum of the payload; loading
verifies the checksum (:class:`ArtifactIntegrityError` on corruption) and
refuses payloads written by a newer schema (:class:`ArtifactSchemaError`).

Cache keys — :meth:`ArtifactStore.key_for` — combine
``family + config hash + data fingerprint`` so the experiment runner's
``--artifacts-dir`` caching is invalidated automatically whenever the model
configuration *or* the training data changes.

Aliases — :meth:`ArtifactStore.set_alias` / :meth:`ArtifactStore.resolve` —
are mutable pointers (``champion`` -> ``deepar-abc123``) stored in
``aliases.json`` next to the manifest.  They are what the continuous-learning
promotion manager flips: serving traffic addressed to an alias is resolved to
its current target at submit time, so promoting a challenger or rolling back
to the previous champion never rewrites an artifact.  Deleting or unloading
an artifact that an alias still points at is a structured
:class:`ArtifactAliasError` rather than a silently dangling pointer.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..nn.checkpoint import config_hash, read_npz, write_npz

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..models.base import ModelArtifact

__all__ = [
    "ArtifactAliasError",
    "ArtifactError",
    "ArtifactIntegrityError",
    "ArtifactNotFoundError",
    "ArtifactSchemaError",
    "ArtifactStore",
    "config_hash",
    "fingerprint_series",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ArtifactError(RuntimeError):
    """Base class of artifact-store failures."""


class ArtifactNotFoundError(ArtifactError):
    """The requested artifact is not registered (or its file is gone)."""


class ArtifactIntegrityError(ArtifactError):
    """The artifact payload does not match its recorded checksum."""


class ArtifactSchemaError(ArtifactError):
    """The artifact was written by a newer, incompatible schema."""


class ArtifactAliasError(ArtifactError):
    """An alias operation would corrupt the catalog.

    Raised when an alias would shadow an artifact name, chain onto another
    alias, or when deleting/unloading an artifact that an alias still
    points at — every case where continuing silently would leave serving
    traffic bound to a stale or dangling handle.
    """


def fingerprint_series(series_list: Sequence, extra: Optional[Sequence] = None) -> str:
    """Content fingerprint of the series a model was fitted on.

    Hashes each series' identity (race, car) together with every per-lap
    array the forecaster families consume — ranks, lap times, time behind
    leader and the full covariate matrix — so two runs over the same
    generated dataset share a fingerprint while any change to the data
    (different seed, different seasons, edited telemetry — including
    covariate-only edits that leave the ranks intact) produces a new one.
    ``extra`` appends a second collection (e.g. the validation split).
    """
    digest = hashlib.sha256()
    for group in (series_list, extra or ()):
        for series in group:
            digest.update(str(getattr(series, "race_id", "")).encode())
            digest.update(int(getattr(series, "car_id", -1)).to_bytes(8, "little", signed=True))
            digest.update(len(series).to_bytes(8, "little"))
            for attr in ("rank", "lap_time", "time_behind_leader", "covariates"):
                values = getattr(series, attr, None)
                if values is None:
                    continue
                column = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
                digest.update(column.tobytes())
    return digest.hexdigest()[:12]


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """Directory-backed registry of named :class:`ModelArtifact` payloads."""

    MANIFEST_NAME = "manifest.json"
    MANIFEST_SCHEMA_VERSION = 1
    ALIASES_NAME = "aliases.json"

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self._manifest: Dict[str, dict] = {}
        self._aliases: Dict[str, dict] = {}
        self._aliases_mtime: Optional[float] = None
        self._read_manifest()
        self._read_aliases()

    # ------------------------------------------------------------------
    # manifest bookkeeping
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, self.MANIFEST_NAME)

    def _read_manifest(self) -> None:
        if not os.path.exists(self.manifest_path):
            self._manifest = {}
            return
        with open(self.manifest_path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        version = int(document.get("schema_version", 0))
        if version > self.MANIFEST_SCHEMA_VERSION:
            raise ArtifactSchemaError(
                f"manifest schema version {version} is newer than supported "
                f"version {self.MANIFEST_SCHEMA_VERSION}"
            )
        self._manifest = dict(document.get("artifacts", {}))

    def _write_manifest(self) -> None:
        document = {
            "schema_version": self.MANIFEST_SCHEMA_VERSION,
            "artifacts": self._manifest,
        }
        tmp_path = self.manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_path, self.manifest_path)

    # ------------------------------------------------------------------
    # aliases
    # ------------------------------------------------------------------
    @property
    def aliases_path(self) -> str:
        return os.path.join(self.root, self.ALIASES_NAME)

    def _read_aliases(self) -> None:
        if not os.path.exists(self.aliases_path):
            self._aliases = {}
            self._aliases_mtime = None
            return
        with open(self.aliases_path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        self._aliases = dict(document.get("aliases", {}))
        self._aliases_mtime = os.path.getmtime(self.aliases_path)

    def _write_aliases(self) -> None:
        document = {"aliases": self._aliases}
        tmp_path = self.aliases_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_path, self.aliases_path)
        self._aliases_mtime = os.path.getmtime(self.aliases_path)

    def _refresh_aliases(self) -> None:
        # promotions land from other processes (the repro-learn CLI flips an
        # alias while repro-serve holds the store open); pick them up on the
        # cheap mtime signal instead of re-reading on every resolve
        try:
            mtime = os.path.getmtime(self.aliases_path)
        except OSError:
            mtime = None
        if mtime != self._aliases_mtime:
            self._read_aliases()

    def aliases(self) -> Dict[str, str]:
        """All aliases as ``{alias: target artifact name}`` (a copy)."""
        self._refresh_aliases()
        return {alias: entry["target"] for alias, entry in sorted(self._aliases.items())}

    def alias_entry(self, alias: str) -> dict:
        """The full alias record ({} when unregistered)."""
        self._refresh_aliases()
        return dict(self._aliases.get(alias, {}))

    def is_alias(self, name: str) -> bool:
        self._refresh_aliases()
        return name in self._aliases

    def aliases_for(self, name: str) -> List[str]:
        """Every alias currently pointing at artifact ``name``."""
        self._refresh_aliases()
        return sorted(a for a, entry in self._aliases.items() if entry["target"] == name)

    def set_alias(self, alias: str, target: str) -> dict:
        """Point ``alias`` at artifact ``target`` (creating or re-pointing).

        The target must be a registered artifact — aliases never chain onto
        other aliases and never shadow an artifact name, so ``resolve`` is a
        single deterministic hop.
        """
        alias = self._check_name(alias)
        self._refresh_aliases()
        if alias in self._manifest:
            raise ArtifactAliasError(
                f"alias {alias!r} would shadow a registered artifact of the same name"
            )
        if target in self._aliases:
            raise ArtifactAliasError(
                f"alias target {target!r} is itself an alias; aliases must "
                "point directly at an artifact"
            )
        if target not in self._manifest:
            raise ArtifactNotFoundError(
                f"alias target {target!r} is not registered in {self.root}"
            )
        entry = {"target": target, "updated_at": time.time()}
        self._aliases[alias] = entry
        self._write_aliases()
        return dict(entry)

    def delete_alias(self, alias: str) -> None:
        self._refresh_aliases()
        if alias not in self._aliases:
            raise ArtifactNotFoundError(f"alias {alias!r} is not registered")
        del self._aliases[alias]
        self._write_aliases()

    def resolve(self, name: str) -> str:
        """Resolve ``name`` through the alias table to an artifact name.

        Artifact names resolve to themselves (even if an alias of the same
        name could exist — it can't, ``set_alias`` forbids shadowing).
        Unknown names pass through unchanged so callers keep their existing
        not-found handling.
        """
        if name in self._manifest:
            return name
        self._refresh_aliases()
        entry = self._aliases.get(name)
        if entry is None:
            return name
        target = entry["target"]
        if target not in self._manifest:
            raise ArtifactNotFoundError(
                f"alias {name!r} points at {target!r}, which is no longer registered"
            )
        return target

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid artifact name {name!r}: use letters, digits, '.', '_' or '-'"
            )
        return name

    def _payload_path(self, name: str) -> str:
        return os.path.join(self.root, f"{name}.npz")

    @staticmethod
    def key_for(family: str, config: dict, data_fingerprint: str = "") -> str:
        """Canonical cache key: ``family-<config hash>[-<data fingerprint>]``."""
        key = f"{family}-{config_hash(config)}"
        if data_fingerprint:
            key = f"{key}-{data_fingerprint}"
        return key

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(
        self, name: str, artifact: ModelArtifact, data_fingerprint: str = ""
    ) -> dict:
        """Write ``artifact`` under ``name`` and register it in the manifest."""
        name = self._check_name(name)
        if self.is_alias(name):
            raise ArtifactAliasError(
                f"{name!r} is an alias; save artifacts under their own name "
                "and re-point the alias with set_alias"
            )
        path = self._payload_path(name)
        # write-then-rename so an interrupted overwrite can never leave a
        # truncated payload behind a manifest entry that still validates it
        tmp_path = path + ".tmp"
        write_npz(
            tmp_path,
            artifact.arrays,
            {
                "family": artifact.family,
                "config": artifact.config,
                "state": artifact.state,
                "schema_version": artifact.schema_version,
            },
        )
        os.replace(tmp_path, path)
        entry = {
            "file": os.path.basename(path),
            "family": artifact.family,
            "config_hash": artifact.config_hash(),
            "data_fingerprint": data_fingerprint,
            "schema_version": artifact.schema_version,
            "sha256": _file_sha256(path),
            "created_at": time.time(),
        }
        self._manifest[name] = entry
        self._write_manifest()
        return dict(entry)

    def load(self, name: str, verify: bool = True) -> ModelArtifact:
        """Read the named artifact back; verifies integrity by default.

        Accepts an alias — it is resolved to its current target first.
        """
        name = self.resolve(name)
        entry = self._manifest.get(name)
        if entry is None:
            raise ArtifactNotFoundError(
                f"artifact {name!r} is not registered in {self.root}"
            )
        path = self._payload_path(name)
        if not os.path.exists(path):
            raise ArtifactNotFoundError(f"artifact payload missing: {path}")
        if verify and _file_sha256(path) != entry["sha256"]:
            raise ArtifactIntegrityError(
                f"artifact {name!r} failed its checksum; the payload on disk "
                "does not match the manifest record"
            )
        # imported lazily: repro.models pulls in the serving layer, which
        # itself imports this module at interpreter start
        from ..models.base import ARTIFACT_SCHEMA_VERSION, ModelArtifact

        arrays, meta = read_npz(path)
        version = int(meta.get("schema_version", 0))
        if version > ARTIFACT_SCHEMA_VERSION:
            raise ArtifactSchemaError(
                f"artifact {name!r} has schema version {version}; this build "
                f"reads <= {ARTIFACT_SCHEMA_VERSION}"
            )
        return ModelArtifact(
            family=meta["family"],
            config=meta["config"],
            state=meta["state"],
            arrays=arrays,
            schema_version=version,
        )

    def load_model(self, name: str, verify: bool = True):
        """Load the named artifact and rebuild the fitted forecaster."""
        from ..models import from_artifact

        return from_artifact(self.load(name, verify=verify))

    def save_model(
        self,
        name: str,
        model,
        data_fingerprint: str = "",
        precision: str = "float64",
    ) -> dict:
        """Convenience: snapshot ``model`` via ``to_artifact`` and save it.

        ``precision`` selects the stored weight format (``"float64"`` —
        the unchanged v1 layout, ``"float32"`` or ``"int8"``; see
        :meth:`repro.models.base.RankForecaster.to_artifact`).
        """
        return self.save(
            name, model.to_artifact(precision=precision), data_fingerprint=data_fingerprint
        )

    # ------------------------------------------------------------------
    # listing / maintenance
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._manifest)

    def entries(self) -> Dict[str, dict]:
        """Manifest records keyed by artifact name (a defensive copy)."""
        return {name: dict(entry) for name, entry in self._manifest.items()}

    def catalog(self) -> List[dict]:
        """The store's model catalog: one record per artifact, name included.

        The flat-list form the serving gateway's ``GET /v1/models`` returns
        — each entry is the manifest record plus its ``name``, sorted by
        name.
        """
        return [{"name": name, **self.entry(name)} for name in self.names()]

    def entry(self, name: str) -> dict:
        """The manifest record of one artifact ({} when unregistered)."""
        return dict(self._manifest.get(name, {}))

    def __contains__(self, name: str) -> bool:
        return name in self._manifest

    def __len__(self) -> int:
        return len(self._manifest)

    def delete(self, name: str) -> None:
        if self.is_alias(name):
            raise ArtifactAliasError(
                f"{name!r} is an alias; use delete_alias to remove it"
            )
        referencing = self.aliases_for(name)
        if referencing:
            raise ArtifactAliasError(
                f"artifact {name!r} is the target of alias(es) "
                f"{', '.join(repr(a) for a in referencing)}; re-point or delete "
                "them first"
            )
        entry = self._manifest.pop(name, None)
        if entry is None:
            raise ArtifactNotFoundError(f"artifact {name!r} is not registered")
        path = self._payload_path(name)
        if os.path.exists(path):
            os.remove(path)
        self._write_manifest()

    def verify_all(self) -> List[str]:
        """Checksum every registered payload; returns the verified names."""
        verified = []
        for name in self.names():
            self.load(name, verify=True)
            verified.append(name)
        return verified

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArtifactStore(root={self.root!r}, artifacts={len(self)})"
