"""Driver / car performance model.

Each entry in a race is described by a :class:`DriverProfile` combining

* ``skill`` — mean pace offset relative to the field (fraction of lap time,
  negative is faster);
* ``consistency`` — standard deviation of the per-lap pace noise;
* ``pit_crew`` — multiplier on the pit-lane service time;
* ``aggression`` — how early in the fuel window the team prefers to pit and
  how eagerly it takes an opportunistic pit stop under caution;
* ``reliability`` — per-lap probability of *not* suffering a mechanical
  failure.

The field generator reproduces a realistic spread: a handful of dominant
cars, a competitive mid-field and a slower tail, which is what makes rank
positions mostly stable outside of pit-stop windows (the paper's CurRank
baseline is strong for exactly this reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["DriverProfile", "generate_field"]


@dataclass(frozen=True)
class DriverProfile:
    """Static per-car attributes used by the race engine."""

    car_id: int
    skill: float
    consistency: float
    pit_crew: float
    aggression: float
    reliability: float

    def expected_lap_time(self, base_lap_time_s: float) -> float:
        """Mean green-flag lap time for this car."""
        return base_lap_time_s * (1.0 + self.skill)


def generate_field(
    num_cars: int,
    rng: np.random.Generator,
    skill_spread: float = 0.012,
    consistency_mean: float = 0.004,
) -> List[DriverProfile]:
    """Generate a plausible field of ``num_cars`` driver/car packages.

    Skills are drawn from a skew-adjusted normal so that the front of the
    field is tightly packed while back-markers trail off, then shifted so the
    field average is zero (the track's ``avg_speed_mph`` stays meaningful).
    """
    if num_cars < 2:
        raise ValueError("a race needs at least two cars")
    raw_skill = rng.normal(0.0, skill_spread, size=num_cars)
    raw_skill = np.sort(raw_skill)  # car_id 1 is the fastest package on paper
    raw_skill = raw_skill - raw_skill.mean()
    profiles = []
    for i in range(num_cars):
        profiles.append(
            DriverProfile(
                car_id=i + 1,
                skill=float(raw_skill[i]),
                consistency=float(abs(rng.normal(consistency_mean, consistency_mean / 3))) + 1e-4,
                pit_crew=float(np.clip(rng.normal(1.0, 0.06), 0.85, 1.2)),
                aggression=float(np.clip(rng.beta(2.0, 2.0), 0.05, 0.95)),
                reliability=float(np.clip(1.0 - rng.gamma(1.5, 2e-4), 0.9985, 1.0)),
            )
        )
    return profiles
