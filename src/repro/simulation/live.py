"""Live-race forecasting: stream fleet forecasts lap by lap from telemetry.

Couples the race simulator to the serving engine: given a finished (or
in-progress) :class:`RaceTelemetry` and a fitted deep forecaster, the
:class:`LiveRaceForecaster` replays the race origin by origin and submits
the whole field as one fleet batch per lap.  It runs the engine in
``carry`` mode — between consecutive laps each car's warm-up state is
advanced by exactly one observed lap instead of replaying the whole
history window, which is what a real-time timing-feed deployment would do.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..data.features import CarFeatureSeries, build_race_features
from ..serving.engine import FleetForecaster
from ..serving.requests import ForecastRequest, spawn_request_rngs
from .telemetry import RaceTelemetry

__all__ = ["LiveRaceForecaster"]


class LiveRaceForecaster:
    """Streams per-lap fleet forecasts for every running car of a race."""

    def __init__(
        self,
        forecaster,
        horizon: int = 2,
        n_samples: int = 50,
        min_history: int = 10,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if getattr(forecaster, "model", None) is None:
            raise ValueError("the forecaster must be fitted before live serving")
        self.forecaster = forecaster
        self.horizon = int(horizon)
        self.n_samples = int(n_samples)
        self.min_history = int(min_history)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._own_engine: Optional[FleetForecaster] = None

    @property
    def engine(self) -> FleetForecaster:
        """The carry-mode engine, resolved through the forecaster on every
        access so a re-fit or fine-tune never leaves stale weights/states."""
        if hasattr(self.forecaster, "fleet_engine"):
            return self.forecaster.fleet_engine(mode="carry")
        if self._own_engine is None:
            self._own_engine = FleetForecaster(self.forecaster.model, mode="carry")
        return self._own_engine

    # ------------------------------------------------------------------
    def _requests_at(
        self, series_list: List[CarFeatureSeries], origin: int
    ) -> Tuple[List[int], List[ForecastRequest]]:
        fc = self.forecaster
        eligible = [
            s for s in series_list if self.min_history <= origin < len(s) - 1
        ]
        streams = spawn_request_rngs(self.rng, len(eligible))
        requests = [
            fc._fleet_request(
                series,
                origin,
                fc._future_covariates(series, origin, self.horizon),
                self.n_samples,
                stream,
            )
            for series, stream in zip(eligible, streams)
        ]
        return [s.car_id for s in eligible], requests

    def forecast_at(
        self, series_list: List[CarFeatureSeries], origin: int
    ) -> Dict[int, np.ndarray]:
        """Fleet forecast for one origin: ``car_id -> (n_samples, horizon)``."""
        car_ids, requests = self._requests_at(series_list, origin)
        if not requests:
            return {}
        results = self.engine.submit(requests)
        return {
            car_id: np.clip(samples, 1.0, 33.0)
            for car_id, samples in zip(car_ids, results)
        }

    def stream(
        self,
        race: RaceTelemetry,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        stride: int = 1,
    ) -> Iterator[Tuple[int, Dict[int, np.ndarray]]]:
        """Yield ``(origin, {car_id: samples})`` lap by lap over a race.

        Because the engine runs in ``carry`` mode, consecutive origins only
        cost one incremental warm-up step per car.
        """
        series_list = build_race_features(race)
        if not series_list:
            return
        max_len = max(len(s) for s in series_list)
        first = self.min_history if start is None else max(int(start), self.min_history)
        last = max_len - self.horizon - 1 if stop is None else min(int(stop), max_len - 2)
        for origin in range(first, last + 1, max(int(stride), 1)):
            forecasts = self.forecast_at(series_list, origin)
            if forecasts:
                yield origin, forecasts
