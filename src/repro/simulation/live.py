"""Live-race forecasting: stream fleet forecasts lap by lap from telemetry.

Couples the race simulator to the serving engine: given a fitted deep
forecaster, the :class:`LiveRaceForecaster` answers the per-origin question
(:meth:`forecast_at` — the whole field as one fleet batch) and replays a
finished race as a timing feed (:meth:`stream`).  It runs the engine in
``carry`` mode — between consecutive laps each car's warm-up state is
advanced by exactly one observed lap instead of replaying the whole
history window, which is what a real-time timing-feed deployment would do.

Since the serving API grew server-side sessions, :meth:`stream` is a thin
replay harness over the shared session core
(:class:`repro.serving.sessions.RaceSession`): the race's lap records are
fed one lap at a time into a session whose features are built
incrementally, exactly as the HTTP gateway's ``/v1/sessions`` endpoint
feeds laps arriving from a remote client.  The streamed forecasts are
byte-identical to the pre-session implementation (features built once from
the finished race), because the incremental builder's arrays are
prefix-final: an origin is only forecast once every feature it reads has
its whole-race value.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..data.features import DEFAULT_MIN_LAPS, DEFAULT_SHIFT_LAG, CarFeatureSeries
from ..nn.precision import normalize_precision
from ..serving.engine import FleetForecaster
from ..serving.requests import ForecastRequest, spawn_request_rngs
from ..serving.sessions import RaceSession
from .telemetry import RaceTelemetry

__all__ = ["LiveRaceForecaster"]


class LiveRaceForecaster:
    """Streams per-lap fleet forecasts for every running car of a race."""

    def __init__(
        self,
        forecaster,
        horizon: int = 2,
        n_samples: int = 50,
        min_history: int = 10,
        rng: np.random.Generator | int | None = None,
        precision: str = "float64",
    ) -> None:
        if getattr(forecaster, "model", None) is None:
            raise ValueError("the forecaster must be fitted before live serving")
        self.forecaster = forecaster
        self.horizon = int(horizon)
        self.n_samples = int(n_samples)
        self.min_history = int(min_history)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.precision = normalize_precision(precision)
        self._own_engine: Optional[FleetForecaster] = None

    @property
    def engine(self) -> FleetForecaster:
        """The carry-mode engine, resolved through the forecaster on every
        access so a re-fit or fine-tune never leaves stale weights/states."""
        if hasattr(self.forecaster, "fleet_engine"):
            return self.forecaster.fleet_engine(mode="carry", precision=self.precision)
        if self._own_engine is None:
            self._own_engine = FleetForecaster(
                self.forecaster.model, mode="carry", precision=self.precision
            )
        return self._own_engine

    # ------------------------------------------------------------------
    def _requests_at(
        self, series_list: List[CarFeatureSeries], origin: int
    ) -> Tuple[List[int], List[ForecastRequest]]:
        fc = self.forecaster
        eligible = [
            s for s in series_list if self.min_history <= origin < len(s) - 1
        ]
        streams = spawn_request_rngs(self.rng, len(eligible))
        requests = [
            fc._fleet_request(
                series,
                origin,
                fc._future_covariates(series, origin, self.horizon),
                self.n_samples,
                stream,
            )
            for series, stream in zip(eligible, streams)
        ]
        return [s.car_id for s in eligible], requests

    def forecast_at(
        self, series_list: List[CarFeatureSeries], origin: int
    ) -> Dict[int, np.ndarray]:
        """Fleet forecast for one origin: ``car_id -> (n_samples, horizon)``."""
        car_ids, requests = self._requests_at(series_list, origin)
        if not requests:
            return {}
        results = self.engine.submit(requests)
        return {
            car_id: np.clip(samples, 1.0, 33.0)
            for car_id, samples in zip(car_ids, results)
        }

    def open_session(
        self,
        event: str = "live",
        year: int = 0,
        race_id: Optional[str] = None,
        delay: Optional[int] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        stride: int = 1,
    ) -> RaceSession:
        """A lap-streamed session over this forecaster (see ``RaceSession``)."""
        return RaceSession(
            self,
            event=event,
            year=year,
            race_id=race_id,
            delay=delay,
            start=start,
            stop=stop,
            stride=stride,
        )

    def stream(
        self,
        race: RaceTelemetry,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        stride: int = 1,
    ) -> Iterator[Tuple[int, Dict[int, np.ndarray]]]:
        """Yield ``(origin, {car_id: samples})`` lap by lap over a race.

        The race is replayed as a timing feed through a
        :class:`~repro.serving.sessions.RaceSession` — one lap of records
        at a time, features grown incrementally, forecasts emitted as soon
        as they are final.  Because the engine runs in ``carry`` mode,
        consecutive origins only cost one incremental warm-up step per car.
        The session is held back ``shift_lag + horizon`` laps so the
        streamed results also match forecasters that read *future*
        covariates from the series (the RankNet oracle variant).
        """
        lengths = [
            n
            for n in (len(race.car_laps(car)) for car in race.car_ids())
            if n >= DEFAULT_MIN_LAPS
        ]
        if not lengths:
            return
        max_len = max(lengths)
        first = self.min_history if start is None else max(int(start), self.min_history)
        last = max_len - self.horizon - 1 if stop is None else min(int(stop), max_len - 2)
        session = self.open_session(
            event=race.event,
            year=race.year,
            race_id=race.race_id,
            delay=DEFAULT_SHIFT_LAG + self.horizon,
            start=first,
            stop=last,
            stride=stride,
        )
        for lap, records in race.iter_laps():
            yield from session.observe_lap(lap, records)
        yield from session.finish()
