"""Caution (yellow flag) and retirement generator.

Anomaly events — crashes and serious mechanical failures — trigger a full
course yellow: the field slows down behind a safety car, gaps compress and
overtaking is forbidden until the green flag.  The paper reports that pit
and caution laps together are rare (<5% of laps are pit laps; Fig. 6 shows
pit-lap ratios of 10–40% per race *including* the caution-window stops) but
have an outsized impact on rank dynamics.

:class:`CautionGenerator` produces, lap by lap:

* whether a new caution period starts (Poisson-like per-lap hazard, higher
  on faster/denser tracks),
* how long the caution lasts (clean-up time),
* and which car (if any) retires as the cause of the caution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .track import TrackSpec

__all__ = ["CautionEvent", "CautionGenerator"]


@dataclass
class CautionEvent:
    """A caution period triggered at ``start_lap`` lasting ``duration`` laps."""

    start_lap: int
    duration: int
    retired_car: Optional[int] = None

    @property
    def end_lap(self) -> int:
        return self.start_lap + self.duration - 1


class CautionGenerator:
    """Stochastic generator of caution periods and retirements."""

    def __init__(
        self,
        track: TrackSpec,
        rng: np.random.Generator,
        hazard_per_lap: float = 0.018,
        mean_duration: float = 6.0,
        retirement_prob: float = 0.55,
    ) -> None:
        self.track = track
        self.rng = rng
        # denser fields crash a little more often
        self.hazard_per_lap = hazard_per_lap * (track.num_cars / 25.0)
        self.mean_duration = float(mean_duration)
        self.retirement_prob = float(retirement_prob)

    def maybe_start_caution(
        self, lap: int, active_cars: Sequence[int]
    ) -> Optional[CautionEvent]:
        """Return a new caution event starting at ``lap`` or ``None``.

        Cautions do not start during the opening laps (the field is still
        sorting itself out from the rolling start in a controlled way) nor
        on the final lap.
        """
        if lap < 5 or lap >= self.track.total_laps:
            return None
        if self.rng.random() >= self.hazard_per_lap:
            return None
        duration = int(np.clip(self.rng.poisson(self.mean_duration) + 2, 3, 15))
        retired: Optional[int] = None
        if active_cars and self.rng.random() < self.retirement_prob:
            # back-markers are slightly more likely to be involved
            weights = np.linspace(0.8, 1.2, num=len(active_cars))
            weights = weights / weights.sum()
            retired = int(self.rng.choice(np.asarray(active_cars), p=weights))
        return CautionEvent(start_lap=lap, duration=duration, retired_car=retired)
