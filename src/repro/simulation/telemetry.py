"""Race telemetry container and the on-disk log formats.

The real IndyCar timing & scoring system broadcasts per-section records over
a local network; the paper consumes per-lap records with the columns shown
in Fig. 1(a): ``Rank, CarId, Lap, LapTime, TimeBehindLeader, LapStatus,
TrackStatus``.  :class:`RaceTelemetry` stores exactly those columns (plus
the cumulative elapsed time) in a columnar layout convenient for the NumPy
feature pipeline.

Two on-disk formats are supported:

* :meth:`RaceTelemetry.save` / :meth:`RaceTelemetry.load` — the binary
  npz+meta checkpoint format shared with the model-artifact layer
  (:mod:`repro.nn.checkpoint`): one array per column plus a JSON meta
  record carrying event, year and the full :class:`TrackSpec`;
* :meth:`RaceTelemetry.save_csv` / :meth:`RaceTelemetry.from_csv` — the
  human-readable textual log of Fig. 1(a), kept for the examples and for
  interchange.  :meth:`load` sniffs the file magic and reads either.
"""

from __future__ import annotations

import io
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.checkpoint import read_npz, write_npz
from .track import TrackSpec, track_for_year

__all__ = ["LapRecord", "CarLaps", "RaceTelemetry"]

LAP_STATUS_NORMAL = "T"
LAP_STATUS_PIT = "P"
TRACK_STATUS_GREEN = "G"
TRACK_STATUS_YELLOW = "Y"


@dataclass(frozen=True)
class LapRecord:
    """One car crossing the start/finish line (possibly in the pit lane)."""

    car_id: int
    lap: int
    rank: int
    lap_time: float
    elapsed_time: float
    time_behind_leader: float
    is_pit: bool
    is_caution: bool

    @property
    def lap_status(self) -> str:
        return LAP_STATUS_PIT if self.is_pit else LAP_STATUS_NORMAL

    @property
    def track_status(self) -> str:
        return TRACK_STATUS_YELLOW if self.is_caution else TRACK_STATUS_GREEN


@dataclass
class CarLaps:
    """Per-car, lap-ordered view of a race used by the data pipeline."""

    car_id: int
    laps: np.ndarray
    rank: np.ndarray
    lap_time: np.ndarray
    time_behind_leader: np.ndarray
    is_pit: np.ndarray
    is_caution: np.ndarray

    def __len__(self) -> int:
        return int(self.laps.size)

    @property
    def num_pits(self) -> int:
        return int(self.is_pit.sum())

    def pit_laps(self) -> np.ndarray:
        return self.laps[self.is_pit]


class RaceTelemetry:
    """Columnar store of every lap record of one race."""

    _CSV_HEADER = "rank,car_id,lap,lap_time,elapsed_time,time_behind_leader,lap_status,track_status"

    def __init__(
        self,
        event: str,
        year: int,
        track: TrackSpec,
        records: Sequence[LapRecord],
    ) -> None:
        self.event = event
        self.year = int(year)
        self.track = track
        records = sorted(records, key=lambda r: (r.lap, r.rank))
        self.car_id = np.array([r.car_id for r in records], dtype=np.int64)
        self.lap = np.array([r.lap for r in records], dtype=np.int64)
        self.rank = np.array([r.rank for r in records], dtype=np.int64)
        self.lap_time = np.array([r.lap_time for r in records], dtype=np.float64)
        self.elapsed_time = np.array([r.elapsed_time for r in records], dtype=np.float64)
        self.time_behind_leader = np.array(
            [r.time_behind_leader for r in records], dtype=np.float64
        )
        self.is_pit = np.array([r.is_pit for r in records], dtype=bool)
        self.is_caution = np.array([r.is_caution for r in records], dtype=bool)
        self._car_cache: Dict[int, CarLaps] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.car_id.size)

    @property
    def race_id(self) -> str:
        return f"{self.event}-{self.year}"

    def car_ids(self) -> List[int]:
        return sorted(int(c) for c in np.unique(self.car_id))

    @property
    def num_laps(self) -> int:
        return int(self.lap.max()) if len(self) else 0

    def car_laps(self, car_id: int) -> CarLaps:
        """Lap-ordered per-car arrays (cached)."""
        if car_id not in self._car_cache:
            mask = self.car_id == car_id
            if not mask.any():
                raise KeyError(f"car {car_id} not present in {self.race_id}")
            order = np.argsort(self.lap[mask])
            self._car_cache[car_id] = CarLaps(
                car_id=car_id,
                laps=self.lap[mask][order],
                rank=self.rank[mask][order],
                lap_time=self.lap_time[mask][order],
                time_behind_leader=self.time_behind_leader[mask][order],
                is_pit=self.is_pit[mask][order],
                is_caution=self.is_caution[mask][order],
            )
        return self._car_cache[car_id]

    def winner(self) -> int:
        """Car id with rank 1 on the final lap."""
        final_lap = self.num_laps
        mask = (self.lap == final_lap) & (self.rank == 1)
        if not mask.any():
            raise RuntimeError("race has no final-lap leader")
        return int(self.car_id[mask][0])

    def finishers(self) -> List[int]:
        """Cars that completed the full race distance."""
        final_lap = self.num_laps
        return sorted(int(c) for c in np.unique(self.car_id[self.lap == final_lap]))

    def ranks_at_lap(self, lap: int) -> Dict[int, int]:
        mask = self.lap == lap
        return {int(c): int(r) for c, r in zip(self.car_id[mask], self.rank[mask])}

    def lap_records(self, lap: int) -> List[LapRecord]:
        """Every car's record for one lap, in the stored (rank) order."""
        mask = self.lap == lap
        return [
            LapRecord(
                car_id=int(self.car_id[i]),
                lap=int(self.lap[i]),
                rank=int(self.rank[i]),
                lap_time=float(self.lap_time[i]),
                elapsed_time=float(self.elapsed_time[i]),
                time_behind_leader=float(self.time_behind_leader[i]),
                is_pit=bool(self.is_pit[i]),
                is_caution=bool(self.is_caution[i]),
            )
            for i in np.flatnonzero(mask)
        ]

    def iter_laps(self):
        """Yield ``(lap, [LapRecord, ...])`` in lap order — a replayed feed."""
        for lap in np.unique(self.lap):
            yield int(lap), self.lap_records(int(lap))

    # ------------------------------------------------------------------
    # dataset-level statistics (Fig. 6)
    # ------------------------------------------------------------------
    def pit_lap_ratio(self) -> float:
        """Fraction of laps on which at least one car pits."""
        pit_laps = np.unique(self.lap[self.is_pit])
        return float(len(pit_laps) / max(self.num_laps, 1))

    def rank_changes_ratio(self) -> float:
        """Fraction of (car, lap) transitions where the rank changed."""
        changes = 0
        total = 0
        for car in self.car_ids():
            ranks = self.car_laps(car).rank
            if ranks.size < 2:
                continue
            diff = np.diff(ranks)
            changes += int(np.count_nonzero(diff))
            total += diff.size
        return float(changes / total) if total else 0.0

    def caution_lap_ratio(self) -> float:
        caution_laps = np.unique(self.lap[self.is_caution])
        return float(len(caution_laps) / max(self.num_laps, 1))

    # ------------------------------------------------------------------
    # record / log-format conversion
    # ------------------------------------------------------------------
    def to_records(self) -> List[LapRecord]:
        return [
            LapRecord(
                car_id=int(self.car_id[i]),
                lap=int(self.lap[i]),
                rank=int(self.rank[i]),
                lap_time=float(self.lap_time[i]),
                elapsed_time=float(self.elapsed_time[i]),
                time_behind_leader=float(self.time_behind_leader[i]),
                is_pit=bool(self.is_pit[i]),
                is_caution=bool(self.is_caution[i]),
            )
            for i in range(len(self))
        ]

    def to_csv(self) -> str:
        """Serialise to the textual log format (Fig. 1(a) column layout)."""
        lines = [self._CSV_HEADER]
        for r in self.to_records():
            lines.append(
                f"{r.rank},{r.car_id},{r.lap},{r.lap_time:.4f},{r.elapsed_time:.4f},"
                f"{r.time_behind_leader:.4f},{r.lap_status},{r.track_status}"
            )
        return "\n".join(lines) + "\n"

    #: columnar arrays written to / read from the npz payload
    _COLUMNS = (
        "car_id",
        "lap",
        "rank",
        "lap_time",
        "elapsed_time",
        "time_behind_leader",
        "is_pit",
        "is_caution",
    )
    _NPZ_SCHEMA_VERSION = 1

    def save(self, path: str) -> None:
        """Write the race as an npz+meta checkpoint (the durable format)."""
        write_npz(
            path,
            {column: getattr(self, column) for column in self._COLUMNS},
            {
                "kind": "race-telemetry",
                "schema_version": self._NPZ_SCHEMA_VERSION,
                "event": self.event,
                "year": self.year,
                "track": asdict(self.track),
            },
        )

    def save_csv(self, path: str) -> None:
        """Write the race in the textual log format (Fig. 1(a))."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# event={self.event} year={self.year}\n")
            fh.write(self.to_csv())

    @classmethod
    def from_csv(
        cls, text: str, event: str, year: int, track: Optional[TrackSpec] = None
    ) -> "RaceTelemetry":
        track = track or track_for_year(event, year)
        records: List[LapRecord] = []
        reader = io.StringIO(text)
        header = None
        for line in reader:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if header is None:
                header = line
                if header != cls._CSV_HEADER:
                    raise ValueError(f"unexpected log header: {header!r}")
                continue
            rank, car_id, lap, lap_time, elapsed, tbl, lap_status, track_status = line.split(",")
            records.append(
                LapRecord(
                    car_id=int(car_id),
                    lap=int(lap),
                    rank=int(rank),
                    lap_time=float(lap_time),
                    elapsed_time=float(elapsed),
                    time_behind_leader=float(tbl),
                    is_pit=lap_status == LAP_STATUS_PIT,
                    is_caution=track_status == TRACK_STATUS_YELLOW,
                )
            )
        return cls(event=event, year=year, track=track, records=records)

    @classmethod
    def _from_npz(cls, path: str) -> "RaceTelemetry":
        arrays, meta = read_npz(path)
        if meta.get("kind") != "race-telemetry":
            raise ValueError(f"{path!r} is not a race-telemetry checkpoint")
        version = int(meta.get("schema_version", 0))
        if version > cls._NPZ_SCHEMA_VERSION:
            raise ValueError(
                f"telemetry schema version {version} is newer than supported "
                f"version {cls._NPZ_SCHEMA_VERSION}"
            )
        records = [
            LapRecord(
                car_id=int(arrays["car_id"][i]),
                lap=int(arrays["lap"][i]),
                rank=int(arrays["rank"][i]),
                lap_time=float(arrays["lap_time"][i]),
                elapsed_time=float(arrays["elapsed_time"][i]),
                time_behind_leader=float(arrays["time_behind_leader"][i]),
                is_pit=bool(arrays["is_pit"][i]),
                is_caution=bool(arrays["is_caution"][i]),
            )
            for i in range(arrays["car_id"].shape[0])
        ]
        return cls(
            event=meta["event"],
            year=int(meta["year"]),
            track=TrackSpec(**meta["track"]),
            records=records,
        )

    @classmethod
    def load(cls, path: str) -> "RaceTelemetry":
        """Read a race from disk, sniffing npz (zip magic) vs. textual log."""
        with open(path, "rb") as fh:
            magic = fh.read(4)
        if magic.startswith(b"PK"):
            return cls._from_npz(path)
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline().strip()
            rest = fh.read()
        event, year = "Unknown", 0
        if first.startswith("#"):
            meta = dict(item.split("=") for item in first[1:].split())
            event = meta.get("event", event)
            year = int(meta.get("year", 0))
            text = rest
        else:
            text = first + "\n" + rest
        return cls.from_csv(text, event=event, year=year)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RaceTelemetry({self.race_id}, cars={len(self.car_ids())}, "
            f"laps={self.num_laps}, records={len(self)})"
        )
