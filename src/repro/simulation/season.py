"""Multi-season dataset generation (Table II of the paper).

The paper's dataset consists of 25 superspeedway races from four events
between 2013 and 2019, split into training / validation / test sets by
season.  :func:`generate_event_dataset` simulates the seasons of one event
with deterministic per-season seeds (so every module sees the same data) and
:func:`generate_dataset` produces the full Table II inventory together with
the standard splits used throughout the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .race import simulate_race
from .telemetry import RaceTelemetry
from .track import EVENT_YEARS

__all__ = ["DatasetSplit", "RacingDataset", "generate_event_dataset", "generate_dataset"]

# Seasons used for testing (everything earlier is training); Indy500-2018 is
# the validation year in the paper.
TEST_YEARS: Dict[str, List[int]] = {
    "Indy500": [2019],
    "Iowa": [2019],
    "Pocono": [2018],
    "Texas": [2018, 2019],
}
VALIDATION_YEARS: Dict[str, List[int]] = {
    "Indy500": [2018],
    "Iowa": [],
    "Pocono": [],
    "Texas": [],
}


def _season_seed(event: str, year: int, base_seed: int) -> int:
    """Deterministic per-race seed derived from the event name and season."""
    h = np.uint64(base_seed)
    for ch in f"{event}-{year}":
        h = np.uint64((int(h) * 1000003 + ord(ch)) % (2**63 - 1))
    return int(h)


@dataclass
class DatasetSplit:
    """Train / validation / test partition of a set of races."""

    train: List[RaceTelemetry] = field(default_factory=list)
    validation: List[RaceTelemetry] = field(default_factory=list)
    test: List[RaceTelemetry] = field(default_factory=list)

    def all_races(self) -> List[RaceTelemetry]:
        return self.train + self.validation + self.test


@dataclass
class RacingDataset:
    """The full simulated IndyCar dataset, organised per event."""

    events: Dict[str, DatasetSplit]

    def split(self, event: str) -> DatasetSplit:
        try:
            return self.events[event]
        except KeyError as exc:
            raise KeyError(f"unknown event {event!r}") from exc

    def all_races(self) -> List[RaceTelemetry]:
        races: List[RaceTelemetry] = []
        for split in self.events.values():
            races.extend(split.all_races())
        return races

    def summary_rows(self) -> List[dict]:
        """Per-event rows mirroring Table II."""
        rows = []
        for event, split in sorted(self.events.items()):
            races = split.all_races()
            if not races:
                continue
            track = races[0].track
            rows.append(
                {
                    "event": event,
                    "years": sorted(r.year for r in races),
                    "track_length_mi": track.length_miles,
                    "track_shape": track.shape,
                    "total_laps": sorted({r.num_laps for r in races}),
                    "participants": sorted({len(r.car_ids()) for r in races}),
                    "records": sum(len(r) for r in races),
                    "train_races": len(split.train),
                    "validation_races": len(split.validation),
                    "test_races": len(split.test),
                }
            )
        return rows


def generate_event_dataset(
    event: str,
    years: Optional[Sequence[int]] = None,
    base_seed: int = 2021,
) -> DatasetSplit:
    """Simulate every requested season of ``event`` and split it by year."""
    years = list(years) if years is not None else EVENT_YEARS[event]
    split = DatasetSplit()
    for year in years:
        race = simulate_race(event, year, seed=_season_seed(event, year, base_seed))
        if year in TEST_YEARS.get(event, []):
            split.test.append(race)
        elif year in VALIDATION_YEARS.get(event, []):
            split.validation.append(race)
        else:
            split.train.append(race)
    return split


def generate_dataset(
    events: Optional[Sequence[str]] = None,
    base_seed: int = 2021,
    years_per_event: Optional[Dict[str, Sequence[int]]] = None,
) -> RacingDataset:
    """Simulate the full multi-event dataset of Table II."""
    events = list(events) if events is not None else sorted(EVENT_YEARS)
    result: Dict[str, DatasetSplit] = {}
    for event in events:
        years = None
        if years_per_event is not None and event in years_per_event:
            years = years_per_event[event]
        result[event] = generate_event_dataset(event, years=years, base_seed=base_seed)
    return RacingDataset(events=result)
