"""Lap-by-lap race engine.

The engine advances all running cars one lap at a time, accumulating each
car's elapsed time and deriving the rank positions exactly the way the real
timing system does (Table I / Fig. 1(a)): the rank of car *i* at lap *L* is
its position in the order of elapsed times among the cars that completed
lap *L*.

The per-lap model captures the causal structure the forecasting models have
to learn:

* on green laps a car's lap time is its package pace plus noise plus a
  small traffic penalty that grows with its current position;
* on caution laps everybody follows the pace car, the field compresses and
  overtaking stops (ranks freeze apart from pitting cars);
* a pit stop adds the pit-lane loss to the lap time, which temporarily drops
  the car down the order — the dominant source of rank changes;
* cars can retire (mechanical failure or the crash that triggered a
  caution), which removes their trajectory from the remainder of the race.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .caution import CautionEvent, CautionGenerator
from .driver import DriverProfile, generate_field
from .pit import PitStrategy
from .telemetry import LapRecord, RaceTelemetry
from .track import TrackSpec, track_for_year

__all__ = ["RaceSimulator", "simulate_race"]


@dataclass
class _CarState:
    driver: DriverProfile
    strategy: PitStrategy
    elapsed: float = 0.0
    pit_age: int = 0
    caution_laps_since_pit: int = 0
    running: bool = True
    retired_on_lap: Optional[int] = None


class RaceSimulator:
    """Simulates a single race and returns its :class:`RaceTelemetry`."""

    def __init__(
        self,
        track: TrackSpec,
        event: str = "Indy500",
        year: int = 2018,
        drivers: Optional[Sequence[DriverProfile]] = None,
        seed: int | np.random.Generator | None = None,
        caution_generator: Optional[CautionGenerator] = None,
        traffic_penalty_s: float = 0.035,
        follow_gap_s: float = 0.45,
        base_overtake_prob: float = 0.10,
        pit_kwargs: Optional[Dict[str, float]] = None,
    ) -> None:
        self.track = track
        self.event = event
        self.year = int(year)
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.drivers = list(drivers) if drivers is not None else generate_field(track.num_cars, self.rng)
        self.caution_generator = caution_generator or CautionGenerator(track, self.rng)
        # extra PitStrategy knobs (unscheduled_prob, caution_pit_scale) for
        # the what-if scenario engine; None keeps the strategy defaults
        self.pit_kwargs = dict(pit_kwargs) if pit_kwargs else {}
        self.traffic_penalty_s = float(traffic_penalty_s)
        # overtaking model: a car that catches the one ahead usually has to
        # follow in its wake (dirty air); passes only succeed occasionally,
        # more often when the pace advantage is large.  This is what keeps
        # rank positions sticky outside of pit windows.
        self.follow_gap_s = float(follow_gap_s)
        self.base_overtake_prob = float(base_overtake_prob)

    # ------------------------------------------------------------------
    def run(self) -> RaceTelemetry:
        track = self.track
        rng = self.rng
        states: Dict[int, _CarState] = {}
        # starting grid: order cars by (noisy) qualifying pace
        quali = sorted(
            self.drivers, key=lambda d: d.skill + rng.normal(0.0, 0.004)
        )
        for pos, driver in enumerate(quali):
            strategy = PitStrategy(driver, track, rng, **self.pit_kwargs)
            state = _CarState(driver=driver, strategy=strategy)
            # rolling start: grid spacing of ~0.35 s per position
            state.elapsed = 0.35 * pos + rng.normal(0.0, 0.05)
            states[driver.car_id] = state

        records: List[LapRecord] = []
        active_caution: Optional[CautionEvent] = None
        prev_order: List[int] = [d.car_id for d in quali]

        for lap in range(1, track.total_laps + 1):
            running_cars = [cid for cid, s in states.items() if s.running]
            if len(running_cars) < 2:
                break

            # --- caution management -----------------------------------
            if active_caution is not None and lap > active_caution.end_lap:
                active_caution = None
            if active_caution is None:
                event = self.caution_generator.maybe_start_caution(lap, running_cars)
                if event is not None:
                    active_caution = event
                    if event.retired_car is not None and states[event.retired_car].running:
                        states[event.retired_car].running = False
                        states[event.retired_car].retired_on_lap = lap
                        running_cars = [c for c in running_cars if c != event.retired_car]
            caution = active_caution is not None

            # --- per-car lap simulation --------------------------------
            lap_info: Dict[int, dict] = {}
            leader_prev_elapsed = min(states[c].elapsed for c in running_cars)
            # elapsed time (after this lap) of the nearest non-pitting car
            # ahead in the running order; used by the overtaking model
            ahead_clear_elapsed: Optional[float] = None
            for pos_idx, car_id in enumerate(self._order(prev_order, running_cars)):
                state = states[car_id]
                driver = state.driver
                laps_remaining = track.total_laps - lap
                decision = state.strategy.decide(state.pit_age, caution, laps_remaining)
                is_pit = bool(decision.pit)

                base = driver.expected_lap_time(track.base_lap_time_s)
                noise = rng.normal(0.0, driver.consistency * track.base_lap_time_s)
                if caution:
                    # everyone trundles behind the pace car; the pack closes up
                    target_gap = 1.4 * pos_idx
                    target_elapsed = leader_prev_elapsed + track.caution_lap_time_s + target_gap
                    lap_time = target_elapsed - state.elapsed
                    min_lap = 0.97 * base
                    max_lap = track.caution_lap_time_s * 1.6
                    lap_time = float(np.clip(lap_time, min_lap, max_lap))
                    lap_time += abs(rng.normal(0.0, 0.2))
                else:
                    traffic = self.traffic_penalty_s * pos_idx * track.base_lap_time_s / 50.0
                    lap_time = base + noise + traffic
                if is_pit:
                    lap_time += state.strategy.service_time(caution)

                new_elapsed = state.elapsed + lap_time
                if (
                    not caution
                    and not is_pit
                    and ahead_clear_elapsed is not None
                    and new_elapsed < ahead_clear_elapsed + self.follow_gap_s
                ):
                    # the car has caught the one ahead: attempt an overtake,
                    # otherwise it is stuck in dirty air right behind it
                    advantage = ahead_clear_elapsed + self.follow_gap_s - new_elapsed
                    overtake_prob = min(
                        0.85, self.base_overtake_prob + 0.10 * advantage
                    )
                    if rng.random() >= overtake_prob:
                        new_elapsed = ahead_clear_elapsed + self.follow_gap_s + abs(
                            rng.normal(0.0, 0.05)
                        )
                        lap_time = new_elapsed - state.elapsed
                if not is_pit:
                    ahead_clear_elapsed = new_elapsed
                lap_info[car_id] = {
                    "lap_time": lap_time,
                    "is_pit": is_pit,
                    "new_elapsed": new_elapsed,
                }

            # --- advance elapsed time, apply retirement ----------------
            for car_id, info in lap_info.items():
                state = states[car_id]
                state.elapsed = info["new_elapsed"]
                if info["is_pit"]:
                    state.pit_age = 0
                    state.caution_laps_since_pit = 0
                    state.strategy.reset_stint()
                else:
                    state.pit_age += 1
                    if caution:
                        state.caution_laps_since_pit += 1
                # silent mechanical retirement (no caution)
                if state.running and rng.random() > state.driver.reliability:
                    state.running = False
                    state.retired_on_lap = lap

            # --- ranking ------------------------------------------------
            completers = [c for c in lap_info]
            order = sorted(completers, key=lambda c: states[c].elapsed)
            leader_elapsed = states[order[0]].elapsed
            for rank_pos, car_id in enumerate(order, start=1):
                state = states[car_id]
                records.append(
                    LapRecord(
                        car_id=car_id,
                        lap=lap,
                        rank=rank_pos,
                        lap_time=float(lap_info[car_id]["lap_time"]),
                        elapsed_time=float(state.elapsed),
                        time_behind_leader=float(state.elapsed - leader_elapsed),
                        is_pit=bool(lap_info[car_id]["is_pit"]),
                        is_caution=caution,
                    )
                )
            prev_order = order

        return RaceTelemetry(event=self.event, year=self.year, track=track, records=records)

    @staticmethod
    def _order(prev_order: Sequence[int], running_cars: Sequence[int]) -> List[int]:
        """Previous-lap running order restricted to the cars still running."""
        running = set(running_cars)
        ordered = [c for c in prev_order if c in running]
        missing = [c for c in running_cars if c not in set(ordered)]
        return ordered + missing


def simulate_race(
    event: str,
    year: int,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> RaceTelemetry:
    """Convenience wrapper: simulate one season of ``event``."""
    track = track_for_year(event, year)
    sim = RaceSimulator(track=track, event=event, year=year, seed=seed, **kwargs)
    return sim.run()
