"""Pit-stop decision model (Fig. 3 of the paper).

The paper groups the causes of pit stops into three categories:

* **resource constraints** — fuel tank volume and tire wear bound the stint
  length (no car runs more than ~50 laps at Indy500 before pitting, Fig. 4a);
* **anomaly events** — yellow flags change the strategy: pitting while the
  field circulates slowly behind the pace car is cheap, so teams take
  opportunistic "caution pits" (the dataset contains roughly as many caution
  pits as normal pits: 777 vs 763);
* **human strategies** — teams choose where inside the fuel window to stop
  based on track position, risk appetite and the unfolding race.

:class:`PitStrategy` reproduces those mechanisms:  each car receives a
per-stint *target* lap drawn around its preferred position inside the fuel
window; the probability of pitting ramps up steeply as the car approaches
the end of the window; a caution lap multiplies the pit probability once the
car is deep enough into its stint; and a small per-lap probability of an
unscheduled stop (debris, slow puncture, penalty) produces the short-stint
tail observed in Fig. 4(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .driver import DriverProfile
from .track import TrackSpec

__all__ = ["PitDecision", "PitStrategy"]


@dataclass(frozen=True)
class PitDecision:
    """Outcome of a per-lap pit-stop decision."""

    pit: bool
    reason: str = "none"  # none | window | caution | unscheduled


class PitStrategy:
    """Stochastic pit-stop policy for a single car."""

    def __init__(
        self,
        driver: DriverProfile,
        track: TrackSpec,
        rng: np.random.Generator,
        unscheduled_prob: float = 0.0020,
        caution_pit_scale: float = 0.55,
    ) -> None:
        self.driver = driver
        self.track = track
        self.rng = rng
        self.window = track.fuel_window_laps
        self.unscheduled_prob = float(unscheduled_prob)
        # fraction of the fuel window after which a caution triggers an
        # opportunistic stop with high probability
        self.caution_pit_threshold = caution_pit_scale * self.window
        self._target = self._draw_target()

    # ------------------------------------------------------------------
    def _draw_target(self) -> int:
        """Draw the intended stint length for the next stint.

        Aggressive teams stop earlier (fresh tires), conservative teams
        stretch fuel; both stay inside the physical window.  The result is
        the bell-shaped "normal pit" stint distribution of Fig. 4(a).
        """
        frac = 0.72 + 0.2 * (1.0 - self.driver.aggression)
        mean = frac * self.window
        target = self.rng.normal(mean, 0.06 * self.window)
        return int(np.clip(round(target), 8, self.window))

    def reset_stint(self) -> None:
        """Called right after a pit stop to plan the next stint."""
        self._target = self._draw_target()

    @property
    def target_stint(self) -> int:
        return self._target

    # ------------------------------------------------------------------
    def decide(self, pit_age: int, caution: bool, laps_remaining: int) -> PitDecision:
        """Decide whether to pit on the current lap.

        Parameters
        ----------
        pit_age:
            Number of laps since the previous pit stop (the current stint
            length so far).
        caution:
            Whether the current lap runs under yellow flag.
        laps_remaining:
            Laps to the finish; nobody pits when the remaining distance fits
            in the fuel left (end-of-race stretch).
        """
        if pit_age < 1:
            return PitDecision(False)
        # fuel to the end -> stay out
        if laps_remaining <= max(self.window - pit_age, 0) and laps_remaining <= self.window // 2:
            return PitDecision(False)
        # hard resource constraint: cannot exceed the fuel window
        if pit_age >= self.window:
            return PitDecision(True, "window")
        # unscheduled stop (mechanical niggle, puncture, penalty)
        if self.rng.random() < self.unscheduled_prob and pit_age >= 3:
            return PitDecision(True, "unscheduled")
        if caution:
            # opportunistic caution pit once sufficiently deep into the stint
            depth = pit_age / self.window
            if pit_age >= self.caution_pit_threshold:
                prob = 0.85
            elif depth > 0.25:
                prob = 0.25 + 0.5 * self.driver.aggression * depth
            else:
                prob = 0.02
            if self.rng.random() < prob:
                return PitDecision(True, "caution")
            return PitDecision(False)
        # normal green-flag strategy: ramp up around the per-stint target
        if pit_age >= self._target:
            return PitDecision(True, "window")
        gap = self._target - pit_age
        if gap <= 2 and self.rng.random() < 0.35:
            return PitDecision(True, "window")
        return PitDecision(False)

    # ------------------------------------------------------------------
    def service_time(self, caution: bool) -> float:
        """Total time lost to a pit stop relative to staying on track.

        The loss combines the pit-lane transit (speed-limited) and the
        stationary service, scaled by pit-crew quality.  Pitting under
        caution is much cheaper in *track position* because the field is
        circulating slowly; we model this with a reduced effective loss.
        """
        stationary = self.rng.normal(8.0, 1.0) * self.driver.pit_crew
        loss = self.track.pit_lane_loss_s + max(stationary, 4.0)
        if caution:
            loss *= 0.45
        return float(loss)
