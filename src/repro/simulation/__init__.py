"""Stochastic IndyCar race simulator.

This sub-package replaces the proprietary IndyCar timing & scoring telemetry
used by the paper (see DESIGN.md §2 for the substitution rationale).  It
produces per-lap records with exactly the columns of Fig. 1(a) — rank, lap
time, time behind leader, lap status (pit) and track status (caution) — with
the causal structure the forecasting models must learn: fuel-window-bounded
stints, opportunistic caution pits, field compression under yellow flags and
pit-stop-driven rank changes.
"""

from .caution import CautionEvent, CautionGenerator
from .driver import DriverProfile, generate_field
from .pit import PitDecision, PitStrategy
from .race import RaceSimulator, simulate_race
from .season import (
    DatasetSplit,
    RacingDataset,
    TEST_YEARS,
    VALIDATION_YEARS,
    generate_dataset,
    generate_event_dataset,
)
from .telemetry import CarLaps, LapRecord, RaceTelemetry
from .track import EVENT_YEARS, TRACKS, TrackSpec, list_events, track_for_year


def __getattr__(name: str):
    # lazy: ``live`` pulls in the feature pipeline and the serving engine,
    # which themselves import this package (telemetry) — importing it here
    # eagerly would create a cycle during package initialisation.
    if name == "LiveRaceForecaster":
        from .live import LiveRaceForecaster

        return LiveRaceForecaster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LiveRaceForecaster",
    "CautionEvent",
    "CautionGenerator",
    "DriverProfile",
    "generate_field",
    "PitDecision",
    "PitStrategy",
    "RaceSimulator",
    "simulate_race",
    "DatasetSplit",
    "RacingDataset",
    "TEST_YEARS",
    "VALIDATION_YEARS",
    "generate_dataset",
    "generate_event_dataset",
    "CarLaps",
    "LapRecord",
    "RaceTelemetry",
    "EVENT_YEARS",
    "TRACKS",
    "TrackSpec",
    "list_events",
    "track_for_year",
]
