"""Track catalogue for the simulated IndyCar superspeedway events.

The events, lap counts, track lengths and average speeds follow Table II of
the paper.  A couple of events changed their race distance between seasons
(Iowa ran 300 laps in 2019, Pocono ran 200 laps in 2018, Texas 248 laps from
2018); :func:`track_for_year` applies those per-season overrides so that the
generated dataset matches the shape of the real one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

__all__ = ["TrackSpec", "TRACKS", "EVENT_YEARS", "track_for_year", "list_events"]


@dataclass(frozen=True)
class TrackSpec:
    """Static description of a race track / event configuration."""

    name: str
    length_miles: float
    shape: str
    total_laps: int
    avg_speed_mph: float
    num_cars: int
    pit_lane_loss_s: float
    caution_speed_factor: float = 2.0

    @property
    def base_lap_time_s(self) -> float:
        """Green-flag lap time implied by the average speed (seconds)."""
        return self.length_miles / self.avg_speed_mph * 3600.0

    @property
    def caution_lap_time_s(self) -> float:
        """Lap time behind the pace car."""
        return self.base_lap_time_s * self.caution_speed_factor

    @property
    def fuel_window_laps(self) -> int:
        """Maximum green-flag stint length permitted by the fuel tank / tires.

        The paper observes (§III-A, Fig. 4) that no car runs more than ~50
        laps on the 2.5-mile Indy500 oval before pitting; shorter tracks
        allow proportionally more laps for the same fuel load.
        """
        return int(round(50 * 2.5 / self.length_miles))


# Event catalogue (Table II).  ``num_cars`` is the typical field size.
TRACKS: Dict[str, TrackSpec] = {
    "Indy500": TrackSpec(
        name="Indy500",
        length_miles=2.5,
        shape="oval",
        total_laps=200,
        avg_speed_mph=175.0,
        num_cars=33,
        pit_lane_loss_s=46.0,
    ),
    "Iowa": TrackSpec(
        name="Iowa",
        length_miles=0.894,
        shape="oval",
        total_laps=250,
        avg_speed_mph=135.0,
        num_cars=22,
        pit_lane_loss_s=28.0,
    ),
    "Pocono": TrackSpec(
        name="Pocono",
        length_miles=2.5,
        shape="triangle",
        total_laps=160,
        avg_speed_mph=135.0,
        num_cars=22,
        pit_lane_loss_s=44.0,
    ),
    "Texas": TrackSpec(
        name="Texas",
        length_miles=1.455,
        shape="oval",
        total_laps=228,
        avg_speed_mph=153.0,
        num_cars=22,
        pit_lane_loss_s=34.0,
    ),
}

# Seasons present in the paper's dataset (Table II usage column).
EVENT_YEARS: Dict[str, List[int]] = {
    "Indy500": [2013, 2014, 2015, 2016, 2017, 2018, 2019],
    "Iowa": [2013, 2015, 2016, 2017, 2018, 2019],
    "Pocono": [2013, 2015, 2016, 2017, 2018],
    "Texas": [2013, 2014, 2015, 2016, 2017, 2018, 2019],
}

# (event, year) -> total laps override
_LAP_OVERRIDES: Dict[Tuple[str, int], int] = {
    ("Iowa", 2019): 300,
    ("Pocono", 2018): 200,
    ("Texas", 2018): 248,
    ("Texas", 2019): 248,
}


def list_events() -> List[str]:
    """Names of the supported events."""
    return sorted(TRACKS)


def track_for_year(event: str, year: int) -> TrackSpec:
    """Track specification for a given event season, with per-year overrides."""
    try:
        spec = TRACKS[event]
    except KeyError as exc:
        raise KeyError(f"unknown event {event!r}; known events: {list_events()}") from exc
    laps = _LAP_OVERRIDES.get((event, year))
    if laps is not None:
        spec = replace(spec, total_laps=laps)
    return spec
