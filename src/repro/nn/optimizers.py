"""Gradient-based optimizers (SGD with momentum, ADAM) and gradient clipping.

The paper trains RankNet with ADAM at learning rate 1e-3 with a
reduce-on-plateau decay of factor 0.5 (Table IV); both pieces are provided
here (decay lives in :mod:`repro.nn.schedulers`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for monitoring exploding
    gradients in the recurrent models).
    """
    total = 0.0
    for p in parameters:
        total += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(total))
    if max_norm > 0.0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in parameters:
            p.grad *= scale
    return norm


class Optimizer:
    """Base class holding a parameter list and the current learning rate.

    Optimizers expose ``state_dict``/``load_state_dict`` so an interrupted
    training run can resume bit-exactly: the scalar hyper-state goes into a
    JSON-safe dict and the per-parameter buffers (e.g. the ADAM moments)
    into a list of arrays aligned with the optimizer's parameter order.
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def _slot_names(self) -> List[str]:
        """Names of the per-parameter buffer groups (e.g. ``["m", "v"]``)."""
        return []

    def _get_slot(self, name: str, param: Parameter) -> np.ndarray:
        raise KeyError(name)  # pragma: no cover - overridden with slots

    def _set_slot(self, name: str, param: Parameter, value: np.ndarray) -> None:
        raise KeyError(name)  # pragma: no cover - overridden with slots

    def state_dict(self) -> Dict:
        """JSON-safe scalars plus per-parameter buffers (parameter order)."""
        slots = {
            name: [self._get_slot(name, p).copy() for p in self.parameters]
            for name in self._slot_names()
        }
        return {"lr": self.lr, "slots": slots}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        for name, buffers in state.get("slots", {}).items():
            if name not in self._slot_names():
                raise KeyError(f"unknown optimizer slot {name!r}")
            if len(buffers) != len(self.parameters):
                raise ValueError(
                    f"slot {name!r} has {len(buffers)} buffers for "
                    f"{len(self.parameters)} parameters"
                )
            for p, value in zip(self.parameters, buffers):
                value = np.asarray(value, dtype=np.float64)
                if value.shape != p.data.shape:
                    raise ValueError(
                        f"slot {name!r} shape mismatch: expected {p.data.shape}, "
                        f"got {value.shape}"
                    )
                self._set_slot(name, p, value.copy())


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def _slot_names(self) -> List[str]:
        return ["velocity"] if self.momentum > 0.0 else []

    def _get_slot(self, name: str, param: Parameter) -> np.ndarray:
        v = self._velocity.get(id(param))
        return v if v is not None else np.zeros_like(param.data)

    def _set_slot(self, name: str, param: Parameter, value: np.ndarray) -> None:
        self._velocity[id(param)] = value

    def step(self) -> None:
        for p in self.parameters:
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.data
            if self.momentum > 0.0:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v - self.lr * grad
                self._velocity[id(p)] = v
                p.data += v
            else:
                p.data -= self.lr * grad


class Adam(Optimizer):
    """ADAM optimizer (Kingma & Ba, 2014)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def _slot_names(self) -> List[str]:
        return ["m", "v"]

    def _get_slot(self, name: str, param: Parameter) -> np.ndarray:
        store = self._m if name == "m" else self._v
        value = store.get(id(param))
        return value if value is not None else np.zeros_like(param.data)

    def _set_slot(self, name: str, param: Parameter, value: np.ndarray) -> None:
        store = self._m if name == "m" else self._v
        store[id(param)] = value

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state["t"] = self._t
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._t = int(state.get("t", 0))

    def step(self) -> None:
        self._t += 1
        bias_c1 = 1.0 - self.beta1 ** self._t
        bias_c2 = 1.0 - self.beta2 ** self._t
        for p in self.parameters:
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / bias_c1
            v_hat = v / bias_c2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
