"""A compact NumPy deep-learning framework.

This sub-package provides everything the RankNet reproduction needs to train
DeepAR-style probabilistic encoder–decoder forecasters without an external
deep-learning dependency: parameters/modules, dense/embedding/recurrent/
attention layers, Gaussian likelihood heads, losses, optimisers, learning
rate schedules and a generic training loop.
"""

from .activations import (
    Activation,
    get_activation,
    identity,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    softplus,
    tanh,
)
from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    load_checkpoint,
    read_npz,
    restore_rng,
    rng_from_state,
    rng_state,
    save_checkpoint,
    write_npz,
)
from .attention import (
    MultiHeadAttention,
    PositionwiseFeedForward,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    sinusoidal_positional_encoding,
)
from .distributions import GaussianOutput, GaussianParams, gaussian_quantile, gaussian_sample
from .gradcheck import check_parameter_gradients, numerical_gradient, relative_error
from .gru import GRUCell, StackedGRU
from .inference import (
    GaussianHeadInference,
    GRUStackInference,
    LSTMStackInference,
    MultiGaussianHeadInference,
    concat_states,
    head_inference,
    recurrent_inference,
    slice_states,
    stable_matmul,
    tile_states,
)
from .student_t import StudentTOutput, StudentTParams, student_t_nll
from .layers import (
    MLP,
    Dense,
    Dropout,
    Embedding,
    LayerNorm,
    MultiGaussianOutput,
    Sequential,
)
from .losses import gaussian_nll, gaussian_nll_seq, mae_loss, mse_loss, quantile_loss
from .module import Module, Parameter
from .optimizers import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import LSTMCell, StackedLSTM
from .schedulers import EarlyStopping, ReduceLROnPlateau, StepDecay
from .trainer import Trainer, TrainingHistory

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "load_checkpoint",
    "read_npz",
    "restore_rng",
    "rng_from_state",
    "rng_state",
    "save_checkpoint",
    "write_npz",
    "Activation",
    "get_activation",
    "identity",
    "log_softmax",
    "relu",
    "sigmoid",
    "softmax",
    "softplus",
    "tanh",
    "MultiHeadAttention",
    "PositionwiseFeedForward",
    "TransformerDecoderLayer",
    "TransformerEncoderLayer",
    "causal_mask",
    "sinusoidal_positional_encoding",
    "GaussianOutput",
    "GaussianParams",
    "gaussian_quantile",
    "gaussian_sample",
    "check_parameter_gradients",
    "numerical_gradient",
    "relative_error",
    "GRUCell",
    "StackedGRU",
    "GaussianHeadInference",
    "GRUStackInference",
    "LSTMStackInference",
    "MultiGaussianHeadInference",
    "concat_states",
    "head_inference",
    "recurrent_inference",
    "slice_states",
    "stable_matmul",
    "tile_states",
    "StudentTOutput",
    "StudentTParams",
    "student_t_nll",
    "MLP",
    "Dense",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "MultiGaussianOutput",
    "Sequential",
    "gaussian_nll",
    "gaussian_nll_seq",
    "mae_loss",
    "mse_loss",
    "quantile_loss",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "LSTMCell",
    "StackedLSTM",
    "EarlyStopping",
    "ReduceLROnPlateau",
    "StepDecay",
    "Trainer",
    "TrainingHistory",
]
