"""Weight initialization schemes used throughout the framework."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "orthogonal",
    "lstm_bias",
]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def uniform(shape, scale: float = 0.05, rng=None) -> np.ndarray:
    return _rng(rng).uniform(-scale, scale, size=shape)


def normal(shape, std: float = 0.05, rng=None) -> np.ndarray:
    return _rng(rng).normal(0.0, std, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape, rng=None) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng(rng).uniform(-limit, limit, size=shape)


def xavier_normal(shape, rng=None) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _rng(rng).normal(0.0, std, size=shape)


def he_uniform(shape, rng=None) -> np.ndarray:
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _rng(rng).uniform(-limit, limit, size=shape)


def he_normal(shape, rng=None) -> np.ndarray:
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return _rng(rng).normal(0.0, std, size=shape)


def orthogonal(shape, gain: float = 1.0, rng=None) -> np.ndarray:
    """Orthogonal initialization (used for recurrent weight matrices)."""
    if len(shape) < 2:
        raise ValueError("orthogonal init requires at least a 2-D shape")
    rows, cols = shape[0], int(np.prod(shape[1:]))
    flat = _rng(rng).normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    q = q[:rows, :cols] if rows >= cols else q[:cols, :rows].T
    return gain * q.reshape(shape)


def lstm_bias(hidden_size: int, forget_bias: float = 1.0) -> np.ndarray:
    """LSTM bias with the forget gate initialised to ``forget_bias``.

    Gate order is ``[input, forget, cell, output]`` to match
    :class:`repro.nn.recurrent.LSTMCell`.
    """
    b = np.zeros(4 * hidden_size, dtype=np.float64)
    b[hidden_size : 2 * hidden_size] = forget_bias
    return b
