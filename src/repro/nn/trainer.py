"""Generic mini-batch training loop implementing Algorithm 1 of the paper.

The :class:`Trainer` works with any model exposing

* ``loss_and_backward(batch) -> float`` — compute the training loss for a
  batch, back-propagate into parameter ``grad`` buffers; and
* ``validation_loss(batch) -> float`` — forward-only loss for validation.

Training follows the recipe in Table IV / §IV-C: ADAM optimiser, mini-batch
updates, reduce-on-plateau learning-rate decay and early stopping on the
validation loss.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Protocol

import numpy as np

from .checkpoint import load_checkpoint, save_checkpoint
from .module import Module
from .optimizers import Adam, Optimizer, clip_grad_norm
from .schedulers import EarlyStopping, ReduceLROnPlateau

__all__ = ["TrainableModel", "TrainingHistory", "Trainer"]


class TrainableModel(Protocol):
    """Structural protocol for models usable with :class:`Trainer`."""

    def loss_and_backward(self, batch: Dict[str, np.ndarray]) -> float: ...

    def validation_loss(self, batch: Dict[str, np.ndarray]) -> float: ...

    def parameters(self): ...

    def zero_grad(self) -> None: ...

    def train(self, flag: bool = True): ...

    def eval(self): ...


@dataclass
class TrainingHistory:
    """Per-epoch record of the training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)
    grad_norm: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    stopped_early: bool = False

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Mini-batch trainer with validation-driven LR decay and early stopping.

    When ``checkpoint_dir`` is set, the full training state — model weights,
    ADAM moments and step count, scheduler / early-stopping counters, the
    best-so-far weights and (optionally) the data-order RNG stream — is
    snapshotted to ``<checkpoint_dir>/trainer.npz`` after every
    ``checkpoint_every``-th epoch.  A later run constructed with
    ``resume=True`` picks up from the last completed epoch and reproduces
    the uninterrupted run bit-exactly, provided the batch streams draw their
    shuffling randomness from the generator passed as ``checkpoint_rng``.
    """

    CHECKPOINT_NAME = "trainer.npz"

    def __init__(
        self,
        model: TrainableModel,
        optimizer: Optional[Optimizer] = None,
        lr: float = 1e-3,
        max_epochs: int = 50,
        clip_norm: float = 10.0,
        lr_decay_factor: float = 0.5,
        lr_patience: int = 10,
        early_stopping_patience: int = 20,
        min_lr: float = 1e-5,
        restore_best: bool = True,
        verbose: bool = False,
        callback: Optional[Callable[[int, TrainingHistory], None]] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        checkpoint_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        self.max_epochs = int(max_epochs)
        self.clip_norm = float(clip_norm)
        self.scheduler = ReduceLROnPlateau(
            self.optimizer, factor=lr_decay_factor, patience=lr_patience, min_lr=min_lr
        )
        self.early_stopping = EarlyStopping(patience=early_stopping_patience)
        self.restore_best = bool(restore_best)
        self.verbose = bool(verbose)
        self.callback = callback
        self.checkpoint_dir = checkpoint_dir
        self.resume = bool(resume)
        self.checkpoint_every = max(int(checkpoint_every), 1)
        self.checkpoint_rng = checkpoint_rng
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, self.CHECKPOINT_NAME)

    def _save_checkpoint(
        self,
        next_epoch: int,
        history: TrainingHistory,
        best_state: Optional[Dict[str, np.ndarray]],
    ) -> None:
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        extra: Dict[str, np.ndarray] = {
            "history/train_loss": np.asarray(history.train_loss, dtype=np.float64),
            "history/val_loss": np.asarray(history.val_loss, dtype=np.float64),
            "history/learning_rate": np.asarray(history.learning_rate, dtype=np.float64),
            "history/grad_norm": np.asarray(history.grad_norm, dtype=np.float64),
        }
        if best_state is not None:
            for name, value in best_state.items():
                extra[f"best/{name}"] = value
        save_checkpoint(
            self.checkpoint_path,
            model=self.model if isinstance(self.model, Module) else None,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            early_stopping=self.early_stopping,
            rng=self.checkpoint_rng,
            extra_arrays=extra,
            meta={
                "next_epoch": int(next_epoch),
                "best_epoch": int(history.best_epoch),
                "best_val_loss": float(history.best_val_loss),
                "stopped_early": bool(history.stopped_early),
                "has_best": best_state is not None,
            },
        )

    def _load_checkpoint(self, history: TrainingHistory):
        """Restore trainer state in place; returns ``(next_epoch, best_state)``."""
        loaded = load_checkpoint(
            self.checkpoint_path,
            model=self.model if isinstance(self.model, Module) else None,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            early_stopping=self.early_stopping,
            rng=self.checkpoint_rng,
        )
        meta, extra = loaded["meta"], loaded["arrays"]
        history.train_loss[:] = [float(x) for x in extra["history/train_loss"]]
        history.val_loss[:] = [float(x) for x in extra["history/val_loss"]]
        history.learning_rate[:] = [float(x) for x in extra["history/learning_rate"]]
        history.grad_norm[:] = [float(x) for x in extra["history/grad_norm"]]
        history.best_epoch = int(meta["best_epoch"])
        history.best_val_loss = float(meta["best_val_loss"])
        history.stopped_early = bool(meta["stopped_early"])
        best_state: Optional[Dict[str, np.ndarray]] = None
        if meta.get("has_best"):
            prefix = "best/"
            best_state = {
                key[len(prefix) :]: value
                for key, value in extra.items()
                if key.startswith(prefix)
            }
        return int(meta["next_epoch"]), best_state

    def fit(
        self,
        train_batches: Callable[[], Iterable[Dict[str, np.ndarray]]],
        val_batches: Optional[Callable[[], Iterable[Dict[str, np.ndarray]]]] = None,
    ) -> TrainingHistory:
        """Train the model.

        Parameters
        ----------
        train_batches, val_batches:
            Zero-argument callables returning a fresh iterable of batches
            (dicts of arrays) for each epoch, e.g. a bound method of a
            :class:`repro.data.loader.BatchLoader`.
        """
        history = TrainingHistory()
        best_state: Optional[Dict[str, np.ndarray]] = None
        start_epoch = 0
        if self.resume and self.checkpoint_path and os.path.exists(self.checkpoint_path):
            start_epoch, best_state = self._load_checkpoint(history)

        for epoch in range(start_epoch, self.max_epochs):
            if history.stopped_early:
                break
            self.model.train(True)
            epoch_losses: List[float] = []
            epoch_norms: List[float] = []
            for batch in train_batches():
                self.model.zero_grad()
                loss = self.model.loss_and_backward(batch)
                norm = clip_grad_norm(self.optimizer.parameters, self.clip_norm)
                self.optimizer.step()
                epoch_losses.append(float(loss))
                epoch_norms.append(norm)
            train_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")

            if val_batches is not None:
                self.model.eval()
                val_losses = [
                    float(self.model.validation_loss(batch)) for batch in val_batches()
                ]
                val_loss = float(np.mean(val_losses)) if val_losses else train_loss
            else:
                val_loss = train_loss

            history.train_loss.append(train_loss)
            history.val_loss.append(val_loss)
            history.grad_norm.append(float(np.mean(epoch_norms)) if epoch_norms else 0.0)
            history.learning_rate.append(self.optimizer.lr)

            if val_loss < history.best_val_loss:
                history.best_val_loss = val_loss
                history.best_epoch = epoch
                if self.restore_best and isinstance(self.model, Module):
                    best_state = self.model.state_dict()

            self.scheduler.step(val_loss)
            if self.callback is not None:
                self.callback(epoch, history)
            if self.verbose:  # pragma: no cover - logging only
                print(
                    f"epoch {epoch:3d}  train={train_loss:.4f}  val={val_loss:.4f}  "
                    f"lr={self.optimizer.lr:.2e}"
                )
            if self.early_stopping.step(val_loss):
                history.stopped_early = True
            if self.checkpoint_dir is not None and (
                history.stopped_early
                or (epoch + 1) % self.checkpoint_every == 0
                or epoch + 1 == self.max_epochs
            ):
                self._save_checkpoint(epoch + 1, history, best_state)
            if history.stopped_early:
                break

        if self.restore_best and best_state is not None and isinstance(self.model, Module):
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history
