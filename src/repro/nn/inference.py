"""Inference-only kernels for the fleet-batched forecasting engine.

Training uses the caching ``step``/``step_backward`` machinery of the
recurrent stacks; Monte-Carlo forecasting needs neither gradients nor
caches, so the serving engine runs on the fused, cache-free kernels in this
module instead.  They read the *same* parameters as the training modules —
no weights are copied — and add one crucial property the raw BLAS path does
not have: **batch-size invariance**.

BLAS GEMM picks different blocking (and therefore different floating-point
summation orders) for different numbers of rows, so ``(x @ W)[i]`` is not
bitwise reproducible across batch sizes.  The fleet engine flattens
``cars x n_samples`` into one batch dimension, which would make a batched
forecast differ in the last bits from the same forecast computed one car at
a time.  :func:`stable_matmul` removes the dependence by always multiplying
fixed-size row blocks (padding the last block with zeros), so every row's
result only depends on the row's contents — a fleet-batched forecast is
byte-identical to a single-request forecast given the same RNG streams.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .activations import sigmoid, softplus
from .distributions import GaussianOutput
from .gru import StackedGRU
from .kernels import STABLE_CHUNK_ROWS, stable_matmul
from .layers import MultiGaussianOutput
from .precision import working_array, working_empty
from .recurrent import StackedLSTM

__all__ = [
    "STABLE_CHUNK_ROWS",
    "stable_matmul",
    "tile_states",
    "slice_states",
    "concat_states",
    "LSTMStackInference",
    "GRUStackInference",
    "GaussianHeadInference",
    "MultiGaussianHeadInference",
    "recurrent_inference",
    "head_inference",
]


# ----------------------------------------------------------------------
# state utilities (work on both LSTM (h, c) pairs and GRU h arrays)
# ----------------------------------------------------------------------
_State = Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]


def _map_state(state: _State, fn) -> _State:
    if isinstance(state, tuple):
        return tuple(fn(part) for part in state)
    return fn(state)


def tile_states(states: Sequence[_State], counts: Union[int, np.ndarray]) -> List[_State]:
    """Replicate each batch row of every layer state ``counts`` times."""
    return [_map_state(s, lambda a: np.repeat(a, counts, axis=0)) for s in states]


def slice_states(states: Sequence[_State], index) -> List[_State]:
    """Select batch rows (an index array or slice) from every layer state."""
    return [_map_state(s, lambda a: np.ascontiguousarray(a[index])) for s in states]


def concat_states(states_list: Sequence[Sequence[_State]]) -> List[_State]:
    """Concatenate the batch dimension of several compatible state lists."""
    if not states_list:
        raise ValueError("need at least one state list to concatenate")
    num_layers = len(states_list[0])
    out: List[_State] = []
    for layer in range(num_layers):
        parts = [states[layer] for states in states_list]
        if isinstance(parts[0], tuple):
            out.append(
                tuple(np.concatenate([p[i] for p in parts], axis=0) for i in range(len(parts[0])))
            )
        else:
            out.append(np.concatenate(parts, axis=0))
    return out


# ----------------------------------------------------------------------
# cache-free recurrent stacks
# ----------------------------------------------------------------------
class LSTMStackInference:
    """Cache-free, dropout-free forward stepping over a :class:`StackedLSTM`.

    Shares the stack's parameters by reference; safe to use concurrently
    with training as long as steps and weight updates do not interleave.

    ``dtype`` is the compute precision (default: the float64 reference).
    A non-default dtype expects a stack whose parameters were converted to
    that dtype (:func:`repro.nn.precision.convert_module`) so no kernel
    silently upcasts.
    """

    def __init__(self, stack: StackedLSTM, dtype=np.float64) -> None:
        self.stack = stack
        self.dtype = np.dtype(dtype)

    def zero_state(self, batch_size: int) -> List[Tuple[np.ndarray, np.ndarray]]:
        return self.stack.zero_state(batch_size, dtype=self.dtype)

    def step(self, x: np.ndarray, states: Sequence[Tuple[np.ndarray, np.ndarray]]):
        h = working_array(x, dtype=self.dtype)
        new_states: List[Tuple[np.ndarray, np.ndarray]] = []
        for cell, (h_prev, c_prev) in zip(self.stack.cells, states):
            gates = (
                stable_matmul(h, cell.w_x.data, dtype=self.dtype)
                + stable_matmul(h_prev, cell.w_h.data, dtype=self.dtype)
                + cell.bias.data
            )
            hd = cell.hidden_dim
            i = sigmoid(gates[:, 0 * hd : 1 * hd])
            f = sigmoid(gates[:, 1 * hd : 2 * hd])
            g = np.tanh(gates[:, 2 * hd : 3 * hd])
            o = sigmoid(gates[:, 3 * hd : 4 * hd])
            c = f * c_prev + i * g
            h = o * np.tanh(c)
            new_states.append((h, c))
        return h, new_states

    def forward_sequence(
        self,
        x: np.ndarray,
        states: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """Fused teacher-forced pass over ``(B, T, input_dim)``.

        Layer-major: each layer's input projections for all ``T`` steps run
        as one fused :func:`stable_matmul`, so only the recurrent product
        remains per-step.  Because every row of a ``stable_matmul`` result
        depends only on that row, the outputs are **bitwise identical** to
        stepping the sequence through :meth:`step` one lap at a time.
        Returns the top-layer hidden sequence and the final states.
        """
        h_seq = working_array(x, dtype=self.dtype)
        batch, steps, _ = h_seq.shape
        if states is None:
            states = self.zero_state(batch)
        new_states: List[Tuple[np.ndarray, np.ndarray]] = []
        for cell, (h, c) in zip(self.stack.cells, states):
            hd = cell.hidden_dim
            x_proj = stable_matmul(
                h_seq.reshape(batch * steps, h_seq.shape[-1]), cell.w_x.data, dtype=self.dtype
            ).reshape(batch, steps, 4 * hd)
            out = working_empty((batch, steps, hd), dtype=self.dtype)
            for t in range(steps):
                gates = (
                    x_proj[:, t, :]
                    + stable_matmul(h, cell.w_h.data, dtype=self.dtype)
                    + cell.bias.data
                )
                i = sigmoid(gates[:, 0 * hd : 1 * hd])
                f = sigmoid(gates[:, 1 * hd : 2 * hd])
                g = np.tanh(gates[:, 2 * hd : 3 * hd])
                o = sigmoid(gates[:, 3 * hd : 4 * hd])
                c = f * c + i * g
                h = o * np.tanh(c)
                out[:, t, :] = h
            new_states.append((h, c))
            h_seq = out
        return h_seq, new_states


class GRUStackInference:
    """Cache-free forward stepping over a :class:`StackedGRU`.

    ``dtype`` selects the compute precision, exactly as in
    :class:`LSTMStackInference`.
    """

    def __init__(self, stack: StackedGRU, dtype=np.float64) -> None:
        self.stack = stack
        self.dtype = np.dtype(dtype)

    def zero_state(self, batch_size: int) -> List[np.ndarray]:
        return self.stack.zero_state(batch_size, dtype=self.dtype)

    def step(self, x: np.ndarray, states: Sequence[np.ndarray]):
        h = working_array(x, dtype=self.dtype)
        new_states: List[np.ndarray] = []
        for cell, h_prev in zip(self.stack.cells, states):
            gates = (
                stable_matmul(h, cell.w_x_gates.data, dtype=self.dtype)
                + stable_matmul(h_prev, cell.w_h_gates.data, dtype=self.dtype)
                + cell.b_gates.data
            )
            hd = cell.hidden_dim
            r = sigmoid(gates[:, :hd])
            u = sigmoid(gates[:, hd:])
            h_proj = stable_matmul(h_prev, cell.w_h_cand.data, dtype=self.dtype)
            n = np.tanh(
                stable_matmul(h, cell.w_x_cand.data, dtype=self.dtype)
                + r * h_proj
                + cell.b_cand.data
            )
            h = (1.0 - u) * n + u * h_prev
            new_states.append(h)
        return h, new_states

    def forward_sequence(
        self, x: np.ndarray, states: Optional[Sequence[np.ndarray]] = None
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Fused teacher-forced pass (see ``LSTMStackInference.forward_sequence``)."""
        h_seq = working_array(x, dtype=self.dtype)
        batch, steps, _ = h_seq.shape
        if states is None:
            states = self.zero_state(batch)
        new_states: List[np.ndarray] = []
        for cell, h in zip(self.stack.cells, states):
            hd = cell.hidden_dim
            flat = h_seq.reshape(batch * steps, h_seq.shape[-1])
            gates_x = stable_matmul(flat, cell.w_x_gates.data, dtype=self.dtype).reshape(
                batch, steps, 2 * hd
            )
            cand_x = stable_matmul(flat, cell.w_x_cand.data, dtype=self.dtype).reshape(
                batch, steps, hd
            )
            out = working_empty((batch, steps, hd), dtype=self.dtype)
            for t in range(steps):
                gates = (
                    gates_x[:, t, :]
                    + stable_matmul(h, cell.w_h_gates.data, dtype=self.dtype)
                    + cell.b_gates.data
                )
                r = sigmoid(gates[:, :hd])
                u = sigmoid(gates[:, hd:])
                h_proj = stable_matmul(h, cell.w_h_cand.data, dtype=self.dtype)
                n = np.tanh(cand_x[:, t, :] + r * h_proj + cell.b_cand.data)
                h = (1.0 - u) * n + u * h
                out[:, t, :] = h
            new_states.append(h)
            h_seq = out
        return h_seq, new_states


def recurrent_inference(stack, dtype=np.float64) -> Union[LSTMStackInference, GRUStackInference]:
    """Build the matching cache-free stepper for a recurrent stack."""
    if isinstance(stack, StackedLSTM):
        return LSTMStackInference(stack, dtype=dtype)
    if isinstance(stack, StackedGRU):
        return GRUStackInference(stack, dtype=dtype)
    raise TypeError(f"unsupported recurrent stack: {type(stack).__name__}")


class GaussianHeadInference:
    """Cache-free ``(mu, sigma)`` projection sharing a head's parameters."""

    def __init__(self, head: GaussianOutput, dtype=np.float64) -> None:
        self.head = head
        self.dtype = np.dtype(dtype)

    def __call__(self, h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        head = self.head
        mu = (
            stable_matmul(h, head.mu_head.weight.data, dtype=self.dtype)[:, 0]
            + head.mu_head.bias.data[0]
        )
        pre = (
            stable_matmul(h, head.sigma_head.weight.data, dtype=self.dtype)[:, 0]
            + head.sigma_head.bias.data[0]
        )
        sigma = softplus(pre) + head.sigma_floor
        return mu, sigma


class MultiGaussianHeadInference:
    """Cache-free ``(mu, sigma)`` projection for a fused multi-dim head.

    One ``(H, 2D)`` :func:`stable_matmul` per call; returns ``(B, D)``
    arrays covering every target dimension at once.
    """

    def __init__(self, head: MultiGaussianOutput, dtype=np.float64) -> None:
        self.head = head
        self.dtype = np.dtype(dtype)

    def __call__(self, h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        head = self.head
        out = stable_matmul(h, head.weight.data, dtype=self.dtype) + head.bias.data
        d = head.target_dim
        mu = out[:, :d]
        sigma = softplus(out[:, d:]) + head.sigma_floor
        return mu, sigma


def head_inference(head, dtype=np.float64) -> Union[GaussianHeadInference, MultiGaussianHeadInference]:
    """Build the matching cache-free projection for a Gaussian head module."""
    if isinstance(head, MultiGaussianOutput):
        return MultiGaussianHeadInference(head, dtype=dtype)
    if isinstance(head, GaussianOutput):
        return GaussianHeadInference(head, dtype=dtype)
    raise TypeError(f"unsupported Gaussian head: {type(head).__name__}")
