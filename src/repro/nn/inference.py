"""Inference-only kernels for the fleet-batched forecasting engine.

Training uses the caching ``step``/``step_backward`` machinery of the
recurrent stacks; Monte-Carlo forecasting needs neither gradients nor
caches, so the serving engine runs on the fused, cache-free kernels in this
module instead.  They read the *same* parameters as the training modules —
no weights are copied — and add one crucial property the raw BLAS path does
not have: **batch-size invariance**.

BLAS GEMM picks different blocking (and therefore different floating-point
summation orders) for different numbers of rows, so ``(x @ W)[i]`` is not
bitwise reproducible across batch sizes.  The fleet engine flattens
``cars x n_samples`` into one batch dimension, which would make a batched
forecast differ in the last bits from the same forecast computed one car at
a time.  :func:`stable_matmul` removes the dependence by always multiplying
fixed-size row blocks (padding the last block with zeros), so every row's
result only depends on the row's contents — a fleet-batched forecast is
byte-identical to a single-request forecast given the same RNG streams.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from .activations import sigmoid, softplus
from .distributions import GaussianOutput
from .gru import StackedGRU
from .recurrent import StackedLSTM

__all__ = [
    "STABLE_CHUNK_ROWS",
    "stable_matmul",
    "tile_states",
    "slice_states",
    "concat_states",
    "LSTMStackInference",
    "GRUStackInference",
    "GaussianHeadInference",
    "recurrent_inference",
]

#: fixed GEMM row-block size; every matmul in the inference path runs on
#: exactly this many rows so results are independent of the batch size.
STABLE_CHUNK_ROWS = 256


def stable_matmul(x: np.ndarray, w: np.ndarray, chunk: int = STABLE_CHUNK_ROWS) -> np.ndarray:
    """``x @ w`` with batch-size-invariant per-row results.

    The rows of ``x`` are processed in blocks of exactly ``chunk`` rows (the
    final partial block is zero-padded), so the value computed for one row
    depends only on that row and ``w`` — not on how many other rows happen
    to share the batch.
    """
    x = np.ascontiguousarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    n = x.shape[0]
    out = np.empty((n, w.shape[1]), dtype=np.float64)
    for start in range(0, n, chunk):
        block = x[start : start + chunk]
        rows = block.shape[0]
        if rows == chunk:
            out[start : start + chunk] = block @ w
        else:
            padded = np.zeros((chunk, x.shape[1]), dtype=np.float64)
            padded[:rows] = block
            out[start : start + rows] = (padded @ w)[:rows]
    return out


# ----------------------------------------------------------------------
# state utilities (work on both LSTM (h, c) pairs and GRU h arrays)
# ----------------------------------------------------------------------
_State = Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]


def _map_state(state: _State, fn) -> _State:
    if isinstance(state, tuple):
        return tuple(fn(part) for part in state)
    return fn(state)


def tile_states(states: Sequence[_State], counts: Union[int, np.ndarray]) -> List[_State]:
    """Replicate each batch row of every layer state ``counts`` times."""
    return [_map_state(s, lambda a: np.repeat(a, counts, axis=0)) for s in states]


def slice_states(states: Sequence[_State], index) -> List[_State]:
    """Select batch rows (an index array or slice) from every layer state."""
    return [_map_state(s, lambda a: np.ascontiguousarray(a[index])) for s in states]


def concat_states(states_list: Sequence[Sequence[_State]]) -> List[_State]:
    """Concatenate the batch dimension of several compatible state lists."""
    if not states_list:
        raise ValueError("need at least one state list to concatenate")
    num_layers = len(states_list[0])
    out: List[_State] = []
    for layer in range(num_layers):
        parts = [states[layer] for states in states_list]
        if isinstance(parts[0], tuple):
            out.append(
                tuple(np.concatenate([p[i] for p in parts], axis=0) for i in range(len(parts[0])))
            )
        else:
            out.append(np.concatenate(parts, axis=0))
    return out


# ----------------------------------------------------------------------
# cache-free recurrent stacks
# ----------------------------------------------------------------------
class LSTMStackInference:
    """Cache-free, dropout-free forward stepping over a :class:`StackedLSTM`.

    Shares the stack's parameters by reference; safe to use concurrently
    with training as long as steps and weight updates do not interleave.
    """

    def __init__(self, stack: StackedLSTM) -> None:
        self.stack = stack

    def zero_state(self, batch_size: int) -> List[Tuple[np.ndarray, np.ndarray]]:
        return self.stack.zero_state(batch_size)

    def step(self, x: np.ndarray, states: Sequence[Tuple[np.ndarray, np.ndarray]]):
        h = np.asarray(x, dtype=np.float64)
        new_states: List[Tuple[np.ndarray, np.ndarray]] = []
        for cell, (h_prev, c_prev) in zip(self.stack.cells, states):
            gates = (
                stable_matmul(h, cell.w_x.data)
                + stable_matmul(h_prev, cell.w_h.data)
                + cell.bias.data
            )
            hd = cell.hidden_dim
            i = sigmoid(gates[:, 0 * hd : 1 * hd])
            f = sigmoid(gates[:, 1 * hd : 2 * hd])
            g = np.tanh(gates[:, 2 * hd : 3 * hd])
            o = sigmoid(gates[:, 3 * hd : 4 * hd])
            c = f * c_prev + i * g
            h = o * np.tanh(c)
            new_states.append((h, c))
        return h, new_states


class GRUStackInference:
    """Cache-free forward stepping over a :class:`StackedGRU`."""

    def __init__(self, stack: StackedGRU) -> None:
        self.stack = stack

    def zero_state(self, batch_size: int) -> List[np.ndarray]:
        return self.stack.zero_state(batch_size)

    def step(self, x: np.ndarray, states: Sequence[np.ndarray]):
        h = np.asarray(x, dtype=np.float64)
        new_states: List[np.ndarray] = []
        for cell, h_prev in zip(self.stack.cells, states):
            gates = (
                stable_matmul(h, cell.w_x_gates.data)
                + stable_matmul(h_prev, cell.w_h_gates.data)
                + cell.b_gates.data
            )
            hd = cell.hidden_dim
            r = sigmoid(gates[:, :hd])
            u = sigmoid(gates[:, hd:])
            h_proj = stable_matmul(h_prev, cell.w_h_cand.data)
            n = np.tanh(stable_matmul(h, cell.w_x_cand.data) + r * h_proj + cell.b_cand.data)
            h = (1.0 - u) * n + u * h_prev
            new_states.append(h)
        return h, new_states


def recurrent_inference(stack) -> Union[LSTMStackInference, GRUStackInference]:
    """Build the matching cache-free stepper for a recurrent stack."""
    if isinstance(stack, StackedLSTM):
        return LSTMStackInference(stack)
    if isinstance(stack, StackedGRU):
        return GRUStackInference(stack)
    raise TypeError(f"unsupported recurrent stack: {type(stack).__name__}")


class GaussianHeadInference:
    """Cache-free ``(mu, sigma)`` projection sharing a head's parameters."""

    def __init__(self, head: GaussianOutput) -> None:
        self.head = head

    def __call__(self, h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        head = self.head
        mu = stable_matmul(h, head.mu_head.weight.data)[:, 0] + head.mu_head.bias.data[0]
        pre = stable_matmul(h, head.sigma_head.weight.data)[:, 0] + head.sigma_head.bias.data[0]
        sigma = softplus(pre) + head.sigma_floor
        return mu, sigma
