"""Shared GEMM kernels used by both the training and the serving paths.

:func:`stable_matmul` lived in :mod:`repro.nn.inference` originally; it was
moved here so the recurrent training modules can run their fused
full-sequence input projections through the same batch-size-invariant
kernel without importing the (higher-level) inference module.
:mod:`repro.nn.inference` re-exports both names, so existing imports keep
working.
"""

from __future__ import annotations

import numpy as np

__all__ = ["STABLE_CHUNK_ROWS", "stable_matmul"]

#: fixed GEMM row-block size; every matmul in the inference path runs on
#: exactly this many rows so results are independent of the batch size.
STABLE_CHUNK_ROWS = 256


def stable_matmul(
    x: np.ndarray,
    w: np.ndarray,
    chunk: int = STABLE_CHUNK_ROWS,
    out: np.ndarray | None = None,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """``x @ w`` with batch-size-invariant per-row results.

    The rows of ``x`` are processed in blocks of exactly ``chunk`` rows (the
    final partial block is zero-padded), so the value computed for one row
    depends only on that row and ``w`` — not on how many other rows happen
    to share the batch.

    ``out`` (optional, ``(n, w.shape[1])`` C-contiguous, compute dtype)
    receives the result without allocating: full blocks are written by
    ``np.matmul`` directly into the output slice, which is bitwise identical
    to computing the block product into a temporary and copying it.  The
    decode engine uses this to keep its per-step gate buffers
    allocation-free.

    ``dtype`` selects the compute precision: explicit argument first, then
    ``out.dtype``, then the float64 reference — so every existing call site
    is bitwise unchanged while the low-precision tier runs the same kernel
    in float32 with no silent upcast.
    """
    if dtype is None:
        dtype = np.float64 if out is None else out.dtype
    x = np.ascontiguousarray(x, dtype=dtype)
    w = np.asarray(w, dtype=dtype)
    n = x.shape[0]
    if out is None:
        out = np.empty((n, w.shape[1]), dtype=dtype)
    for start in range(0, n, chunk):
        block = x[start : start + chunk]
        rows = block.shape[0]
        if rows == chunk:
            np.matmul(block, w, out=out[start : start + chunk])
        else:
            padded = np.zeros((chunk, x.shape[1]), dtype=dtype)
            padded[:rows] = block
            out[start : start + rows] = (padded @ w)[:rows]
    return out
