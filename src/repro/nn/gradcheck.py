"""Numerical gradient checking utilities used by the test-suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .module import Parameter

__all__ = ["numerical_gradient", "check_parameter_gradients", "relative_error"]


def relative_error(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    """Max element-wise relative error between two gradient arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), eps)
    return float(np.max(np.abs(a - b) / denom))


def numerical_gradient(
    fn: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array`` (in place perturbation)."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        f_plus = fn()
        array[idx] = original - eps
        f_minus = fn()
        array[idx] = original
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_parameter_gradients(
    loss_fn: Callable[[], float],
    parameters: Sequence[Parameter],
    analytic_grads: Sequence[np.ndarray],
    eps: float = 1e-6,
    tol: float = 1e-4,
) -> float:
    """Compare analytic parameter gradients against central differences.

    ``loss_fn`` must recompute the loss from scratch (no cached state) using
    the current parameter values.  Returns the worst relative error and
    raises ``AssertionError`` if it exceeds ``tol``.
    """
    worst = 0.0
    for param, analytic in zip(parameters, analytic_grads):
        numeric = numerical_gradient(loss_fn, param.data, eps=eps)
        err = relative_error(analytic, numeric)
        worst = max(worst, err)
        if err > tol:
            raise AssertionError(
                f"gradient check failed for {param.name or 'parameter'}: "
                f"relative error {err:.3e} > tol {tol:.1e}"
            )
    return worst
