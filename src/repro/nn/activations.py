"""Element-wise activation functions and their derivatives.

Every activation is exposed both as a pair of vectorised functions
(``f(x)`` and ``f_grad`` expressed in terms of the *output* where possible,
which is what the cached values in the layers hold) and as a lightweight
:class:`Activation` object usable inside :class:`repro.nn.layers.Dense`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

__all__ = [
    "sigmoid",
    "sigmoid_dense",
    "sigmoid_grad_from_output",
    "tanh",
    "tanh_grad_from_output",
    "relu",
    "relu_grad",
    "leaky_relu",
    "leaky_relu_grad",
    "softplus",
    "softplus_grad",
    "softmax",
    "log_softmax",
    "identity",
    "Activation",
    "get_activation",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Dtype-preserving on the float dtypes the precision tiers run
    (float32 stays float32); everything else computes in the float64
    reference precision, bitwise as before.
    """
    x = np.asarray(x)
    if x.dtype != np.float32:
        x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def sigmoid_dense(
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    scratch: Optional[tuple] = None,
) -> np.ndarray:
    """Bitwise-identical :func:`sigmoid` without boolean gather/scatter.

    ``exp(-|x|)`` equals ``exp(-x)`` on the non-negative branch and
    ``exp(x)`` on the negative branch, so both stable branches share one
    dense ``exp`` pass; the branch *numerator* (``1`` vs ``e``) is selected
    with an exact 0/1 arithmetic blend (``m + (1 - m) * e`` is exact for
    ``m`` in {0, 1}), so the per-element expression is exactly the one
    :func:`sigmoid` evaluates — the results agree bit for bit.  Replacing
    the masked fancy indexing with dense passes makes this ~3-5x faster on
    large arrays, which is why the byte-identity-gated decode kernels use
    it.  ``out`` may alias ``x``; ``scratch``, if given, must be two
    arrays of ``x``'s shape and compute dtype (none may alias ``x`` or
    ``out``) and makes the call allocation-free.  Like :func:`sigmoid`,
    float32 input stays float32 (the low-precision decode tier); any other
    dtype computes in the float64 reference precision, bitwise as before.
    """
    x = np.asarray(x)
    if x.dtype != np.float32:
        x = np.asarray(x, dtype=np.float64)
    if out is None:
        out = np.empty_like(x)
    if scratch is None:
        e, num = np.empty_like(out), np.empty_like(out)
    else:
        e, num = scratch
    np.abs(x, out=e)
    np.negative(e, out=e)
    np.exp(e, out=e)  # e = exp(-|x|): exp(-x) for x >= 0, exp(x) for x < 0
    # x is fully consumed above, so ``out`` may alias it from here on
    np.greater_equal(x, 0.0, out=out, casting="unsafe")  # m: 1.0 / 0.0
    np.subtract(1.0, out, out=num)
    np.multiply(num, e, out=num)
    np.add(out, num, out=num)  # numerator: 1 (non-negative) or e (negative)
    np.add(e, 1.0, out=e)  # shared denominator: 1 + exp(-|x|)
    np.divide(num, e, out=out)
    return out


def sigmoid_grad_from_output(y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad_from_output(y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(np.float64)


def leaky_relu(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    return np.where(x > 0.0, x, alpha * x)


def leaky_relu_grad(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    return np.where(x > 0.0, 1.0, alpha)


def softplus(x: np.ndarray) -> np.ndarray:
    """log(1 + exp(x)) computed without overflow."""
    return np.logaddexp(0.0, x)


def softplus_grad(x: np.ndarray) -> np.ndarray:
    return sigmoid(x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def identity(x: np.ndarray) -> np.ndarray:
    return x


class Activation:
    """Pairs a forward function with its input-space derivative.

    ``grad(x, y)`` receives both the cached input ``x`` and output ``y`` so
    that each activation can use whichever is cheaper.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray], np.ndarray],
        grad: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> None:
        self.name = name
        self.fn = fn
        self.grad = grad

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Activation({self.name})"


_REGISTRY: Dict[str, Activation] = {
    "identity": Activation("identity", identity, lambda x, y: np.ones_like(x)),
    "linear": Activation("linear", identity, lambda x, y: np.ones_like(x)),
    "sigmoid": Activation("sigmoid", sigmoid, lambda x, y: sigmoid_grad_from_output(y)),
    "tanh": Activation("tanh", tanh, lambda x, y: tanh_grad_from_output(y)),
    "relu": Activation("relu", relu, lambda x, y: relu_grad(x)),
    "leaky_relu": Activation("leaky_relu", leaky_relu, lambda x, y: leaky_relu_grad(x)),
    "softplus": Activation("softplus", softplus, lambda x, y: softplus_grad(x)),
}


def get_activation(name: Optional[str]) -> Activation:
    """Look up an activation by name (``None`` means identity)."""
    if name is None:
        return _REGISTRY["identity"]
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc
