"""Probabilistic output heads.

Following DeepAR (Salinas et al.) and the paper, the network does not emit a
point forecast directly: a projection of the hidden state parameterises a
predefined likelihood ``p(z | theta)``; training maximises the
log-likelihood of the observed targets and forecasting draws Monte-Carlo
samples from the predicted distribution.

For the real-valued rank/lap-time targets we use a Gaussian whose scale is
produced through a softplus so it is always positive:

    mu(h)    = W_mu^T  h + b_mu
    sigma(h) = softplus(W_sigma^T h + b_sigma)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activations import sigmoid, softplus
from .layers import Dense
from .module import Module

__all__ = ["GaussianParams", "GaussianOutput", "gaussian_sample", "gaussian_quantile"]

_SIGMA_FLOOR = 1e-4
_SQRT2 = np.sqrt(2.0)


@dataclass
class GaussianParams:
    """Parameters of a (diagonal) Gaussian predictive distribution."""

    mu: np.ndarray
    sigma: np.ndarray

    def sample(self, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        """Draw ``n_samples`` per entry; output shape is ``(n_samples,) + mu.shape``."""
        return gaussian_sample(self.mu, self.sigma, rng, n_samples)

    def quantile(self, q: float) -> np.ndarray:
        return gaussian_quantile(self.mu, self.sigma, q)


def gaussian_sample(
    mu: np.ndarray, sigma: np.ndarray, rng: np.random.Generator, n_samples: int = 1
) -> np.ndarray:
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    eps = rng.standard_normal((n_samples,) + mu.shape)
    return mu[None, ...] + sigma[None, ...] * eps


def gaussian_quantile(mu: np.ndarray, sigma: np.ndarray, q: float) -> np.ndarray:
    """Exact Gaussian quantile (uses the probit via scipy-free erfinv)."""
    from scipy.special import erfinv

    z = _SQRT2 * erfinv(2.0 * q - 1.0)
    return np.asarray(mu) + z * np.asarray(sigma)


class GaussianOutput(Module):
    """Projects hidden states to ``(mu, sigma)`` of a Gaussian likelihood."""

    def __init__(
        self,
        hidden_dim: int,
        rng: np.random.Generator | int | None = None,
        sigma_floor: float = _SIGMA_FLOOR,
        name: str = "gaussian_out",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.hidden_dim = int(hidden_dim)
        self.sigma_floor = float(sigma_floor)
        self.mu_head = Dense(hidden_dim, 1, activation=None, rng=rng, name=f"{name}.mu")
        self.sigma_head = Dense(hidden_dim, 1, activation=None, rng=rng, name=f"{name}.sigma")
        self._cache = []

    def forward(self, h: np.ndarray) -> GaussianParams:
        """``h`` has shape ``(..., hidden_dim)``; outputs have shape ``(...,)``."""
        mu = self.mu_head.forward(h)[..., 0]
        pre_sigma = self.sigma_head.forward(h)[..., 0]
        sigma = softplus(pre_sigma) + self.sigma_floor
        self._cache.append(pre_sigma)
        return GaussianParams(mu=mu, sigma=sigma)

    def backward(self, d_mu: np.ndarray, d_sigma: np.ndarray) -> np.ndarray:
        """Back-propagate gradients w.r.t. ``mu`` and ``sigma`` to the hidden state."""
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        pre_sigma = self._cache.pop()
        d_pre_sigma = np.asarray(d_sigma, dtype=np.float64) * sigmoid(pre_sigma)
        dh_sigma = self.sigma_head.backward(d_pre_sigma[..., None])
        dh_mu = self.mu_head.backward(np.asarray(d_mu, dtype=np.float64)[..., None])
        return dh_mu + dh_sigma

    def clear_cache(self) -> None:
        self._cache.clear()
        self.mu_head.clear_cache()
        self.sigma_head.clear_cache()
