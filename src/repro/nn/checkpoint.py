"""Checkpoint IO: one ``.npz`` payload with an embedded JSON meta record.

This module is the single serialisation substrate of the repository.  A
checkpoint file is a plain (uncompressed) NumPy ``.npz`` archive whose
entries are float/int arrays plus one reserved ``__meta__`` entry holding a
JSON document — so every durable artifact (trainer checkpoints, model
artifacts in :mod:`repro.artifacts`, telemetry logs) shares one format that
``numpy`` alone can read back, with no pickling anywhere.

Three layers are provided:

* :func:`write_npz` / :func:`read_npz` — raw array-dict + meta-dict IO
  (used by the artifact store and :class:`repro.simulation.RaceTelemetry`);
* :func:`rng_state` / :func:`rng_from_state` / :func:`restore_rng` — JSON
  round-trips of ``numpy.random.Generator`` streams, which is what makes
  restored models and resumed training runs *bit-exact* rather than merely
  statistically equivalent;
* :func:`save_checkpoint` / :func:`load_checkpoint` — full training-state
  snapshots: ``Module`` weights, optimizer buffers (ADAM moments and step
  count), scheduler / early-stopping counters and an RNG stream, keyed by
  namespaced entries (``model/<param>``, ``opt/<slot>/<i>``,
  ``extra/<key>``).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "config_hash",
    "write_npz",
    "read_npz",
    "rng_state",
    "rng_from_state",
    "restore_rng",
    "save_checkpoint",
    "load_checkpoint",
]

#: bump when the key layout of checkpoint files changes incompatibly
CHECKPOINT_SCHEMA_VERSION = 1

_META_KEY = "__meta__"


def config_hash(config: dict) -> str:
    """Stable short hash of a JSON-safe dict (canonical JSON, sha256[:12]).

    The single hashing convention shared by
    :meth:`repro.models.base.ModelArtifact.config_hash` and the artifact
    store's cache keys — keep them byte-for-byte in agreement.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# raw npz + JSON-meta IO
# ----------------------------------------------------------------------
def write_npz(path: str, arrays: Dict[str, np.ndarray], meta: Optional[dict] = None) -> None:
    """Write ``arrays`` and a JSON ``meta`` record as one ``.npz`` file.

    The file is written through an explicit handle so the given ``path`` is
    used verbatim (``np.savez`` would append ``.npz`` to a bare name).
    """
    if _META_KEY in arrays:
        raise ValueError(f"array key {_META_KEY!r} is reserved for the meta record")
    payload = {key: np.asarray(value) for key, value in arrays.items()}
    payload[_META_KEY] = np.array(json.dumps(meta if meta is not None else {}))
    with open(path, "wb") as fh:
        np.savez(fh, **payload)


def read_npz(path) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read back ``(arrays, meta)`` written by :func:`write_npz`.

    ``path`` may be a filename or an open binary file object (which lets the
    telemetry loader sniff the format before committing to a parser).
    """
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files if key != _META_KEY}
        meta = json.loads(str(data[_META_KEY])) if _META_KEY in data.files else {}
    return arrays, meta


# ----------------------------------------------------------------------
# RNG stream round-trips
# ----------------------------------------------------------------------
def rng_state(rng: np.random.Generator) -> dict:
    """JSON-safe snapshot of a ``Generator`` stream (bit-generator state)."""
    return rng.bit_generator.state


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a ``Generator`` producing the exact continuation of ``state``."""
    name = state["bit_generator"]
    try:
        bit_generator_cls = getattr(np.random, name)
    except AttributeError as exc:
        raise ValueError(f"unknown bit generator {name!r}") from exc
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def restore_rng(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore ``state`` into an existing ``Generator`` in place."""
    if rng.bit_generator.state["bit_generator"] != state["bit_generator"]:
        raise ValueError(
            f"bit generator mismatch: stream is "
            f"{rng.bit_generator.state['bit_generator']!r}, "
            f"state is {state['bit_generator']!r}"
        )
    rng.bit_generator.state = state
    return rng


# ----------------------------------------------------------------------
# full training-state checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str,
    model=None,
    optimizer=None,
    scheduler=None,
    early_stopping=None,
    rng: Optional[np.random.Generator] = None,
    extra_arrays: Optional[Dict[str, np.ndarray]] = None,
    meta: Optional[dict] = None,
) -> None:
    """Snapshot any subset of the training state into one ``.npz`` file.

    Every component is optional; only what is passed is recorded, and
    :func:`load_checkpoint` restores only what it is asked to.  ``model``
    must expose ``state_dict()``; ``optimizer``/``scheduler``/
    ``early_stopping`` must expose ``state_dict()`` in the
    :mod:`repro.nn.optimizers` / :mod:`repro.nn.schedulers` convention.
    """
    arrays: Dict[str, np.ndarray] = {}
    record: dict = {"schema_version": CHECKPOINT_SCHEMA_VERSION}
    if model is not None:
        for name, value in model.state_dict().items():
            arrays[f"model/{name}"] = value
        record["has_model"] = True
    if optimizer is not None:
        opt_state = optimizer.state_dict()
        slots = opt_state.pop("slots", {})
        for slot, buffers in slots.items():
            for i, value in enumerate(buffers):
                arrays[f"opt/{slot}/{i}"] = value
        record["optimizer"] = {**opt_state, "slot_names": sorted(slots)}
    if scheduler is not None:
        record["scheduler"] = scheduler.state_dict()
    if early_stopping is not None:
        record["early_stopping"] = early_stopping.state_dict()
    if rng is not None:
        record["rng"] = rng_state(rng)
    if extra_arrays:
        for key, value in extra_arrays.items():
            arrays[f"extra/{key}"] = value
    record["meta"] = meta if meta is not None else {}
    write_npz(path, arrays, record)


def load_checkpoint(
    path: str,
    model=None,
    optimizer=None,
    scheduler=None,
    early_stopping=None,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Restore a checkpoint into the given components.

    Returns a dict with the caller-supplied ``meta`` record under
    ``"meta"`` and any ``extra_arrays`` under ``"arrays"``.  Raises
    ``ValueError`` when the file's schema version is newer than this code
    understands, or when a requested component was not recorded.
    """
    arrays, record = read_npz(path)
    version = int(record.get("schema_version", 0))
    if version > CHECKPOINT_SCHEMA_VERSION:
        raise ValueError(
            f"checkpoint {os.path.basename(str(path))!r} has schema version "
            f"{version}; this build reads <= {CHECKPOINT_SCHEMA_VERSION}"
        )
    if model is not None:
        if not record.get("has_model"):
            raise ValueError("checkpoint holds no model state")
        prefix = "model/"
        state = {
            key[len(prefix) :]: value
            for key, value in arrays.items()
            if key.startswith(prefix)
        }
        model.load_state_dict(state)
    if optimizer is not None:
        opt_record = record.get("optimizer")
        if opt_record is None:
            raise ValueError("checkpoint holds no optimizer state")
        slots: Dict[str, list] = {}
        for slot in opt_record.get("slot_names", []):
            buffers = []
            i = 0
            while f"opt/{slot}/{i}" in arrays:
                buffers.append(arrays[f"opt/{slot}/{i}"])
                i += 1
            slots[slot] = buffers
        state = {k: v for k, v in opt_record.items() if k != "slot_names"}
        state["slots"] = slots
        optimizer.load_state_dict(state)
    if scheduler is not None:
        if "scheduler" not in record:
            raise ValueError("checkpoint holds no scheduler state")
        scheduler.load_state_dict(record["scheduler"])
    if early_stopping is not None:
        if "early_stopping" not in record:
            raise ValueError("checkpoint holds no early-stopping state")
        early_stopping.load_state_dict(record["early_stopping"])
    if rng is not None:
        if "rng" not in record:
            raise ValueError("checkpoint holds no RNG state")
        restore_rng(rng, record["rng"])
    extra_prefix = "extra/"
    extra = {
        key[len(extra_prefix) :]: value
        for key, value in arrays.items()
        if key.startswith(extra_prefix)
    }
    return {"meta": record.get("meta", {}), "arrays": extra, "record": record}
