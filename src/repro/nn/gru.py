"""GRU cell and stacked GRU (alternative recurrent backbone).

The paper's RankModel uses stacked LSTM cells; a GRU backbone is a common
lighter-weight alternative (fewer parameters, one state vector instead of
two).  The cell follows the standard formulation

    r_t = sigmoid(W_r [x_t, h_{t-1}] + b_r)        (reset gate)
    u_t = sigmoid(W_u [x_t, h_{t-1}] + b_u)        (update gate)
    n_t = tanh(W_n x_t + r_t * (U_n h_{t-1}) + b_n)
    h_t = (1 - u_t) * n_t + u_t * h_{t-1}

and exposes the same step / step-backward API as
:class:`repro.nn.recurrent.LSTMCell`, so the two backbones are
interchangeable inside unrolled models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import initializers as init
from .activations import sigmoid
from .module import Module, Parameter

__all__ = ["GRUCell", "StackedGRU"]


class GRUCell(Module):
    """A single GRU cell operating on one time step."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | int | None = None,
        name: str = "gru_cell",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        # gate order in the fused matrices: [reset, update]
        self.w_x_gates = Parameter(
            init.xavier_uniform((input_dim, 2 * hidden_dim), rng=rng), f"{name}.w_x_gates"
        )
        self.w_h_gates = Parameter(
            init.orthogonal((hidden_dim, 2 * hidden_dim), rng=rng), f"{name}.w_h_gates"
        )
        self.b_gates = Parameter(init.zeros((2 * hidden_dim,)), f"{name}.b_gates")
        self.w_x_cand = Parameter(
            init.xavier_uniform((input_dim, hidden_dim), rng=rng), f"{name}.w_x_cand"
        )
        self.w_h_cand = Parameter(
            init.orthogonal((hidden_dim, hidden_dim), rng=rng), f"{name}.w_h_cand"
        )
        self.b_cand = Parameter(init.zeros((hidden_dim,)), f"{name}.b_cand")
        self._cache: List[tuple] = []

    def zero_state(self, batch_size: int) -> np.ndarray:
        return np.zeros((batch_size, self.hidden_dim), dtype=np.float64)

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, h_prev: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        h_prev = np.asarray(h_prev, dtype=np.float64)
        gates = x @ self.w_x_gates.data + h_prev @ self.w_h_gates.data + self.b_gates.data
        hd = self.hidden_dim
        r = sigmoid(gates[:, :hd])
        u = sigmoid(gates[:, hd:])
        h_proj = h_prev @ self.w_h_cand.data
        n = np.tanh(x @ self.w_x_cand.data + r * h_proj + self.b_cand.data)
        h = (1.0 - u) * n + u * h_prev
        self._cache.append((x, h_prev, r, u, n, h_proj))
        return h

    def step_backward(self, dh: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Backward for the most recent step: returns ``(dx, dh_prev)``."""
        if not self._cache:
            raise RuntimeError("step_backward called more times than step")
        x, h_prev, r, u, n, h_proj = self._cache.pop()
        dh = np.asarray(dh, dtype=np.float64)

        d_u = dh * (h_prev - n)
        d_n = dh * (1.0 - u)
        dh_prev = dh * u

        d_n_pre = d_n * (1.0 - n * n)
        self.w_x_cand.grad += x.T @ d_n_pre
        self.b_cand.grad += d_n_pre.sum(axis=0)
        d_r = d_n_pre * h_proj
        d_h_proj = d_n_pre * r
        self.w_h_cand.grad += h_prev.T @ d_h_proj
        dh_prev += d_h_proj @ self.w_h_cand.data.T
        dx = d_n_pre @ self.w_x_cand.data.T

        d_r_pre = d_r * r * (1.0 - r)
        d_u_pre = d_u * u * (1.0 - u)
        d_gates = np.concatenate([d_r_pre, d_u_pre], axis=1)
        self.w_x_gates.grad += x.T @ d_gates
        self.w_h_gates.grad += h_prev.T @ d_gates
        self.b_gates.grad += d_gates.sum(axis=0)
        dx += d_gates @ self.w_x_gates.data.T
        dh_prev += d_gates @ self.w_h_gates.data.T
        return dx, dh_prev

    def clear_cache(self) -> None:
        self._cache.clear()

    # convenience full-sequence helpers -------------------------------
    def forward(self, x: np.ndarray, h0: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h = self.step(x[:, t, :], h)
            outputs[:, t, :] = h
        return outputs, h

    def backward(self, d_outputs: np.ndarray) -> np.ndarray:
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        dh_next = np.zeros((batch, self.hidden_dim))
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dh_next = self.step_backward(d_outputs[:, t, :] + dh_next)
            dx[:, t, :] = dxt
        return dx


class StackedGRU(Module):
    """A stack of GRU layers with the same step API as :class:`StackedLSTM`.

    States are per-layer hidden vectors (no cell state); to stay drop-in
    compatible with code written for the LSTM stack, ``step`` accepts and
    returns a list of ``(h, h)`` pairs when ``lstm_compatible_states`` is
    enabled.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        self.cells = [
            GRUCell(input_dim if layer == 0 else hidden_dim, hidden_dim, rng=rng, name=f"gru.{layer}")
            for layer in range(num_layers)
        ]

    def zero_state(self, batch_size: int) -> List[np.ndarray]:
        return [cell.zero_state(batch_size) for cell in self.cells]

    def step(self, x: np.ndarray, states: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[np.ndarray]]:
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        h = np.asarray(x, dtype=np.float64)
        new_states: List[np.ndarray] = []
        for layer, cell in enumerate(self.cells):
            h = cell.step(h, states[layer])
            new_states.append(h)
        return h, new_states

    def step_backward(
        self, dh_top: np.ndarray, dstates: Optional[Sequence[np.ndarray]] = None
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        batch = np.asarray(dh_top).shape[0]
        if dstates is None:
            dstates = [np.zeros((batch, self.hidden_dim)) for _ in range(self.num_layers)]
        dprev: List[np.ndarray] = [None] * self.num_layers  # type: ignore
        d_from_above = np.asarray(dh_top, dtype=np.float64)
        for layer in reversed(range(self.num_layers)):
            dx_layer, dh_prev = self.cells[layer].step_backward(d_from_above + dstates[layer])
            dprev[layer] = dh_prev
            d_from_above = dx_layer
        return d_from_above, dprev

    # ------------------------------------------------------------------
    # batched state save / restore (mirrors ``StackedLSTM``)
    # ------------------------------------------------------------------
    def export_state(self, states: Sequence[np.ndarray]) -> np.ndarray:
        """Pack per-layer hidden vectors into one ``(L, B, H)`` array."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        return np.stack([np.asarray(h, dtype=np.float64) for h in states])

    def import_state(self, packed: np.ndarray) -> List[np.ndarray]:
        """Inverse of :meth:`export_state`; returns fresh per-layer copies."""
        packed = np.asarray(packed, dtype=np.float64)
        if packed.ndim != 3 or packed.shape[0] != self.num_layers:
            raise ValueError(
                f"expected shape ({self.num_layers}, B, {self.hidden_dim}), got {packed.shape}"
            )
        if packed.shape[2] != self.hidden_dim:
            raise ValueError(f"hidden dim mismatch: {packed.shape[2]} != {self.hidden_dim}")
        return [packed[layer].copy() for layer in range(self.num_layers)]

    def forward(self, x: np.ndarray, states: Optional[Sequence[np.ndarray]] = None):
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        states = list(states) if states is not None else self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h, states = self.step(x[:, t, :], states)
            outputs[:, t, :] = h
        return outputs, states

    def backward(self, d_outputs: np.ndarray) -> np.ndarray:
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        dstates = None
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dstates = self.step_backward(d_outputs[:, t, :], dstates)
            dx[:, t, :] = dxt
        return dx

    def clear_cache(self) -> None:
        for cell in self.cells:
            cell.clear_cache()
