"""GRU cell and stacked GRU (alternative recurrent backbone).

The paper's RankModel uses stacked LSTM cells; a GRU backbone is a common
lighter-weight alternative (fewer parameters, one state vector instead of
two).  The cell follows the standard formulation

    r_t = sigmoid(W_r [x_t, h_{t-1}] + b_r)        (reset gate)
    u_t = sigmoid(W_u [x_t, h_{t-1}] + b_u)        (update gate)
    n_t = tanh(W_n x_t + r_t * (U_n h_{t-1}) + b_n)
    h_t = (1 - u_t) * n_t + u_t * h_{t-1}

and exposes the same step / step-backward API as
:class:`repro.nn.recurrent.LSTMCell`, so the two backbones are
interchangeable inside unrolled models.  Like the LSTM, the GRU also
provides the fused full-sequence ``forward_sequence`` /
``backward_sequence`` path used by teacher-forced training and the
serving warm-up (see :mod:`repro.nn.recurrent`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import initializers as init
from .activations import sigmoid, sigmoid_dense
from .kernels import stable_matmul
from .module import Module, Parameter
from .recurrent import _sigmoid_inplace

__all__ = ["GRUCell", "GRUDecodeContext", "StackedGRU"]


class GRUDecodeContext:
    """Preallocated buffers for one GRU cell's allocation-free decode loop.

    The GRU's fused gate matrices are already laid out ``[reset, update]``
    — both sigmoid gates contiguous — so unlike the LSTM no column
    permutation (and no weight copy) is needed; the context only owns the
    running hidden state and the per-step scratch tensors.
    """

    __slots__ = ("h", "gates", "hw", "h_proj", "n", "t1", "t2", "sg_scratch", "dtype")

    def __init__(self, cell: "GRUCell", h0: np.ndarray, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self.h = np.array(h0, dtype=self.dtype, copy=True, order="C")
        batch = self.h.shape[0]
        hd = cell.hidden_dim
        self.gates = np.empty((batch, 2 * hd), dtype=self.dtype)
        self.hw = np.empty((batch, 2 * hd), dtype=self.dtype)
        self.h_proj = np.empty((batch, hd), dtype=self.dtype)
        self.n = np.empty((batch, hd), dtype=self.dtype)
        self.t1 = np.empty((batch, hd), dtype=self.dtype)
        self.t2 = np.empty((batch, hd), dtype=self.dtype)
        self.sg_scratch = (
            np.empty((batch, 2 * hd), dtype=self.dtype),
            np.empty((batch, 2 * hd), dtype=self.dtype),
        )


class GRUCell(Module):
    """A single GRU cell operating on one time step."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | int | None = None,
        name: str = "gru_cell",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        # gate order in the fused matrices: [reset, update]
        self.w_x_gates = Parameter(
            init.xavier_uniform((input_dim, 2 * hidden_dim), rng=rng), f"{name}.w_x_gates"
        )
        self.w_h_gates = Parameter(
            init.orthogonal((hidden_dim, 2 * hidden_dim), rng=rng), f"{name}.w_h_gates"
        )
        self.b_gates = Parameter(init.zeros((2 * hidden_dim,)), f"{name}.b_gates")
        self.w_x_cand = Parameter(
            init.xavier_uniform((input_dim, hidden_dim), rng=rng), f"{name}.w_x_cand"
        )
        self.w_h_cand = Parameter(
            init.orthogonal((hidden_dim, hidden_dim), rng=rng), f"{name}.w_h_cand"
        )
        self.b_cand = Parameter(init.zeros((hidden_dim,)), f"{name}.b_cand")
        self._cache: List[tuple] = []
        self._seq_cache: List[tuple] = []
        self._dgates_buf: Optional[np.ndarray] = None

    def zero_state(self, batch_size: int, dtype=np.float64) -> np.ndarray:
        return np.zeros((batch_size, self.hidden_dim), dtype=dtype)

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, h_prev: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        h_prev = np.asarray(h_prev, dtype=np.float64)
        gates = x @ self.w_x_gates.data + h_prev @ self.w_h_gates.data + self.b_gates.data
        hd = self.hidden_dim
        r = sigmoid(gates[:, :hd])
        u = sigmoid(gates[:, hd:])
        h_proj = h_prev @ self.w_h_cand.data
        n = np.tanh(x @ self.w_x_cand.data + r * h_proj + self.b_cand.data)
        h = (1.0 - u) * n + u * h_prev
        self._cache.append((x, h_prev, r, u, n, h_proj))
        return h

    def step_backward(self, dh: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Backward for the most recent step: returns ``(dx, dh_prev)``."""
        if not self._cache:
            raise RuntimeError("step_backward called more times than step")
        x, h_prev, r, u, n, h_proj = self._cache.pop()
        dh = np.asarray(dh, dtype=np.float64)

        d_u = dh * (h_prev - n)
        d_n = dh * (1.0 - u)
        dh_prev = dh * u

        d_n_pre = d_n * (1.0 - n * n)
        self.w_x_cand.grad += x.T @ d_n_pre
        self.b_cand.grad += d_n_pre.sum(axis=0)
        d_r = d_n_pre * h_proj
        d_h_proj = d_n_pre * r
        self.w_h_cand.grad += h_prev.T @ d_h_proj
        dh_prev += d_h_proj @ self.w_h_cand.data.T
        dx = d_n_pre @ self.w_x_cand.data.T

        hd = self.hidden_dim
        d_gates = self._step_dgates(dh.shape[0])
        d_gates[:, :hd] = d_r * r * (1.0 - r)
        d_gates[:, hd:] = d_u * u * (1.0 - u)
        self.w_x_gates.grad += x.T @ d_gates
        self.w_h_gates.grad += h_prev.T @ d_gates
        self.b_gates.grad += d_gates.sum(axis=0)
        dx += d_gates @ self.w_x_gates.data.T
        dh_prev += d_gates @ self.w_h_gates.data.T
        return dx, dh_prev

    def _step_dgates(self, batch: int) -> np.ndarray:
        """Preallocated per-step ``(B, 2H)`` gate-gradient buffer (consumed
        before the next step, so reuse is safe — mirrors ``LSTMCell``)."""
        buf = self._dgates_buf
        if buf is None or buf.shape[0] != batch:
            buf = self._dgates_buf = np.empty((batch, 2 * self.hidden_dim), dtype=np.float64)
        return buf

    def clear_cache(self) -> None:
        self._cache.clear()
        self._seq_cache.clear()

    # fused decode path -------------------------------------------------
    def begin_decode(self, h0: np.ndarray, dtype=np.float64) -> GRUDecodeContext:
        """Open an allocation-free decode session starting from ``h0``."""
        return GRUDecodeContext(self, h0, dtype=dtype)

    def step_decode(self, x: np.ndarray, ctx: GRUDecodeContext) -> np.ndarray:
        """One decode step, byte-identical to the serving ``step`` kernel.

        Same ``stable_matmul`` products and operand order as
        :class:`repro.nn.inference.GRUStackInference.step`, with both
        sigmoid gates evaluated by a single :func:`sigmoid_dense` pass over
        the contiguous ``[r, u]`` block and every intermediate written into
        the context buffers.  The returned hidden state is a view of the
        context's ``h`` buffer (valid until the next step).
        """
        hd = self.hidden_dim
        gates = ctx.gates
        stable_matmul(x, self.w_x_gates.data, out=gates)
        stable_matmul(ctx.h, self.w_h_gates.data, out=ctx.hw)
        gates += ctx.hw
        gates += self.b_gates.data
        sigmoid_dense(gates, out=gates, scratch=ctx.sg_scratch)
        stable_matmul(ctx.h, self.w_h_cand.data, out=ctx.h_proj)
        # n = tanh(x @ w_x_cand + r * h_proj + b_cand) — identical order
        stable_matmul(x, self.w_x_cand.data, out=ctx.n)
        np.multiply(gates[:, :hd], ctx.h_proj, out=ctx.t1)
        ctx.n += ctx.t1
        ctx.n += self.b_cand.data
        np.tanh(ctx.n, out=ctx.n)
        # h = (1 - u) * n + u * h_prev
        u = gates[:, hd:]
        np.subtract(1.0, u, out=ctx.t1)
        ctx.t1 *= ctx.n
        np.multiply(u, ctx.h, out=ctx.t2)
        np.add(ctx.t1, ctx.t2, out=ctx.h)
        return ctx.h

    # fused full-sequence path -----------------------------------------
    def forward_sequence(
        self,
        x: np.ndarray,
        h0: Optional[np.ndarray] = None,
        with_cache: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Teacher-forced pass over ``(B, T, input_dim)`` with the gate and
        candidate input projections (+ biases) fused into two full-sequence
        GEMMs.  Intermediates live in preallocated time-major ``(T, B, .)``
        tensors with in-place non-linearities (mirrors
        :meth:`repro.nn.recurrent.LSTMCell.forward_sequence`).
        """
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        hd = self.hidden_dim
        h = h0 if h0 is not None else self.zero_state(batch)
        if steps == 0:
            return np.empty((batch, 0, hd), dtype=np.float64), h
        h_init = h
        x_tm = np.ascontiguousarray(x.transpose(1, 0, 2))
        flat = x_tm.reshape(steps * batch, self.input_dim)
        gates = stable_matmul(flat, self.w_x_gates.data).reshape(steps, batch, 2 * hd)
        gates += self.b_gates.data
        cand = stable_matmul(flat, self.w_x_cand.data).reshape(steps, batch, hd)
        cand += self.b_cand.data
        out_tm = np.empty((steps, batch, hd), dtype=np.float64)
        hw = np.empty((batch, 2 * hd), dtype=np.float64)
        if with_cache:
            h_proj_tm = np.empty((steps, batch, hd), dtype=np.float64)
        else:
            hp_buf = np.empty((batch, hd), dtype=np.float64)
        for t in range(steps):
            ga = gates[t]  # activations overwrite the pre-activations in place
            np.matmul(h, self.w_h_gates.data, out=hw)
            ga += hw
            _sigmoid_inplace(ga)  # reset + update gates together
            hp = h_proj_tm[t] if with_cache else hp_buf
            np.matmul(h, self.w_h_cand.data, out=hp)
            n_t = cand[t]  # becomes the candidate activation in place
            n_t += ga[:, :hd] * hp
            np.tanh(n_t, out=n_t)
            # h_new = (1 - u) * n + u * h_prev = n + u * (h_prev - n)
            o_t = out_tm[t]
            np.subtract(h, n_t, out=o_t)
            o_t *= ga[:, hd:]
            o_t += n_t
            h = o_t
        if with_cache:
            self._seq_cache.append((x_tm, gates, cand, h_proj_tm, out_tm, h_init))
        return out_tm.transpose(1, 0, 2), h

    def backward_sequence(
        self, d_outputs: np.ndarray, d_final_state: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused BPTT for the most recent :meth:`forward_sequence` call.

        Gate and candidate pre-activation gradients are written into
        preallocated ``(T, B, .)`` buffers; all parameter gradients then
        accumulate through reshaped full-sequence GEMMs.  Returns
        ``(dx, dh0)``.
        """
        if not self._seq_cache:
            raise RuntimeError("backward_sequence called more times than forward_sequence")
        x_tm, gates, n_tm, h_proj_tm, out_tm, h0 = self._seq_cache.pop()
        d_out_tm = np.ascontiguousarray(
            np.asarray(d_outputs, dtype=np.float64).transpose(1, 0, 2)
        )
        steps, batch, hd = d_out_tm.shape
        dh_next = (
            np.zeros((batch, hd), dtype=np.float64)
            if d_final_state is None
            else np.asarray(d_final_state, dtype=np.float64)
        )
        d_gates = np.empty((steps, batch, 2 * hd), dtype=np.float64)
        d_n_pre = np.empty((steps, batch, hd), dtype=np.float64)
        d_h_proj = np.empty((steps, batch, hd), dtype=np.float64)
        dh = np.empty((batch, hd), dtype=np.float64)
        dh_buf = np.empty((batch, hd), dtype=np.float64)
        mm_buf = np.empty((batch, hd), dtype=np.float64)
        # hoist the activation-derivative factors out of the time loop
        # (full-tensor passes instead of per-step strided ones)
        gderiv = np.empty_like(gates)  # sigma' = a * (1 - a) for [r, u]
        np.subtract(1.0, gates, out=gderiv)
        gderiv *= gates
        one_minus_u = np.ascontiguousarray(1.0 - gates[:, :, hd:])
        n_deriv = np.empty_like(n_tm)  # tanh' = 1 - n^2
        np.multiply(n_tm, n_tm, out=n_deriv)
        np.subtract(1.0, n_deriv, out=n_deriv)
        hpn = np.empty_like(n_tm)  # h_prev - n per step
        np.subtract(h0, n_tm[0], out=hpn[0])
        if steps > 1:
            np.subtract(out_tm[: steps - 1], n_tm[1:], out=hpn[1:])
        w_h_gates_t = np.ascontiguousarray(self.w_h_gates.data.T)
        w_h_cand_t = np.ascontiguousarray(self.w_h_cand.data.T)
        for t in reversed(range(steps)):
            ga = gates[t]
            r = ga[:, :hd]
            u = ga[:, hd:]
            np.add(d_out_tm[t], dh_next, out=dh)
            dnp = d_n_pre[t]
            np.multiply(dh, one_minus_u[t], out=dnp)
            dnp *= n_deriv[t]
            dhp = d_h_proj[t]
            np.multiply(dnp, r, out=dhp)
            dg = d_gates[t]
            np.multiply(dnp, h_proj_tm[t], out=dg[:, :hd])
            np.multiply(dh, hpn[t], out=dg[:, hd:])
            dg *= gderiv[t]
            np.multiply(dh, u, out=dh_buf)
            np.matmul(dhp, w_h_cand_t, out=mm_buf)
            dh_buf += mm_buf
            np.matmul(dg, w_h_gates_t, out=mm_buf)
            dh_buf += mm_buf
            dh_next = dh_buf
        flat_x = x_tm.reshape(steps * batch, self.input_dim)
        flat_gates = d_gates.reshape(steps * batch, 2 * hd)
        flat_npre = d_n_pre.reshape(steps * batch, hd)
        self.w_x_cand.grad += flat_x.T @ flat_npre
        self.b_cand.grad += flat_npre.sum(axis=0)
        # h_prev per step is [h0, out_0, ..., out_{T-2}]
        self.w_h_cand.grad += h0.T @ d_h_proj[0]
        self.w_h_gates.grad += h0.T @ d_gates[0]
        if steps > 1:
            flat_hprev = out_tm[: steps - 1].reshape((steps - 1) * batch, hd)
            self.w_h_cand.grad += flat_hprev.T @ d_h_proj[1:].reshape((steps - 1) * batch, hd)
            self.w_h_gates.grad += flat_hprev.T @ d_gates[1:].reshape(
                (steps - 1) * batch, 2 * hd
            )
        self.w_x_gates.grad += flat_x.T @ flat_gates
        self.b_gates.grad += flat_gates.sum(axis=0)
        dx = flat_npre @ self.w_x_cand.data.T + flat_gates @ self.w_x_gates.data.T
        dx_tm = dx.reshape(steps, batch, self.input_dim)
        return dx_tm.transpose(1, 0, 2), dh_next.copy()

    # convenience full-sequence helpers -------------------------------
    def forward(self, x: np.ndarray, h0: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h = self.step(x[:, t, :], h)
            outputs[:, t, :] = h
        return outputs, h

    def backward(self, d_outputs: np.ndarray) -> np.ndarray:
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        dh_next = np.zeros((batch, self.hidden_dim))
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dh_next = self.step_backward(d_outputs[:, t, :] + dh_next)
            dx[:, t, :] = dxt
        return dx


class StackedGRU(Module):
    """A stack of GRU layers with the same step API as :class:`StackedLSTM`.

    States are per-layer hidden vectors (no cell state); to stay drop-in
    compatible with code written for the LSTM stack, ``step`` accepts and
    returns a list of ``(h, h)`` pairs when ``lstm_compatible_states`` is
    enabled.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        self.cells = [
            GRUCell(input_dim if layer == 0 else hidden_dim, hidden_dim, rng=rng, name=f"gru.{layer}")
            for layer in range(num_layers)
        ]

    def zero_state(self, batch_size: int, dtype=np.float64) -> List[np.ndarray]:
        return [cell.zero_state(batch_size, dtype=dtype) for cell in self.cells]

    def step(self, x: np.ndarray, states: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[np.ndarray]]:
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        h = np.asarray(x, dtype=np.float64)
        new_states: List[np.ndarray] = []
        for layer, cell in enumerate(self.cells):
            h = cell.step(h, states[layer])
            new_states.append(h)
        return h, new_states

    def step_backward(
        self, dh_top: np.ndarray, dstates: Optional[Sequence[np.ndarray]] = None
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        batch = np.asarray(dh_top).shape[0]
        if dstates is None:
            dstates = [np.zeros((batch, self.hidden_dim)) for _ in range(self.num_layers)]
        dprev: List[np.ndarray] = [None] * self.num_layers  # type: ignore
        d_from_above = np.asarray(dh_top, dtype=np.float64)
        for layer in reversed(range(self.num_layers)):
            dx_layer, dh_prev = self.cells[layer].step_backward(d_from_above + dstates[layer])
            dprev[layer] = dh_prev
            d_from_above = dx_layer
        return d_from_above, dprev

    # ------------------------------------------------------------------
    # batched state save / restore (mirrors ``StackedLSTM``)
    # ------------------------------------------------------------------
    def export_state(self, states: Sequence[np.ndarray]) -> np.ndarray:
        """Pack per-layer hidden vectors into one ``(L, B, H)`` array.

        Dtype-preserving (like ``StackedLSTM.export_state``): the carry-mode
        warm-up cache holds packed states in whatever compute dtype the
        owning engine runs.
        """
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        return np.stack([np.asarray(h) for h in states])

    def import_state(self, packed: np.ndarray, dtype=np.float64) -> List[np.ndarray]:
        """Inverse of :meth:`export_state`; returns fresh per-layer copies."""
        packed = np.asarray(packed, dtype=dtype)
        if packed.ndim != 3 or packed.shape[0] != self.num_layers:
            raise ValueError(
                f"expected shape ({self.num_layers}, B, {self.hidden_dim}), got {packed.shape}"
            )
        if packed.shape[2] != self.hidden_dim:
            raise ValueError(f"hidden dim mismatch: {packed.shape[2]} != {self.hidden_dim}")
        return [packed[layer].copy() for layer in range(self.num_layers)]

    # ------------------------------------------------------------------
    # fused decode path (mirrors ``StackedLSTM``)
    # ------------------------------------------------------------------
    def begin_decode(
        self, states: Sequence[np.ndarray], dtype=np.float64
    ) -> List[GRUDecodeContext]:
        """Per-layer decode contexts starting from ``states`` (copied in)."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        return [cell.begin_decode(h, dtype=dtype) for cell, h in zip(self.cells, states)]

    def step_decode(
        self, x: np.ndarray, ctxs: Sequence[GRUDecodeContext]
    ) -> np.ndarray:
        """Advance the whole stack by one decode step (allocation-free).

        Byte-identical to ``GRUStackInference.step``; the returned hidden
        state is a view of the last context's buffer.
        """
        h = x
        for cell, ctx in zip(self.cells, ctxs):
            h = cell.step_decode(h, ctx)
        return h

    def decode_sequence(
        self, x: np.ndarray, states: Optional[Sequence[np.ndarray]] = None
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Run a known ``(B, T, input_dim)`` input through the decode kernels.

        Byte-identical to stepping ``GRUStackInference.step`` one lap at a
        time; returns the top-layer outputs and final per-layer states.
        """
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if states is None:
            states = self.zero_state(batch)
        ctxs = self.begin_decode(states)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            outputs[:, t, :] = self.step_decode(x[:, t, :], ctxs)
        return outputs, [ctx.h.copy() for ctx in ctxs]

    # ------------------------------------------------------------------
    # fused full-sequence path (mirrors ``StackedLSTM``)
    # ------------------------------------------------------------------
    def forward_sequence(
        self,
        x: np.ndarray,
        states: Optional[Sequence[np.ndarray]] = None,
        with_cache: bool = True,
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Fused layer-major teacher-forced pass over ``(B, T, input_dim)``."""
        x = np.asarray(x, dtype=np.float64)
        batch = x.shape[0]
        if states is None:
            states = self.zero_state(batch)
        h_seq = x
        final_states: List[np.ndarray] = []
        for layer, cell in enumerate(self.cells):
            h_seq, h = cell.forward_sequence(h_seq, states[layer], with_cache=with_cache)
            final_states.append(h)
        return h_seq, final_states

    def backward_sequence(
        self,
        d_outputs: np.ndarray,
        d_final_states: Optional[Sequence[np.ndarray]] = None,
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Fused BPTT matching :meth:`forward_sequence`; returns ``(dx, dh0s)``."""
        grad = np.asarray(d_outputs, dtype=np.float64)
        d_initial: List[np.ndarray] = [None] * self.num_layers  # type: ignore
        for layer in reversed(range(self.num_layers)):
            d_state = None if d_final_states is None else d_final_states[layer]
            grad, d_init = self.cells[layer].backward_sequence(grad, d_state)
            d_initial[layer] = d_init
        return grad, d_initial

    def forward(self, x: np.ndarray, states: Optional[Sequence[np.ndarray]] = None):
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        states = list(states) if states is not None else self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h, states = self.step(x[:, t, :], states)
            outputs[:, t, :] = h
        return outputs, states

    def backward(self, d_outputs: np.ndarray) -> np.ndarray:
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        dstates = None
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dstates = self.step_backward(d_outputs[:, t, :], dstates)
            dx[:, t, :] = dxt
        return dx

    def clear_cache(self) -> None:
        for cell in self.cells:
            cell.clear_cache()
